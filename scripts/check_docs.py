"""Docs checks run by CI (and locally): links resolve, examples execute.

Two passes, zero dependencies:

1. **Link check** — every relative markdown link/image target in the
   checked documents must exist in the working tree (external links are
   syntax-checked only, so the job stays hermetic).
2. **Executable examples** — every fenced ``json`` block that is a spec
   document (contains a ``"spec"`` tag) is piped through
   ``repro run - --json``, so the README's worked `SPEC.json` cannot rot.

Exit code 0 when everything holds; prints one line per failure otherwise.

Run directly::

    python scripts/check_docs.py [FILES...]
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DEFAULT_DOCUMENTS = ("README.md", "docs/ARCHITECTURE.md")

#: Inline markdown links/images: [text](target) — target up to the first
#: closing paren (no nested-paren targets in this repo's docs).
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_FENCED_JSON = re.compile(r"```json\n(.*?)```", re.DOTALL)


def check_links(document: Path) -> list[str]:
    failures = []
    text = document.read_text()
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path = target.split("#", 1)[0]
        if not path:
            continue  # pure in-page anchor
        resolved = (document.parent / path).resolve()
        if not resolved.exists():
            failures.append(f"{document}: broken link -> {target}")
    return failures


def check_spec_snippets(document: Path) -> list[str]:
    failures = []
    for index, block in enumerate(_FENCED_JSON.findall(document.read_text())):
        try:
            data = json.loads(block)
        except json.JSONDecodeError as exc:
            failures.append(f"{document}: json block #{index} does not parse: {exc}")
            continue
        if not isinstance(data, dict) or "spec" not in data:
            continue  # illustrative fragment, not a runnable document
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "run", "-", "--json"],
            input=block,
            capture_output=True,
            text=True,
            cwd=REPO,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        if completed.returncode != 0:
            tail = (completed.stderr or completed.stdout).strip().splitlines()[-3:]
            failures.append(
                f"{document}: spec block #{index} failed under `repro run -`: "
                + " | ".join(tail)
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    arguments = argv if argv is not None else sys.argv[1:]
    documents = [Path(arg) for arg in arguments] or [
        REPO / name for name in DEFAULT_DOCUMENTS
    ]
    failures: list[str] = []
    for document in documents:
        if not document.exists():
            failures.append(f"missing document: {document}")
            continue
        failures.extend(check_links(document))
        failures.extend(check_spec_snippets(document))
    for failure in failures:
        print(failure)
    if not failures:
        print(f"docs ok: {', '.join(str(d) for d in documents)}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
