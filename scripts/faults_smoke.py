#!/usr/bin/env python
"""CI smoke test for deterministic link-fault injection.

Proves the fault layer's determinism claim end to end through the real
CLI: a loss sweep of spec documents piped into ``repro run -`` must
produce byte-identical canonical digests across **fresh interpreter
processes with different PYTHONHASHSEED values**, and the degradation
report (``repro sweep --faults``) must have the promised shape — the
fault-free baseline holds, every failure at positive loss is excused by
the fault model, and the per-point digests match the ``repro run``
digests for the same (rate, seed).

Exits non-zero (with a diagnostic) on any violation.  Run directly::

    python scripts/faults_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
sys.path.insert(0, str(_SRC))

LOSS_RATES = (0.0, 0.02, 0.05)
SEEDS = (0, 1)


def _document(rate: float, seed: int) -> str:
    from repro.api import quickstart_spec

    spec = quickstart_spec(seed=seed)
    if rate:
        spec = spec.with_faults({"loss": rate})
    return spec.to_json()


def cli_run_digest(document: str, hashseed: str) -> str:
    """Pipe one spec document through ``repro run -`` in a fresh process."""
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(_SRC), env.get("PYTHONPATH", "")])
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "run", "-", "--json"],
        input=document,
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    # Exit 1 means "ran fine but the spec did not hold" — expected under
    # loss (the degradation report, not the exit code, judges that).
    if completed.returncode not in (0, 1):
        raise SystemExit(
            f"CLI run failed (rc={completed.returncode}):\n{completed.stderr}"
        )
    return json.loads(completed.stdout)["digest"]


def main() -> int:
    # 1. Digest stability: every (rate, seed) point, two fresh
    #    interpreters, two PYTHONHASHSEED values, one digest.
    digests: dict[tuple[float, int], str] = {}
    for rate in LOSS_RATES:
        for seed in SEEDS:
            document = _document(rate, seed)
            per_point = {cli_run_digest(document, hs) for hs in ("1", "31337")}
            if len(per_point) != 1:
                print(
                    f"FAIL: loss={rate} seed={seed} digests differ across "
                    f"PYTHONHASHSEED values: {sorted(per_point)}",
                    file=sys.stderr,
                )
                return 1
            digests[(rate, seed)] = per_point.pop()
    print(f"cross-process digests stable at {len(digests)} fault points OK")

    # Faults must actually change the trace.
    if digests[(0.0, 0)] == digests[(0.05, 0)]:
        print("FAIL: loss=0.05 digest equals the fault-free digest", file=sys.stderr)
        return 1
    print("faulted digest differs from the fault-free baseline OK")

    # 2. Degradation report shape, via the real sweep command.
    from repro.cli import main as cli_main

    lines: list[str] = []
    axis = ":".join(str(rate) for rate in LOSS_RATES)
    code = cli_main(
        ["sweep", "--faults", f"loss={axis}", "--cases", str(len(SEEDS)), "--json"],
        write=lines.append,
    )
    payload = json.loads("\n".join(str(line) for line in lines))
    degradation = payload["degradation"]
    if code != 0 or not degradation["acceptable"]:
        print(f"FAIL: degradation unacceptable:\n{degradation}", file=sys.stderr)
        return 1
    if degradation["axis"] != "loss":
        print(f"FAIL: wrong axis {degradation['axis']!r}", file=sys.stderr)
        return 1
    points = degradation["points"]
    if len(points) != len(LOSS_RATES) * len(SEEDS):
        print(f"FAIL: expected {len(LOSS_RATES) * len(SEEDS)} points, "
              f"got {len(points)}", file=sys.stderr)
        return 1
    for point in points:
        if point["rate"] == 0.0:
            if not (point["spec_holds"] and point["quiescent"]):
                print(f"FAIL: fault-free baseline does not hold: {point}", file=sys.stderr)
                return 1
        if point["unexcused"]:
            print(f"FAIL: unexcused failures {point['unexcused']} at "
                  f"loss={point['rate']}", file=sys.stderr)
            return 1
    print(f"degradation report shape OK ({len(points)} points, all excused)")

    # 3. The sweep's per-point digests equal the `repro run` digests.
    sweep_digests = {
        (point["rate"], point["seed"]): point["digest"] for point in points
    }
    if sweep_digests != digests:
        diff = {key for key in digests if sweep_digests.get(key) != digests[key]}
        print(f"FAIL: sweep digests diverge from run digests at {sorted(diff)}",
              file=sys.stderr)
        return 1
    print("sweep point digests match `repro run -` digests OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
