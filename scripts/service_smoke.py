#!/usr/bin/env python
"""CI smoke test for the experiment service (`repro serve`).

Boots the real CLI server as a subprocess, round-trips the golden
quickstart spec over HTTP, and proves the service's three core
contracts end to end:

1. the envelope digest the worker reports over the wire equals the
   digest of the same spec run locally in this process;
2. resubmitting the identical document is a cache hit — answered from
   the result store without a second execution;
3. ``force=true`` bypasses the cache and re-executes, reproducing the
   same digest.

Exits non-zero (with a diagnostic) on any violation.  Run directly::

    python scripts/service_smoke.py
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path
from socket import socket
from tempfile import TemporaryDirectory

_SRC = Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(_SRC))

from repro.api import quickstart_spec, run_spec  # noqa: E402
from repro.service import ServiceClient, ServiceError  # noqa: E402


def free_port() -> int:
    with socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def wait_for_health(
    client: ServiceClient, server: subprocess.Popen, deadline: float = 30.0
) -> dict:
    started = time.monotonic()
    while True:
        if server.poll() is not None:
            raise RuntimeError(f"server exited early with code {server.returncode}")
        try:
            return client.health()
        except (ServiceError, OSError):
            if time.monotonic() - started > deadline:
                raise
            time.sleep(0.2)


def main() -> int:
    spec = quickstart_spec()
    local_digest = run_spec(spec).digest()
    print(f"local digest: {local_digest}")

    port = free_port()
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    with TemporaryDirectory(prefix="repro-service-smoke-") as root:
        server = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                str(port),
                "--root",
                root,
                "--workers",
                "2",
            ],
            env=env,
        )
        try:
            client = ServiceClient(f"http://127.0.0.1:{port}")
            wait_for_health(client, server)

            def executions() -> int:
                return client.health()["counts"]["executions"]

            submitted = client.submit(spec.to_dict())["job"]
            job = client.wait(submitted["id"], timeout=120.0)
            assert job["state"] == "done", f"fresh run failed: {job}"
            assert job["digest"] == local_digest, (
                f"digest over the wire diverged: "
                f"{job['digest']} != {local_digest}"
            )
            assert not job["cached"], "fresh submission must not be cached"
            envelope = client.result(job["id"])["envelope"]
            assert envelope["digest"] == local_digest
            assert executions() == 1, f"expected 1 execution, saw {executions()}"
            print(f"fresh run: {job['id']} digest matches, 1 execution")

            cached = client.submit(spec.to_dict())["job"]
            assert cached["state"] == "done" and cached["cached"], (
                f"identical resubmission was not a cache hit: {cached}"
            )
            assert cached["digest"] == local_digest
            assert executions() == 1, f"cache hit re-executed: {executions()}"
            print(f"resubmission: {cached['id']} served from store, still 1 execution")

            forced_submit = client.submit(spec.to_dict(), force=True)["job"]
            forced = client.wait(forced_submit["id"], timeout=120.0)
            assert forced["state"] == "done" and not forced["cached"]
            assert forced["digest"] == local_digest
            assert executions() == 2, f"force did not re-execute: {executions()}"
            print(f"forced: {forced['id']} re-executed, digest reproduced")
        finally:
            server.terminate()
            server.wait(timeout=10)

    print("service smoke OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
