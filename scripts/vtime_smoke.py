#!/usr/bin/env python
"""CI smoke test for the virtual-time asyncio runtime.

Proves the tentpole determinism claim end to end through the real CLI:
a churn spec executed with ``--runtime asyncio-virtual`` in **two fresh
interpreter processes** with **different PYTHONHASHSEED values** must
produce byte-identical canonical digests.  A third in-process run
cross-checks the CLI digests against the API, and a ``--runtime all``
run asserts the three substrates decide identical views.

Exits non-zero (with a diagnostic) on any violation.  Run directly::

    python scripts/vtime_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src"
sys.path.insert(0, str(_SRC))


CHURN_ARGS = [
    "churn",
    "--scenario",
    "race",
    "--nodes",
    "16",
    "--runtime",
    "asyncio-virtual",
    "--seed",
    "7",
    "--json",
]


def cli_digest(hashseed: str) -> str:
    """Run the churn spec through a fresh ``repro`` CLI process."""
    env = dict(os.environ, PYTHONHASHSEED=hashseed)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(_SRC), env.get("PYTHONPATH", "")])
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro", *CHURN_ARGS],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    if completed.returncode != 0:
        raise SystemExit(
            f"CLI run failed (PYTHONHASHSEED={hashseed}):\n{completed.stderr}"
        )
    payload = json.loads(completed.stdout)
    run = payload["runs"][0]
    if run["runtime"] != "asyncio-virtual" or not run["quiescent"]:
        raise SystemExit(f"unexpected run shape: {run['runtime']}, {run['quiescent']}")
    return run["digest"]


def main() -> int:
    digests = {seed: cli_digest(seed) for seed in ("1", "31337")}
    values = set(digests.values())
    if len(values) != 1:
        print(
            "FAIL: digests differ across PYTHONHASHSEED values: "
            + ", ".join(f"{seed}={digest[:16]}" for seed, digest in digests.items()),
            file=sys.stderr,
        )
        return 1
    cli = values.pop()
    print(f"cross-process digest (2 hash seeds): {cli[:16]} OK")

    # In-process cross-check: the API run of the same spec matches the CLI.
    from repro.api import ExperimentSession
    from repro.api.presets import churn_scenario_spec

    spec = churn_scenario_spec(
        "race", nodes=16, seed=7, runtime="asyncio-virtual"
    )
    api_digest = ExperimentSession().run(spec).digest()
    if api_digest != cli:
        print(
            f"FAIL: API digest {api_digest[:16]} != CLI digest {cli[:16]}",
            file=sys.stderr,
        )
        return 1
    print(f"in-process API digest matches: {api_digest[:16]} OK")

    # All three substrates decide identical views on the same scenario.
    from repro.cli import main as cli_main

    lines: list[str] = []
    code = cli_main(
        [
            "churn",
            "--scenario",
            "steady",
            "--nodes",
            "16",
            "--duration",
            "30",
            "--runtime",
            "all",
        ],
        write=lines.append,
    )
    output = "\n".join(lines)
    if code != 0 or "runtimes decided identical views: True" not in output:
        print(f"FAIL: --runtime all disagreement:\n{output}", file=sys.stderr)
        return 1
    print("sim / asyncio / asyncio-virtual decided identical views OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
