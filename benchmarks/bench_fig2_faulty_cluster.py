"""FIG-2 benchmark: a faulty cluster of four adjacent faulty domains.

Measures the cost of untangling simultaneous agreements whose borders
overlap, and records which domains end up decided (the emergent behaviour
the figure is used to explain: CD7 guarantees a decision per *cluster*,
not per domain).
"""

from __future__ import annotations

from repro.experiments import fig2_scenario, run_fig2

from conftest import attach_metrics


def test_fig2_cluster_agreement(benchmark):
    scenario = fig2_scenario()

    def run():
        return scenario.run(check=False)

    result = benchmark(run)
    assert result.metrics.decisions > 0
    attach_metrics(benchmark, result, scenario="fig2")


def test_fig2_domain_outcomes(benchmark):
    observations = benchmark(run_fig2, check=True)
    assert observations.cluster_has_decision
    assert observations.result.specification.holds
    benchmark.extra_info.update(
        {
            "decided_domains": {
                name: decided for name, decided in observations.decided_domains.items()
            },
            "highest_ranked_decided": observations.decided_domains["F3"],
        }
    )
