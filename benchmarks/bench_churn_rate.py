"""CHURN-1 benchmark: protocol cost as a function of the churn rate.

Sweeps the steady-state churn rate on a torus and times the whole run
(detection, agreement and epoch bookkeeping for every crash→recover
cycle).  The paper's locality claim extends to churn: the per-cycle cost
depends on the churned region's border, not on the system size or the
number of concurrent cycles, so messages should scale linearly with the
number of cycles and the specification must hold at every rate.

Set ``REPRO_BENCH_SMOKE=1`` to run a reduced sweep (used by CI as a fast
smoke test).
"""

from __future__ import annotations

import os

import pytest

from repro.churn import run_churn, steady_state_churn
from repro.graph.generators import torus

from conftest import attach_metrics

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

SIDE = 6 if SMOKE else 8
RATES = (0.02, 0.05) if SMOKE else (0.01, 0.02, 0.05, 0.1)
DURATION = 40.0 if SMOKE else 100.0


@pytest.mark.parametrize("rate", RATES)
def test_churn_rate_sweep(benchmark, rate):
    graph = torus(SIDE, SIDE)
    schedule, membership = steady_state_churn(
        graph, churn_rate=rate, duration=DURATION, seed=7
    )

    def run():
        return run_churn(graph, schedule, membership, check=True)

    result = benchmark(run)
    assert result.quiescent
    assert result.specification.holds, result.specification.summary()
    cycles = len(membership)
    # Every recovered region re-announces and is re-agreed: at least one
    # decision per cycle, and message cost proportional to cycles, not |Pi|.
    assert result.metrics.decisions >= cycles
    attach_metrics(
        benchmark,
        result,
        churn_rate=rate,
        cycles=cycles,
        epochs=len(result.epochs),
        messages_per_cycle=result.metrics.messages_sent / max(cycles, 1),
    )
