"""Virtual-time benchmark: the real runtime with zero real sleeps.

Times one timeout-heavy churn scenario on all three runtime substrates —
the wall-clock asyncio runtime (which actually sleeps through the
schedule's gaps and quiescence polls), the virtual-time loop
(:mod:`repro.vtime`, same runtime code, simulator clock) and the
discrete-event simulator — and writes the measurements to
``BENCH_vtime.json``.

The scenario is deliberately sleep-dominated: a steady churn schedule
spread over ``--duration`` virtual time units at a ``--time-scale`` that
makes the wall-clock runtime spend seconds asleep.  The virtual loop
executes the identical callbacks with the clock jumping instant to
instant, so its wall time is the cost of the protocol work alone —
the acceptance bar is **>= 10x** faster than wall-clock, asserted
loudly below.  The virtual run is also executed twice and must be
digest-identical (the determinism contract; also asserted).

Reading the numbers: ``speedup_vs_wallclock`` is
``wall(asyncio) / wall(asyncio-virtual)``; ``slowdown_vs_sim`` compares
the virtual loop against the simulator on the same scenario — that gap
is the price of running real coroutines instead of scheduled callbacks.

Run directly::

    python benchmarks/bench_vtime.py [--smoke] [--nodes N] [--duration D]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.experiments.scenarios import churn_steady_scenario  # noqa: E402


MIN_SPEEDUP = 10.0


def run_benchmark(
    nodes: int, duration: float, time_scale: float, seed: int, timeout: float
) -> dict:
    from repro.churn import run_churn, run_churn_asyncio

    built = churn_steady_scenario(nodes=nodes, seed=seed, duration=duration)
    runs = []

    def timed(label: str, **kwargs) -> tuple[dict, object]:
        started = perf_counter()
        if label == "sim":
            result = run_churn(
                built.graph, built.schedule, built.membership, seed=seed
            )
        else:
            result = run_churn_asyncio(
                built.graph,
                built.schedule,
                built.membership,
                seed=seed,
                time_scale=time_scale,
                timeout=timeout,
                **kwargs,
            )
        digest = result.digest()
        wall = perf_counter() - started
        record = {
            "runtime": result.runtime,
            "wall_time_s": round(wall, 3),
            "virtual_time_units": round(duration, 3),
            "digest": digest,
            "events": len(result.trace),
            "decisions": len(result.decisions),
            "quiescent": result.quiescent,
        }
        runs.append(record)
        return record, result

    wallclock, _ = timed("asyncio", virtual=False)
    virtual_first, _ = timed("asyncio-virtual", virtual=True)
    virtual_second, _ = timed("asyncio-virtual", virtual=True)
    sim, _ = timed("sim")

    if virtual_first["digest"] != virtual_second["digest"]:
        raise AssertionError(
            "virtual-time runs of the same scenario produced different "
            f"digests ({virtual_first['digest'][:12]} vs "
            f"{virtual_second['digest'][:12]}) — the determinism contract "
            "is broken"
        )

    def ratio(numerator: float, denominator: float) -> float:
        return round(numerator / denominator, 3) if denominator > 0 else float("inf")

    virtual_wall = min(virtual_first["wall_time_s"], virtual_second["wall_time_s"])
    speedup = ratio(wallclock["wall_time_s"], virtual_wall)
    return {
        "benchmark": "bench_vtime",
        "version": repro.__version__,
        "config": {
            "nodes": len(built.graph),
            "duration": duration,
            "time_scale": time_scale,
            "seed": seed,
            "timeout": timeout,
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
        },
        "runs": runs,
        "speedup_vs_wallclock": speedup,
        "slowdown_vs_sim": ratio(virtual_wall, sim["wall_time_s"]),
        "virtual_digest_stable": True,
        "min_speedup_required": MIN_SPEEDUP,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI configuration (16-node torus)"
    )
    parser.add_argument("--nodes", type=int, default=None)
    parser.add_argument("--duration", type=float, default=None)
    parser.add_argument(
        "--time-scale",
        type=float,
        default=0.05,
        dest="time_scale",
        help="wall seconds per virtual time unit for the wall-clock run",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=600.0)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_vtime.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.smoke or os.environ.get("REPRO_BENCH_SMOKE"):
        nodes = args.nodes or 16
        duration = args.duration or 60.0
    else:
        nodes = args.nodes or 64
        duration = args.duration or 120.0
    result = run_benchmark(
        nodes=nodes,
        duration=duration,
        time_scale=args.time_scale,
        seed=args.seed,
        timeout=args.timeout,
    )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for run in result["runs"]:
        print(
            f"{run['runtime']}: wall={run['wall_time_s']}s "
            f"events={run['events']} decisions={run['decisions']} "
            f"quiescent={run['quiescent']} digest={run['digest'][:12]}"
        )
    print(
        f"speedup virtual vs wall-clock: {result['speedup_vs_wallclock']}x "
        f"(required >= {MIN_SPEEDUP}x)  "
        f"virtual vs sim: {result['slowdown_vs_sim']}x slower  "
        f"-> {args.output}"
    )
    if result["speedup_vs_wallclock"] < MIN_SPEEDUP:
        print(
            "FAIL: the virtual-time loop must beat the wall-clock runtime "
            f"by >= {MIN_SPEEDUP}x on a sleep-dominated scenario",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
