"""FIG-3 benchmark: view convergence on overlapping regions (CD6).

A region is agreed upon, then grows over part of its own border.  The
benchmark times the whole two-wave scenario and asserts that no conflicting
decision is ever taken on the overlapping grown region.
"""

from __future__ import annotations

from repro.experiments import fig3_scenario, run_fig3

from conftest import attach_metrics


def test_fig3_two_wave_scenario(benchmark):
    scenario = fig3_scenario()

    def run():
        return scenario.run(check=False)

    result = benchmark(run)
    assert len(result.decided_views) == 1
    attach_metrics(benchmark, result, scenario="fig3")


def test_fig3_convergence_analysis(benchmark):
    observations = benchmark(run_fig3, check=True)
    assert observations.first_wave_view is not None
    assert observations.grown_region_proposed
    assert observations.no_conflicting_decision
    assert observations.result.specification.holds
    benchmark.extra_info.update(
        {
            "post_growth_decisions": len(observations.post_growth_views),
            "grown_region_proposed": observations.grown_region_proposed,
        }
    )
