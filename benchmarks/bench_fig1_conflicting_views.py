"""FIG-1 benchmark: the world-city scenarios of the paper's Figure 1.

Times the full protocol run for Fig. 1a (two independent crashed regions)
and Fig. 1b (F1 grows into F3 mid-agreement) and records the agreement
outcome in ``extra_info``.
"""

from __future__ import annotations

from repro.experiments import (
    FIG1_F1,
    FIG1_F2,
    FIG1_F3,
    fig1a_scenario,
    fig1b_scenario,
    run_fig1b,
)
from repro.graph import Region

from conftest import attach_metrics


def test_fig1a_two_independent_regions(benchmark):
    scenario = fig1a_scenario()

    def run():
        return scenario.run(check=False)

    result = benchmark(run)
    assert result.decided_views == {Region(frozenset(FIG1_F1)), Region(frozenset(FIG1_F2))}
    attach_metrics(benchmark, result, scenario="fig1a")


def test_fig1b_growth_into_f3(benchmark):
    scenario = fig1b_scenario()

    def run():
        return scenario.run(check=False)

    result = benchmark(run)
    assert result.decided_views == {Region(frozenset(FIG1_F3))}
    assert result.deciding_nodes == {"london", "madrid", "roma", "berlin"}
    attach_metrics(benchmark, result, scenario="fig1b")


def test_fig1b_conflict_resolution_analysis(benchmark):
    """Times the full Fig. 1b observation pipeline (run + trace analysis)."""
    observations = benchmark(run_fig1b, check=True)
    assert observations.conflict_arose
    assert observations.converged_on_f3
    benchmark.extra_info.update(
        {
            "madrid_proposals": len(observations.madrid_proposals),
            "berlin_proposals": len(observations.berlin_proposals),
            "rejections": observations.rejections,
            "specification_holds": observations.result.specification.holds,
        }
    )
