"""SCALE-2 benchmark: partitioned event scheduling inside one large run.

Times one multi-block crash scenario on a ``side×side`` torus in every
execution mode — the sequential :class:`~repro.sim.network.Simulator`,
then the partitioned backend (inline and one-OS-process-per-shard) in
both trace collection modes (``collection="trace"``, full columnar
trace merged in the parent, and ``collection="digest"``, streamed
digest state with zero trace bytes on the wire) — asserts every mode
produces the same canonical trace digest (raising ``AssertionError``
loudly on any mismatch), and writes the measurements to
``BENCH_partition.json``.

The scenario crashes one block per partition-sized region of the torus so
that protocol work is spread across shards; a single-block scenario would
concentrate all work in one shard and measure nothing but overhead.

Reading the numbers: every ``wall_time_s`` includes producing the
canonical digest (trace collections defer it to after the run, the
digest collection folds it as events fire — timing the run alone would
flatter the deferred modes).  ``speedup`` is ``wall(sequential) /
wall(partitions=N, process backend, full trace)`` and
``speedup_digest`` the same ratio for the digest-only process backend.
Both are meaningful only when ``config.cpus >= partitions``; a
single-CPU container reports < 1x (the barrier and serialization
overhead with zero parallelism to pay for it) while ``digest_equal``
still proves the partitioned execution exact.  ``worker_payloads``
records the measured bytes each mode ships across the process boundary
(wire blob, raw pickle, and the pre-columnar object-trace baseline).

Run directly::

    python benchmarks/bench_partitioned_run.py [--smoke] [--partitions N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.experiments.runner import run_cliff_edge  # noqa: E402
from repro.experiments.scenarios import torus_block_members  # noqa: E402
from repro.failures import multi_region_crash  # noqa: E402
from repro.graph.generators import torus  # noqa: E402
from repro.sim.partition import measure_worker_payloads, run_partitioned  # noqa: E402


def build_scenario(side: int, partitions: int, block_side: int):
    """One ``block_side``-square crash per shard-sized cell of the torus.

    Blocks sit at the centres of a near-square grid of cells, so every
    partition of the default partitioner ends up with protocol activity.
    """
    graph = torus(side, side)
    columns = max(1, int(round(partitions**0.5)))
    rows = (partitions + columns - 1) // columns
    regions = []
    for index in range(partitions):
        row, column = divmod(index, columns)
        origin = (
            (column * side) // columns + side // (2 * columns),
            (row * side) // rows + side // (2 * rows),
        )
        regions.append(sorted(torus_block_members(side, block_side, origin)))
    schedule = multi_region_crash(graph, regions, at=1.0, stagger=0.5)
    return graph, schedule


def run_benchmark(side: int, partitions: int, block_side: int, seed: int) -> dict:
    graph, schedule = build_scenario(side, partitions, block_side)
    runs = []

    # Every mode's wall includes producing the canonical digest: trace
    # collections compute it lazily after the run, the digest collection
    # folds it as events fire — timing only the run would credit trace
    # modes with work they have merely deferred.
    started = perf_counter()
    sequential = run_cliff_edge(graph, schedule, seed=seed)
    sequential_digest = sequential.digest()
    sequential_wall = perf_counter() - started
    runs.append(
        {
            "mode": "sequential",
            "collection": "trace",
            "partitions": 1,
            "wall_time_s": round(sequential_wall, 3),
            "digest": sequential_digest,
            "events": len(sequential.trace),
        }
    )

    walls: dict[tuple[str, str], float] = {}
    for collection in ("trace", "digest"):
        for backend in ("inline", "process"):
            started = perf_counter()
            partitioned = run_partitioned(
                graph,
                schedule,
                partitions=partitions,
                seed=seed,
                backend=backend,
                collection=collection,
            )
            partitioned_digest = partitioned.digest()
            wall = perf_counter() - started
            walls[(collection, backend)] = wall
            runs.append(
                {
                    "mode": f"partitioned-{backend}",
                    "collection": collection,
                    "partitions": partitions,
                    "wall_time_s": round(wall, 3),
                    "digest": partitioned_digest,
                    "events": len(partitioned.trace),
                    "barrier_rounds": partitioned.barrier_rounds,
                }
            )

    digests = {run["digest"] for run in runs}
    if len(digests) != 1:
        detail = ", ".join(
            f"{run['mode']}/{run['collection']}={run['digest'][:12]}" for run in runs
        )
        raise AssertionError(
            "partitioned backend is not digest-identical to sequential "
            f"(the determinism contract is broken): {detail}"
        )

    # Measured outside the timed region: what each collection mode ships
    # across the process boundary (per-worker pickled payload sizes).
    payloads = {
        collection: measure_worker_payloads(
            graph, schedule, partitions=partitions, collection=collection, seed=seed
        )
        for collection in ("trace", "digest")
    }

    def ratio(numerator: float, denominator: float) -> float:
        return round(numerator / denominator, 3) if denominator > 0 else 1.0

    return {
        "benchmark": "bench_partitioned_run",
        "version": repro.__version__,
        "config": {
            "side": side,
            "nodes": side * side,
            "partitions": partitions,
            "block_side": block_side,
            "seed": seed,
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
        },
        "runs": runs,
        "speedup": ratio(sequential_wall, walls[("trace", "process")]),
        "speedup_digest": ratio(sequential_wall, walls[("digest", "process")]),
        "worker_payloads": payloads,
        "digest_equal": True,
    }


def _is_multicore_proof(report: dict) -> bool:
    """True when a report's speedups were measured with real parallelism."""
    config = report.get("config", {})
    cpus = config.get("cpus")
    partitions = config.get("partitions")
    return (
        isinstance(cpus, int)
        and isinstance(partitions, int)
        and cpus >= partitions
    )


def should_overwrite(existing: dict | None, new: dict) -> tuple[bool, str]:
    """Decide whether ``new`` may replace ``existing`` in the output file.

    The checked-in ``BENCH_partition.json`` is the repo's proof that the
    partitioned backend actually speeds runs up.  A run on a box with
    fewer CPUs than partitions measures only overhead (speedup < 1x), so
    it must never silently clobber an entry measured with real
    parallelism — a 1-CPU dev container re-running the benchmark would
    otherwise erase the multi-core CI numbers.
    """
    if existing is None:
        return True, "no existing report"
    if not _is_multicore_proof(existing):
        return True, "existing report was not a multi-core measurement"
    if _is_multicore_proof(new):
        return True, "both reports are multi-core measurements"
    config = existing.get("config", {})
    return False, (
        f"existing report is a multi-core proof "
        f"(cpus={config.get('cpus')} >= partitions={config.get('partitions')}) "
        f"and the new run is not "
        f"(cpus={new['config']['cpus']} < partitions={new['config']['partitions']})"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI configuration (16x16 torus)"
    )
    parser.add_argument("--side", type=int, default=None, help="torus side length")
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--block-side", type=int, default=None, dest="block_side")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_partition.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--force-write",
        action="store_true",
        dest="force_write",
        help="overwrite the output even when it holds a multi-core proof "
        "and this run does not",
    )
    args = parser.parse_args(argv)
    if args.smoke or os.environ.get("REPRO_BENCH_SMOKE"):
        side = args.side or 16
        block_side = args.block_side or 2
    else:
        side = args.side or 64
        block_side = args.block_side or 3
    result = run_benchmark(
        side=side, partitions=args.partitions, block_side=block_side, seed=args.seed
    )
    existing = None
    if args.output.exists():
        try:
            existing = json.loads(args.output.read_text())
        except (OSError, json.JSONDecodeError):
            existing = None
    write, reason = should_overwrite(existing, result)
    written = write or args.force_write
    if written:
        args.output.write_text(json.dumps(result, indent=2) + "\n")
    else:
        print(
            f"refusing to overwrite {args.output}: {reason} "
            "(pass --force-write to overwrite anyway)",
            file=sys.stderr,
        )
    for run in result["runs"]:
        extra = (
            f" barriers={run['barrier_rounds']}" if "barrier_rounds" in run else ""
        )
        print(
            f"{run['mode']}[{run['collection']}]: wall={run['wall_time_s']}s "
            f"events={run['events']} digest={run['digest'][:12]}{extra}"
        )
    payloads = result["worker_payloads"]
    print(
        "worker payload bytes (wire): "
        f"trace={payloads['trace']['total_payload_bytes']} "
        f"digest={payloads['digest']['total_payload_bytes']} "
        f"object-baseline={payloads['trace']['total_object_baseline_bytes']}"
    )
    cpus = result["config"]["cpus"]
    print(
        f"speedup (process x{args.partitions} vs sequential): "
        f"trace={result['speedup']}x digest={result['speedup_digest']}x "
        f"on {cpus} CPU(s)  digest-equal: {result['digest_equal']}"
        + (f"  -> {args.output}" if written else "  (report NOT written)")
    )
    if cpus is not None and cpus < args.partitions:
        print(
            "note: fewer CPUs than partitions — the speedups above measure "
            "overhead, not parallelism"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
