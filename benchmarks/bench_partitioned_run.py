"""SCALE-2 benchmark: partitioned event scheduling inside one large run.

Times one multi-block crash scenario on a ``side×side`` torus three ways —
the sequential :class:`~repro.sim.network.Simulator`, the partitioned
backend with all shards inline in one process (isolates the keyed-
scheduler/barrier overhead), and the partitioned backend with one OS
process per shard (the parallel path) — asserts all three produce the
same canonical trace digest (the backend's determinism contract), and
writes the measurements to ``BENCH_partition.json``.

The scenario crashes one block per partition-sized region of the torus so
that protocol work is spread across shards; a single-block scenario would
concentrate all work in one shard and measure nothing but overhead.

Reading the numbers: ``speedup`` is ``wall(sequential) /
wall(partitions=N, process backend)``.  It is meaningful only when
``config.cpus >= partitions``; a single-CPU container reports < 1x (the
barrier and serialization overhead with zero parallelism to pay for it)
while ``digest_equal`` still proves the partitioned execution exact.

Run directly::

    python benchmarks/bench_partitioned_run.py [--smoke] [--partitions N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.experiments.runner import run_cliff_edge  # noqa: E402
from repro.experiments.scenarios import torus_block_members  # noqa: E402
from repro.failures import multi_region_crash  # noqa: E402
from repro.graph.generators import torus  # noqa: E402
from repro.sim.partition import run_partitioned  # noqa: E402


def build_scenario(side: int, partitions: int, block_side: int):
    """One ``block_side``-square crash per shard-sized cell of the torus.

    Blocks sit at the centres of a near-square grid of cells, so every
    partition of the default partitioner ends up with protocol activity.
    """
    graph = torus(side, side)
    columns = max(1, int(round(partitions**0.5)))
    rows = (partitions + columns - 1) // columns
    regions = []
    for index in range(partitions):
        row, column = divmod(index, columns)
        origin = (
            (column * side) // columns + side // (2 * columns),
            (row * side) // rows + side // (2 * rows),
        )
        regions.append(sorted(torus_block_members(side, block_side, origin)))
    schedule = multi_region_crash(graph, regions, at=1.0, stagger=0.5)
    return graph, schedule


def run_benchmark(side: int, partitions: int, block_side: int, seed: int) -> dict:
    graph, schedule = build_scenario(side, partitions, block_side)
    runs = []

    started = perf_counter()
    sequential = run_cliff_edge(graph, schedule, seed=seed)
    sequential_wall = perf_counter() - started
    runs.append(
        {
            "mode": "sequential",
            "partitions": 1,
            "wall_time_s": round(sequential_wall, 3),
            "digest": sequential.digest(),
            "events": len(sequential.trace),
        }
    )

    for backend in ("inline", "process"):
        started = perf_counter()
        partitioned = run_partitioned(
            graph, schedule, partitions=partitions, seed=seed, backend=backend
        )
        wall = perf_counter() - started
        runs.append(
            {
                "mode": f"partitioned-{backend}",
                "partitions": partitions,
                "wall_time_s": round(wall, 3),
                "digest": partitioned.digest(),
                "events": len(partitioned.trace),
                "barrier_rounds": partitioned.barrier_rounds,
            }
        )

    digests = {run["digest"] for run in runs}
    if len(digests) != 1:
        raise AssertionError(
            f"partitioned backend is not digest-identical to sequential: {digests}"
        )
    process_wall = runs[-1]["wall_time_s"]
    speedup = sequential_wall / process_wall if process_wall > 0 else 1.0
    return {
        "benchmark": "bench_partitioned_run",
        "version": repro.__version__,
        "config": {
            "side": side,
            "nodes": side * side,
            "partitions": partitions,
            "block_side": block_side,
            "seed": seed,
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
        },
        "runs": runs,
        "speedup": round(speedup, 3),
        "digest_equal": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI configuration (16x16 torus)"
    )
    parser.add_argument("--side", type=int, default=None, help="torus side length")
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--block-side", type=int, default=None, dest="block_side")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_partition.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.smoke or os.environ.get("REPRO_BENCH_SMOKE"):
        side = args.side or 16
        block_side = args.block_side or 2
    else:
        side = args.side or 64
        block_side = args.block_side or 3
    result = run_benchmark(
        side=side, partitions=args.partitions, block_side=block_side, seed=args.seed
    )
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for run in result["runs"]:
        extra = (
            f" barriers={run['barrier_rounds']}" if "barrier_rounds" in run else ""
        )
        print(
            f"{run['mode']}: wall={run['wall_time_s']}s events={run['events']} "
            f"digest={run['digest'][:12]}{extra}"
        )
    cpus = result["config"]["cpus"]
    print(
        f"speedup (process x{args.partitions} vs sequential): {result['speedup']}x "
        f"on {cpus} CPU(s)  digest-equal: {result['digest_equal']}  -> {args.output}"
    )
    if cpus is not None and cpus < args.partitions:
        print(
            "note: fewer CPUs than partitions — the speedup above measures "
            "overhead, not parallelism"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
