"""EXP-A1 benchmark: the arbitration (reject) rule on and off.

With arbitration the conflicting-view workloads settle and everyone
decides; without it the stale instances can only be unblocked by further
crashes, so the protocol stalls.  Both variants are timed on the Fig. 1b
growth workload and on a staggered torus crash.
"""

from __future__ import annotations

import pytest

from repro.experiments import fig1b_scenario, run_cliff_edge
from repro.failures import region_crash
from repro.graph.generators import square_region, torus
from repro.sim import JitteredFailureDetector

from conftest import attach_metrics


@pytest.mark.parametrize("arbitration", [True, False], ids=["with-reject", "no-reject"])
def test_fig1b_growth_workload(benchmark, arbitration):
    scenario = fig1b_scenario()

    def run():
        return run_cliff_edge(
            scenario.graph,
            scenario.schedule,
            failure_detector=scenario.failure_detector,
            arbitration_enabled=arbitration,
            check=False,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    if arbitration:
        assert result.metrics.decisions == 4
    else:
        assert result.metrics.decisions == 0
    attach_metrics(
        benchmark,
        result,
        experiment="EXP-A1",
        workload="fig1b-growth",
        arbitration=arbitration,
    )


@pytest.mark.parametrize("arbitration", [True, False], ids=["with-reject", "no-reject"])
def test_staggered_torus_workload(benchmark, arbitration):
    graph = torus(10, 10)
    schedule = region_crash(graph, square_region((1, 1), 3), at=1.0, spread=6.0)

    def run():
        return run_cliff_edge(
            graph,
            schedule,
            failure_detector=JitteredFailureDetector(0.5, 2.5),
            arbitration_enabled=arbitration,
            check=False,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    if arbitration:
        assert result.metrics.decisions > 0
    else:
        assert result.metrics.decisions == 0
    attach_metrics(
        benchmark,
        result,
        experiment="EXP-A1",
        workload="staggered-torus",
        arbitration=arbitration,
    )
