"""EXP-B1 benchmark: cliff-edge consensus vs. whole-network flooding consensus.

The same 2x2 regional failure is handled (a) by the paper's protocol and
(b) by a classical whole-network uniform consensus on the crash map.  The
cliff-edge runs stay flat as the torus grows while the baseline's cost and
latency climb with the system size — the quantitative version of the
paper's introduction.
"""

from __future__ import annotations

import pytest

from repro.baselines import run_global_baseline
from repro.experiments import run_torus_region_scenario
from repro.failures import region_crash
from repro.graph.generators import square_region, torus

from conftest import attach_metrics

SIDES = (6, 8, 10, 12)
REGION_SIDE = 2


@pytest.mark.parametrize("side", SIDES)
def test_cliff_edge_on_regional_failure(benchmark, side):
    def run():
        result, _ = run_torus_region_scenario(side, REGION_SIDE, seed=0, check=False)
        return result

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.metrics.decisions > 0
    attach_metrics(
        benchmark,
        result,
        experiment="EXP-B1",
        approach="cliff-edge",
        system_size=side * side,
    )


@pytest.mark.parametrize("side", SIDES)
def test_global_consensus_on_regional_failure(benchmark, side):
    graph = torus(side, side)
    members = square_region((1, 1), REGION_SIDE)
    schedule = region_crash(graph, members, at=1.0)

    def run():
        return run_global_baseline(graph, schedule, seed=0)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.agreed
    assert result.decided_map == frozenset(members)
    benchmark.extra_info.update(
        {
            "experiment": "EXP-B1",
            "approach": "global-consensus",
            "system_size": side * side,
            "messages": result.metrics.messages_sent,
            "bytes": result.metrics.bytes_sent,
            "speaking_nodes": result.metrics.speaking_nodes,
            "decisions": result.metrics.decisions,
        }
    )
