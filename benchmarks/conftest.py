"""Shared helpers for the benchmark harness.

Every benchmark regenerates one row (or series) of the experiment index in
DESIGN.md.  Besides timing the run, each benchmark attaches the
paper-relevant quantities (messages, bytes, speaking nodes, decisions, ...)
to ``benchmark.extra_info`` so that ``pytest benchmarks/ --benchmark-only``
output doubles as the data source for EXPERIMENTS.md.
"""

from __future__ import annotations


def attach_metrics(benchmark, result, **extra) -> None:
    """Attach a RunResult's headline metrics to a benchmark."""
    metrics = result.metrics
    benchmark.extra_info.update(
        {
            "messages": metrics.messages_sent,
            "bytes": metrics.bytes_sent,
            "speaking_nodes": metrics.speaking_nodes,
            "decisions": metrics.decisions,
            "decided_views": metrics.decided_views,
            "rejections": metrics.rejections,
            "failed_instances": metrics.failed_instances,
            "nodes": len(result.graph),
            "crashed": len(result.schedule.nodes),
        }
    )
    benchmark.extra_info.update(extra)
