"""EXP-A2 benchmark: ranking-relation variants.

The canonical ranking (size, then border size, then lexicographic) is a
strict total order; the ablation replaces it with deliberately weaker
variants and shows the liveness cost: incomparable conflicting proposals
that the arbitration cannot order, so nobody in the faulty cluster decides.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_cliff_edge
from repro.failures import region_crash
from repro.graph import RANKINGS
from repro.graph.generators import square_region, torus
from repro.sim import JitteredFailureDetector

from conftest import attach_metrics


def _two_equal_regions_schedule(graph):
    region_a = square_region((1, 1), 2)
    region_b = square_region((1, 4), 2)
    return region_crash(graph, region_a, at=1.0).merged(
        region_crash(graph, region_b, at=1.0)
    )


@pytest.mark.parametrize("ranking_name", sorted(RANKINGS))
def test_ranking_variant_on_equal_sized_conflicts(benchmark, ranking_name):
    graph = torus(10, 10)
    schedule = _two_equal_regions_schedule(graph)
    ranking = RANKINGS[ranking_name]

    def run():
        return run_cliff_edge(
            graph,
            schedule,
            ranking=ranking,
            failure_detector=JitteredFailureDetector(0.5, 2.0),
            check=False,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    if ranking_name == "canonical":
        assert result.metrics.decisions > 0
    else:
        # Incomparable equal-sized proposals stall the cluster.
        assert result.metrics.decisions == 0
    attach_metrics(
        benchmark,
        result,
        experiment="EXP-A2",
        ranking=ranking_name,
    )
