"""EXP-B2/B3 benchmarks: cliff-edge vs. gossip convergence and vs.
uncoordinated local repair.

Gossip (partitionable-group-membership style) floods crash information
across the whole network and converges only eventually, with no explicit
decision; uncoordinated repair acts unilaterally and produces conflicting
actions.  Both are timed on the same workloads as the protocol.
"""

from __future__ import annotations

import pytest

from repro.baselines import run_gossip_baseline, run_uncoordinated_baseline
from repro.experiments import run_torus_region_scenario
from repro.failures import region_crash
from repro.graph.generators import square_region, torus

from conftest import attach_metrics

SIDES = (8, 12, 16)
REGION_SIDE = 2


@pytest.mark.parametrize("side", SIDES)
def test_gossip_eventual_convergence(benchmark, side):
    graph = torus(side, side)
    members = square_region((1, 1), REGION_SIDE)
    schedule = region_crash(graph, members, at=1.0)

    def run():
        return run_gossip_baseline(graph, schedule, seed=0)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.converged
    assert result.informed_nodes == side * side - len(members)
    benchmark.extra_info.update(
        {
            "experiment": "EXP-B2",
            "approach": "gossip",
            "system_size": side * side,
            "messages": result.metrics.messages_sent,
            "informed_nodes": result.informed_nodes,
            "view_installs": result.total_installs,
            "convergence_time": result.convergence_time,
        }
    )


@pytest.mark.parametrize("side", SIDES)
def test_cliff_edge_reference_for_gossip(benchmark, side):
    def run():
        result, _ = run_torus_region_scenario(side, REGION_SIDE, seed=0, check=False)
        return result

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    attach_metrics(
        benchmark,
        result,
        experiment="EXP-B2",
        approach="cliff-edge",
        system_size=side * side,
    )


def test_uncoordinated_repair_conflicts(benchmark):
    graph = torus(10, 10)
    members = square_region((1, 1), 3)
    schedule = region_crash(graph, members, at=1.0, spread=4.0)

    def run():
        return run_uncoordinated_baseline(graph, schedule, grace_period=1.5, seed=0)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.conflicting_pairs > 0
    benchmark.extra_info.update(
        {
            "experiment": "EXP-B3",
            "approach": "uncoordinated",
            "actors": len(result.actions),
            "conflicting_pairs": result.conflicting_pairs,
            "duplicated_repairs": result.duplicated_repairs,
        }
    )
