"""Fault-injection benchmark: what breaking the channels costs.

Times the quickstart cliff-edge scenario fault-free and under each link
fault model (loss, duplication, bounded reordering, and all three
composed) and writes the measurements to ``BENCH_faults.json``.

Two things are asserted loudly:

* **determinism** — every faulted configuration is run twice and must be
  digest-identical; the fault layer's keyed per-message RNG makes the
  injected faults a pure function of the spec, so any drift here is a
  contract violation, not noise;
* **overhead** — the per-message fault decision is one keyed hash plus a
  few RNG draws, so even the composed model must stay within
  ``MAX_OVERHEAD``x of the fault-free wall time.

Reading the numbers: ``overhead_vs_baseline`` is ``wall(faulted) /
wall(fault-free)`` using the best of two runs on each side; ``lost`` /
``duplicated`` count the injected fault events in the trace.

Run directly::

    python benchmarks/bench_faults.py [--smoke] [--side N] [--seed S]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.api import ExperimentSession, quickstart_spec  # noqa: E402
from repro.sim import EventKind  # noqa: E402

MAX_OVERHEAD = 5.0

FAULT_CONFIGS: dict[str, dict | None] = {
    "fault-free": None,
    "loss": {"loss": 0.05},
    "duplication": {"duplication": 0.2, "copies": 2},
    "reorder": {"reorder": 1.0, "reorder_rate": 0.5},
    "composed": {"loss": 0.02, "duplication": 0.1, "reorder": 0.5},
}


def run_benchmark(side: int, block: int, seed: int) -> dict:
    session = ExperimentSession()
    base = quickstart_spec(side=side, block=block, seed=seed)
    runs = []

    for label, faults in FAULT_CONFIGS.items():
        spec = base.with_faults(faults) if faults else base
        walls, digests = [], []
        result = None
        for _ in range(2):
            started = perf_counter()
            result = session.run(spec)
            walls.append(perf_counter() - started)
            digests.append(result.digest())
        if digests[0] != digests[1]:
            raise AssertionError(
                f"{label}: two runs of the same spec produced different "
                f"digests ({digests[0][:12]} vs {digests[1][:12]}) — the "
                "determinism contract is broken"
            )
        runs.append(
            {
                "faults": faults,
                "label": label,
                "wall_time_s": round(min(walls), 4),
                "digest": digests[0],
                "events": len(result.trace),
                "lost": len(list(result.trace.of_kind(EventKind.MESSAGE_LOST))),
                "duplicated": len(
                    list(result.trace.of_kind(EventKind.MESSAGE_DUPLICATED))
                ),
                "spec_holds": result.specification.holds,
                "quiescent": result.quiescent,
            }
        )

    baseline = runs[0]["wall_time_s"]
    for run in runs:
        run["overhead_vs_baseline"] = (
            round(run["wall_time_s"] / baseline, 3) if baseline > 0 else float("inf")
        )
    return {
        "benchmark": "bench_faults",
        "version": repro.__version__,
        "config": {
            "side": side,
            "block": block,
            "seed": seed,
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
        },
        "runs": runs,
        "digest_stable": True,
        "max_overhead_required": MAX_OVERHEAD,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI configuration (8x8 grid)"
    )
    parser.add_argument("--side", type=int, default=None)
    parser.add_argument("--block", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_faults.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.smoke or os.environ.get("REPRO_BENCH_SMOKE"):
        side = args.side or 8
    else:
        side = args.side or 16
    result = run_benchmark(side=side, block=args.block, seed=args.seed)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for run in result["runs"]:
        print(
            f"{run['label']}: wall={run['wall_time_s']}s "
            f"overhead={run['overhead_vs_baseline']}x events={run['events']} "
            f"lost={run['lost']} duplicated={run['duplicated']} "
            f"digest={run['digest'][:12]}"
        )
    worst = max(run["overhead_vs_baseline"] for run in result["runs"])
    print(
        f"worst overhead vs fault-free: {worst}x "
        f"(required <= {MAX_OVERHEAD}x)  -> {args.output}"
    )
    if worst > MAX_OVERHEAD:
        print(
            "FAIL: fault injection must stay within "
            f"{MAX_OVERHEAD}x of the fault-free wall time",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
