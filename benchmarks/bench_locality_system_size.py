"""EXP-L1 benchmark: cost vs. system size with a fixed crashed region.

The headline claim of the paper ("local complexity": cost independent of
the size of the complete system).  A fixed 3x3 block crashes in tori of
growing size; both the message counts (extra_info) and the wall-clock time
per agreement should stay essentially flat as the torus grows from 64 to
4096 nodes — the residual growth in wall-clock time is simulator set-up
(building and populating the bigger graph), not protocol work.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_torus_region_scenario

from conftest import attach_metrics

SIDES = (8, 16, 32, 64)
REGION_SIDE = 3

#: Message cost measured at the smallest system size, filled lazily and
#: compared against at every larger size (the flatness assertion).
_reference_messages: dict[int, int] = {}


@pytest.mark.parametrize("side", SIDES)
def test_locality_fixed_region_growing_system(benchmark, side):
    def run():
        result, region = run_torus_region_scenario(
            side, REGION_SIDE, seed=0, check=False
        )
        return result, region

    result, region = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    messages = result.metrics.messages_sent
    _reference_messages.setdefault(REGION_SIDE, messages)
    # The protocol's cost must not depend on the system size: identical
    # crashed region + identical seed => identical message count.
    assert messages == _reference_messages[REGION_SIDE]
    assert result.metrics.speaking_nodes == len(result.graph.border(region.members))
    attach_metrics(
        benchmark,
        result,
        experiment="EXP-L1",
        torus_side=side,
        system_size=side * side,
        region_side=REGION_SIDE,
        border_size=len(result.graph.border(region.members)),
    )
