"""EXP-R1 benchmark: end-to-end overlay repair.

Times the whole pipeline of the motivating application — regional crash on
a Chord-like ring, cliff-edge agreement on a repair plan, plan application
and structural verification — across ring and failure sizes.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_overlay_repair

from conftest import attach_metrics

CASES = [
    (16, 2),
    (32, 4),
    (64, 6),
]


@pytest.mark.parametrize("ring_size,arc_length", CASES)
def test_overlay_repair_end_to_end(benchmark, ring_size, arc_length):
    def run():
        return run_overlay_repair(
            ring_size=ring_size,
            successors=2,
            arc_start=3,
            arc_length=arc_length,
            seed=0,
            check=False,
        )

    run_result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert run_result.outcome.ring_restored
    assert run_result.outcome.survivors_connected
    assert len(run_result.outcome.plans) == 1
    attach_metrics(
        benchmark,
        run_result.result,
        experiment="EXP-R1",
        ring_size=ring_size,
        arc_length=arc_length,
        bridges=len(run_result.outcome.installed_edges),
    )
