"""SCALE-1 benchmark: sharded sweep throughput and determinism.

Times the large-torus scenario family (``torus_scale_tasks``) through
:class:`repro.scale.ShardedSweepRunner` at ``workers=1`` and
``workers=N``, asserts the two runs are digest-equal (the engine's
determinism contract), and writes the measurements to ``BENCH_sweep.json``
so the perf trajectory is tracked across PRs.

Also measures the spec-keyed topology build cache
(:mod:`repro.api.cache`): cold build time of the family's torus vs the
warm (cached) fetch — graph construction dominates 4096-node smoke runs,
and the torus-block family now shares one build per worker instead of
rebuilding per scenario.

Default configuration is the ROADMAP's 1024-node point (a 32x32 torus,
8 scenarios); ``--side 64`` is the 4096-node point.  ``--smoke`` runs a
tiny configuration suitable for CI.

Run directly::

    python benchmarks/bench_sweep_scale.py [--smoke] [--workers N]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
from pathlib import Path
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import (  # noqa: E402
    TopologySpec,
    build_topology,
    clear_topology_cache,
    topology_cache_info,
)
from repro.scale import ShardedSweepRunner, torus_scale_tasks  # noqa: E402


def bench_topology_cache(side: int, scenarios: int) -> dict:
    """Cold vs warm build time of the family's ``side×side`` torus.

    ``warm_total_s`` is what the cache saves per worker and per sweep:
    without it, every one of the ``scenarios`` tasks on a worker would
    pay the cold build.
    """
    spec = TopologySpec("torus", {"width": side, "height": side})
    clear_topology_cache()
    started = perf_counter()
    build_topology(spec)
    cold = perf_counter() - started
    started = perf_counter()
    for _ in range(scenarios):
        build_topology(spec)
    warm_total = perf_counter() - started
    info = topology_cache_info()
    clear_topology_cache()
    return {
        "side": side,
        "nodes": side * side,
        "cold_build_s": round(cold, 6),
        "warm_fetch_s": round(warm_total / scenarios, 6),
        "warm_total_s": round(warm_total, 6),
        "builds_saved_per_worker": scenarios - 1,
        "speedup": round(cold / (warm_total / scenarios), 1)
        if warm_total > 0
        else float("inf"),
        "hits": info.hits,
        "misses": info.misses,
    }


def run_benchmark(
    side: int,
    scenarios: int,
    workers: int,
    check: bool = True,
) -> dict:
    """Time the family at workers=1 and workers=``workers``."""
    tasks = torus_scale_tasks(side=side, scenarios=scenarios, check=check)
    runs = []
    digests = []
    for worker_count in sorted({1, workers}):
        runner = ShardedSweepRunner(workers=worker_count)
        started = perf_counter()
        report = runner.run(tasks)
        elapsed = perf_counter() - started
        digests.append(report.digest())
        runs.append(
            {
                "workers": worker_count,
                "wall_time_s": round(elapsed, 3),
                "worker_time_s": round(report.worker_time, 3),
                "digest": report.digest(),
                "all_hold": report.all_hold,
                "all_quiescent": report.all_quiescent,
                "total_messages": report.total_messages,
                "total_decisions": report.total_decisions,
            }
        )
    if len(set(digests)) != 1:
        raise AssertionError(
            f"sharded sweep is not deterministic across worker counts: {digests}"
        )
    speedup = (
        runs[0]["wall_time_s"] / runs[-1]["wall_time_s"]
        if len(runs) > 1 and runs[-1]["wall_time_s"] > 0
        else 1.0
    )
    return {
        "benchmark": "bench_sweep_scale",
        "config": {
            "side": side,
            "nodes": side * side,
            "scenarios": scenarios,
            "workers": workers,
            "check": check,
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
        },
        "runs": runs,
        "speedup": round(speedup, 3),
        "digest_equal": True,
        "topology_cache": bench_topology_cache(side, scenarios),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI configuration (8x8 torus)"
    )
    parser.add_argument("--side", type=int, default=None, help="torus side length")
    parser.add_argument("--scenarios", type=int, default=None)
    parser.add_argument(
        "--workers", type=int, default=0, help="sharded worker count (0 = CPU count)"
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sweep.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        side = args.side or 8
        scenarios = args.scenarios or 4
    else:
        side = args.side or 32
        scenarios = args.scenarios or 8
    workers = args.workers if args.workers else max(os.cpu_count() or 1, 2)
    result = run_benchmark(side=side, scenarios=scenarios, workers=workers)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for run in result["runs"]:
        print(
            f"workers={run['workers']}: wall={run['wall_time_s']}s "
            f"worker_time={run['worker_time_s']}s digest={run['digest'][:12]}"
        )
    cache = result["topology_cache"]
    print(
        f"topology cache ({cache['nodes']} nodes): cold={cache['cold_build_s']}s "
        f"warm={cache['warm_fetch_s']}s ({cache['speedup']}x, "
        f"{cache['builds_saved_per_worker']} builds saved per worker)"
    )
    print(
        f"speedup (workers={workers} vs 1): {result['speedup']}x  "
        f"digest-equal: {result['digest_equal']}  -> {args.output}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
