"""EXP-C1 benchmark: CD1–CD7 checked under adversarial crash schedules.

Times complete randomised cases (topology generation, protocol run and the
full specification check) and asserts that every case satisfies the
specification — the empirical counterpart of the paper's Theorems 1–4.
"""

from __future__ import annotations

import pytest

from repro.experiments import property_sweep, run_sweep_case, sweep_summary

SEEDS = (0, 1, 2, 3, 4)


@pytest.mark.parametrize("seed", SEEDS)
def test_adversarial_case_satisfies_specification(benchmark, seed):
    case = benchmark.pedantic(run_sweep_case, args=(seed,), rounds=3, iterations=1)
    assert case.specification_holds, case.violations
    assert case.quiescent
    benchmark.extra_info.update(
        {
            "experiment": "EXP-C1",
            "seed": seed,
            "topology": case.topology,
            "nodes": case.nodes,
            "crashed": case.crashed,
            "faulty_domains": case.faulty_domains,
            "decisions": case.decisions,
            "messages": case.messages,
        }
    )


def test_sweep_batch(benchmark):
    """One timed batch of 10 randomised cases (the EXP-C1 table row)."""

    def run():
        return property_sweep(seeds=tuple(range(10)))

    cases = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = sweep_summary(cases)
    assert summary["all_hold"]
    assert summary["all_quiescent"]
    benchmark.extra_info.update({"experiment": "EXP-C1", **{
        key: value for key, value in summary.items() if key != "violating_seeds"
    }})
