"""EXP-A3 benchmark: the footnote-6 early-termination optimisation.

The paper notes (footnote 6) that an instance can terminate "once a node
sees that all nodes in its border set know everything (i.e. no ⊥), i.e.
after two rounds, in the best case".  This benchmark runs the same regional
failure with Algorithm 1 as written and with the optimisation enabled, and
records the message/byte savings alongside the timing.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_cliff_edge
from repro.failures import region_crash
from repro.graph.generators import square_region, torus

from conftest import attach_metrics

TORUS_SIDE = 16
REGION_SIDE = 3

_messages: dict[bool, int] = {}


@pytest.mark.parametrize("early", [False, True], ids=["full-rounds", "early-termination"])
def test_early_termination_savings(benchmark, early):
    graph = torus(TORUS_SIDE, TORUS_SIDE)
    schedule = region_crash(graph, square_region((1, 1), REGION_SIDE), at=1.0)

    def run():
        return run_cliff_edge(graph, schedule, early_termination=early, check=False)

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    _messages[early] = result.metrics.messages_sent
    assert result.metrics.decided_views == 1
    assert result.metrics.decisions == 12  # border of the 3x3 block
    if False in _messages and True in _messages:
        assert _messages[True] < _messages[False]
    attach_metrics(
        benchmark,
        result,
        experiment="EXP-A3",
        early_termination=early,
    )
