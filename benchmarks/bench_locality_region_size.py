"""EXP-L2 benchmark: cost vs. crashed-region size in a fixed torus.

The complementary claim to EXP-L1: the protocol's cost *does* track the
crashed region (participants are its border; the flooding rounds grow with
the border size), which is exactly the dependence the paper accepts in
exchange for independence from the system size.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_torus_region_scenario

from conftest import attach_metrics

TORUS_SIDE = 24
REGION_SIDES = (1, 2, 3, 4, 5)

_messages_by_region: dict[int, int] = {}


@pytest.mark.parametrize("region_side", REGION_SIDES)
def test_cost_tracks_region_size(benchmark, region_side):
    def run():
        result, region = run_torus_region_scenario(
            TORUS_SIDE, region_side, seed=0, check=False
        )
        return result, region

    result, region = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    border_size = len(result.graph.border(region.members))
    _messages_by_region[region_side] = result.metrics.messages_sent
    # Monotone growth with the region (and border) size.
    smaller = [s for s in _messages_by_region if s < region_side]
    for s in smaller:
        assert _messages_by_region[s] < _messages_by_region[region_side]
    assert border_size == 4 * region_side
    attach_metrics(
        benchmark,
        result,
        experiment="EXP-L2",
        torus_side=TORUS_SIDE,
        region_side=region_side,
        region_size=region_side * region_side,
        border_size=border_size,
    )
