"""Service benchmark: what does the wire cost, and what does the cache buy?

Boots a local experiment server (ephemeral port, in-process workers) and
measures, for one experiment spec and one sweep spec:

* ``local_s`` — running the spec in-process through ``ExperimentSession``
  (the floor: no HTTP, no ledger, no store);
* ``fresh_s`` — submit → worker executes → terminal job over HTTP;
* ``cached_s`` — the identical resubmission, answered from the
  digest-keyed result store without executing anything;
* ``result_bytes`` — the JSON result document fetched by the client,
  for both trace and digest collection modes (the digest mode ships a
  32-byte partial instead of a trace).

Every digest is asserted equal to the local run's — the benchmark
doubles as an end-to-end determinism check.  Writes
``BENCH_service.json``.

Run directly::

    python benchmarks/bench_service_roundtrip.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import threading
from pathlib import Path
from tempfile import TemporaryDirectory
from time import perf_counter

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import repro  # noqa: E402
from repro.api import locality_sweep_spec, quickstart_spec, run_spec  # noqa: E402
from repro.service import ServiceClient, serve  # noqa: E402


def timed_submit(client: ServiceClient, document: dict, label: str) -> dict:
    started = perf_counter()
    job = client.submit(document)["job"]
    if not job["state"] == "done":
        job = client.wait(job["id"], timeout=600.0)
    wall = perf_counter() - started
    if job["state"] != "done":
        raise AssertionError(f"{label}: job ended {job['state']}: {job.get('error')}")
    result_bytes = len(json.dumps(client.result(job["id"])))
    return {
        "label": label,
        "wall_time_s": round(wall, 4),
        "digest": job["digest"],
        "cached": job["cached"],
        "result_bytes": result_bytes,
    }


def run_benchmark(side: int, sweep_sides: tuple, workers: int) -> dict:
    experiment = quickstart_spec(side=side)
    digest_mode = experiment.with_collection("digest")
    sweep = locality_sweep_spec("l1", sides=sweep_sides)

    locals_ = {}
    for label, spec in (("experiment", experiment), ("sweep", sweep)):
        started = perf_counter()
        locals_[label] = {
            "digest": run_spec(spec).digest(),
            "wall_time_s": round(perf_counter() - started, 4),
        }

    runs = []
    with TemporaryDirectory(prefix="repro-bench-service-") as root:
        server = serve(root, port=0, workers=workers)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url)
            for label, spec in (
                ("experiment", experiment),
                ("sweep", sweep),
                ("experiment-digest-mode", digest_mode),
            ):
                fresh = timed_submit(client, spec.to_dict(), f"{label}/fresh")
                cached = timed_submit(client, spec.to_dict(), f"{label}/cached")
                if not cached["cached"]:
                    raise AssertionError(f"{label}: resubmission missed the cache")
                if fresh["digest"] != cached["digest"]:
                    raise AssertionError(f"{label}: cache returned a different digest")
                expected = locals_.get(label.split("-")[0])
                if expected and fresh["digest"] != expected["digest"]:
                    raise AssertionError(
                        f"{label}: wire digest {fresh['digest'][:12]} != local "
                        f"{expected['digest'][:12]}"
                    )
                runs.extend([fresh, cached])
        finally:
            server.shutdown()
            server.service.stop_workers()
            server.server_close()
            thread.join(timeout=5.0)

    return {
        "benchmark": "bench_service_roundtrip",
        "version": repro.__version__,
        "config": {
            "side": side,
            "sweep_sides": list(sweep_sides),
            "workers": workers,
            "cpus": os.cpu_count(),
            "python": platform.python_version(),
        },
        "local": locals_,
        "runs": runs,
        "digest_equal": True,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="tiny CI configuration")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_service.json",
    )
    args = parser.parse_args(argv)
    smoke = args.smoke or os.environ.get("REPRO_BENCH_SMOKE")
    side = 6 if smoke else 12
    sweep_sides = (8, 12) if smoke else (8, 12, 16, 24)
    result = run_benchmark(side=side, sweep_sides=sweep_sides, workers=args.workers)
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    for run in result["runs"]:
        print(
            f"{run['label']}: wall={run['wall_time_s']}s "
            f"bytes={run['result_bytes']} digest={run['digest'][:12]}"
        )
    for label, local in result["local"].items():
        print(f"{label}/local: wall={local['wall_time_s']}s")
    print(f"digest-equal: {result['digest_equal']}  -> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
