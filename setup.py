"""Setuptools shim.

All project metadata lives in ``pyproject.toml``; this file exists so the
package can also be installed in environments without network access to
build backends (legacy ``pip install -e .`` code path).
"""

from setuptools import setup

setup()
