"""Knowledge graph substrate.

The paper models the system as a finite undirected graph ``G = (Pi, E)``
where vertices are nodes of the distributed system and edges represent the
*knowledge* nodes have of each other ("node x knows node y").  All region,
border, and connected-component computations of the protocol are expressed
against this graph.

The paper additionally assumes that "each node can query G on demand,
either by directly contacting live nodes, or using some underlying topology
service for crashed nodes".  We realise that assumption with a single
read-only :class:`KnowledgeGraph` instance shared by every simulated node.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Optional

NodeId = Hashable


class GraphError(ValueError):
    """Raised when a graph is constructed or queried inconsistently."""


class KnowledgeGraph:
    """An immutable, undirected graph of node identifiers.

    A single instance is a *snapshot* of the topology: it never changes,
    even when nodes crash.  Crashes are modelled separately (see
    :mod:`repro.failures`); the graph keeps answering queries about crashed
    nodes, playing the role of the "underlying topology service" the paper
    assumes.  Dynamic membership (:mod:`repro.churn`) is modelled by the
    runtimes swapping in *derived* snapshots built with :meth:`with_node`,
    :meth:`with_edges` and :meth:`without` at membership-epoch boundaries.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs.  Self loops are rejected.
    nodes:
        Optional iterable of extra (possibly isolated) nodes.

    Examples
    --------
    >>> g = KnowledgeGraph([("a", "b"), ("b", "c")])
    >>> sorted(g.neighbours("b"))
    ['a', 'c']
    >>> g.degree("b")
    2
    """

    __slots__ = ("_adjacency", "_edge_count", "_frozen_nodes")

    def __init__(
        self,
        edges: Iterable[tuple[NodeId, NodeId]] = (),
        nodes: Iterable[NodeId] = (),
    ) -> None:
        adjacency: dict[NodeId, set[NodeId]] = {}
        edge_count = 0
        for node in nodes:
            adjacency.setdefault(node, set())
        for u, v in edges:
            if u == v:
                raise GraphError(f"self loop on node {u!r} is not allowed")
            adjacency.setdefault(u, set())
            adjacency.setdefault(v, set())
            if v not in adjacency[u]:
                edge_count += 1
            adjacency[u].add(v)
            adjacency[v].add(u)
        self._adjacency: dict[NodeId, frozenset[NodeId]] = {
            node: frozenset(neigh) for node, neigh in adjacency.items()
        }
        self._edge_count = edge_count
        self._frozen_nodes = frozenset(self._adjacency)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> frozenset[NodeId]:
        """The set of all node identifiers in the graph."""
        return self._frozen_nodes

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return self._edge_count

    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adjacency

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adjacency)

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Iterate over each undirected edge exactly once."""
        seen: set[frozenset[NodeId]] = set()
        for u, neighbours in self._adjacency.items():
            for v in neighbours:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield (u, v)

    def neighbours(self, node: NodeId) -> frozenset[NodeId]:
        """Return the neighbours (the *border*) of a single node."""
        try:
            return self._adjacency[node]
        except KeyError:
            raise GraphError(f"unknown node {node!r}") from None

    # American-spelling alias, used by some callers.
    neighbors = neighbours

    def degree(self, node: NodeId) -> int:
        """Number of neighbours of ``node``."""
        return len(self.neighbours(node))

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """True when ``{u, v}`` is an edge of the graph."""
        return u in self._adjacency and v in self._adjacency[u]

    def adjacency(self) -> Mapping[NodeId, frozenset[NodeId]]:
        """Read-only adjacency mapping (node -> neighbour set)."""
        return dict(self._adjacency)

    # ------------------------------------------------------------------
    # Set-level queries used by the protocol
    # ------------------------------------------------------------------
    def border(self, nodes: Iterable[NodeId]) -> frozenset[NodeId]:
        """Border of a set of nodes, exactly as defined in the paper.

        ``border(S) = {q in Pi \\ S | exists p in S : (p, q) in E}`` — the
        nodes *outside* ``S`` with at least one neighbour *inside* ``S``.
        """
        node_set = frozenset(nodes)
        result: set[NodeId] = set()
        for node in node_set:
            result.update(self.neighbours(node))
        return frozenset(result - node_set)

    def closed_neighbourhood(self, nodes: Iterable[NodeId]) -> frozenset[NodeId]:
        """``S ∪ border(S)`` — the locality scope of CD3."""
        node_set = frozenset(nodes)
        return node_set | self.border(node_set)

    def is_connected_subset(self, nodes: Iterable[NodeId]) -> bool:
        """True when the subgraph induced by ``nodes`` is connected.

        The empty set is conventionally *not* connected (a region in the
        paper is a non-empty connected subgraph).
        """
        node_set = frozenset(nodes)
        if not node_set:
            return False
        for node in node_set:
            if node not in self._adjacency:
                raise GraphError(f"unknown node {node!r}")
        start = next(iter(node_set))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbour in self._adjacency[current]:
                if neighbour in node_set and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen == node_set

    def connected_components(self, nodes: Iterable[NodeId]) -> frozenset[frozenset[NodeId]]:
        """Maximal connected regions of the induced subgraph ``G[nodes]``.

        This is the paper's ``connectedComponents(S)`` primitive (§3.1).
        """
        remaining = set(frozenset(nodes))
        for node in remaining:
            if node not in self._adjacency:
                raise GraphError(f"unknown node {node!r}")
        components: list[frozenset[NodeId]] = []
        while remaining:
            start = next(iter(remaining))
            seen = {start}
            frontier = [start]
            while frontier:
                current = frontier.pop()
                for neighbour in self._adjacency[current]:
                    if neighbour in remaining and neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
            remaining -= seen
            components.append(frozenset(seen))
        return frozenset(components)

    def is_connected(self) -> bool:
        """True when the whole graph is connected (and non-empty)."""
        return self.is_connected_subset(self._frozen_nodes)

    def shortest_path_length(self, source: NodeId, target: NodeId) -> Optional[int]:
        """Hop distance between two nodes, or ``None`` when unreachable."""
        if source not in self._adjacency:
            raise GraphError(f"unknown node {source!r}")
        if target not in self._adjacency:
            raise GraphError(f"unknown node {target!r}")
        if source == target:
            return 0
        distances = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier: list[NodeId] = []
            for node in frontier:
                for neighbour in self._adjacency[node]:
                    if neighbour not in distances:
                        distances[neighbour] = distances[node] + 1
                        if neighbour == target:
                            return distances[neighbour]
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return None

    # ------------------------------------------------------------------
    # Derived graphs and interop
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[NodeId]) -> "KnowledgeGraph":
        """The subgraph induced by ``nodes``."""
        node_set = frozenset(nodes)
        for node in node_set:
            if node not in self._adjacency:
                raise GraphError(f"unknown node {node!r}")
        edges = [
            (u, v)
            for u, v in self.edges()
            if u in node_set and v in node_set
        ]
        return KnowledgeGraph(edges, nodes=node_set)

    def without(self, nodes: Iterable[NodeId]) -> "KnowledgeGraph":
        """The subgraph obtained by removing ``nodes`` (e.g. crashed ones)."""
        removed = frozenset(nodes)
        return self.subgraph(self._frozen_nodes - removed)

    def with_edges(
        self, edges: Iterable[tuple[NodeId, NodeId]]
    ) -> "KnowledgeGraph":
        """A new graph with ``edges`` added (endpoints are created if new).

        The churn subsystem uses this (together with :meth:`with_node` and
        :meth:`without`) to derive each membership epoch's graph from the
        previous one; the graph itself stays immutable.
        """
        return KnowledgeGraph(
            list(self.edges()) + list(edges), nodes=self._frozen_nodes
        )

    def with_node(
        self, node: NodeId, neighbours: Iterable[NodeId] = ()
    ) -> "KnowledgeGraph":
        """A new graph with ``node`` inserted, attached to ``neighbours``.

        Every neighbour must already exist: a joining node can only attach
        to nodes the topology service knows about.  Inserting an existing
        node is rejected — recoveries that change the node's edges go
        through ``without([node]).with_node(node, new_neighbours)``.
        """
        if node in self._adjacency:
            raise GraphError(f"node {node!r} is already in the graph")
        neighbour_set = frozenset(neighbours)
        if node in neighbour_set:
            raise GraphError(f"self loop on node {node!r} is not allowed")
        unknown = neighbour_set - self._frozen_nodes
        if unknown:
            raise GraphError(
                f"cannot attach {node!r} to unknown nodes "
                f"{sorted(map(repr, unknown))}"
            )
        return KnowledgeGraph(
            list(self.edges()) + [(node, n) for n in sorted(neighbour_set, key=repr)],
            nodes=self._frozen_nodes | {node},
        )

    def to_networkx(self):  # pragma: no cover - optional interop
        """Export to a :class:`networkx.Graph` when networkx is installed."""
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self._frozen_nodes)
        graph.add_edges_from(self.edges())
        return graph

    @classmethod
    def from_adjacency(
        cls, adjacency: Mapping[NodeId, Iterable[NodeId]]
    ) -> "KnowledgeGraph":
        """Build a graph from a ``node -> neighbours`` mapping.

        The mapping may be asymmetric; edges are symmetrised.
        """
        edges = [
            (node, neighbour)
            for node, neighbours in adjacency.items()
            for neighbour in neighbours
        ]
        return cls(edges, nodes=adjacency.keys())

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph(nodes={len(self._adjacency)}, "
            f"edges={self._edge_count})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KnowledgeGraph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __hash__(self) -> int:
        return hash(
            frozenset((node, neigh) for node, neigh in self._adjacency.items())
        )
