"""Knowledge-graph substrate: topology, regions, borders and ranking."""

from .graph import GraphError, KnowledgeGraph, NodeId
from .ranking import (
    DEFAULT_RANKING,
    RANKINGS,
    CanonicalRanking,
    RegionRanking,
    SizeBorderRanking,
    SizeOnlyRanking,
    max_ranked_region,
    region_precedes,
)
from .regions import (
    Region,
    RegionError,
    are_adjacent,
    cluster_border,
    clustered,
    faulty_clusters,
    faulty_domains,
)
from . import generators

__all__ = [
    "GraphError",
    "KnowledgeGraph",
    "NodeId",
    "Region",
    "RegionError",
    "are_adjacent",
    "cluster_border",
    "clustered",
    "faulty_clusters",
    "faulty_domains",
    "CanonicalRanking",
    "SizeOnlyRanking",
    "SizeBorderRanking",
    "RegionRanking",
    "DEFAULT_RANKING",
    "RANKINGS",
    "region_precedes",
    "max_ranked_region",
    "generators",
]
