"""Regions, faulty domains and faulty clusters.

The paper (§2.2) defines:

* a **region**: a connected subgraph of ``G`` (we represent a region by its
  vertex set);
* a **crashed region** at time ``t``: a region whose nodes have all crashed;
* a **faulty domain**: a region whose nodes are all faulty and whose border
  nodes are all correct (the *maximal* extent a crashed region can reach
  during the run);
* **adjacency** of faulty domains: two faulty domains are adjacent when
  their borders intersect;
* a **faulty cluster**: an equivalence class of the transitive closure of
  adjacency.

This module provides a small value type :class:`Region` plus the
faulty-domain / faulty-cluster computations used by the liveness property
CD7 and by the experiment harness.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

from .graph import GraphError, KnowledgeGraph, NodeId


class RegionError(ValueError):
    """Raised when a set of nodes does not form a valid region."""


@dataclass(frozen=True)
class Region:
    """A non-empty connected set of nodes of a :class:`KnowledgeGraph`.

    Instances are immutable and hashable; they are used as dictionary keys
    by the protocol (one consensus instance per proposed view).

    Use :meth:`Region.of` to build a validated region, or construct
    directly with a ``frozenset`` when connectivity has already been
    established (e.g. from ``connected_components``).
    """

    members: frozenset[NodeId]

    def __post_init__(self) -> None:
        if not self.members:
            raise RegionError("a region must contain at least one node")
        # Canonical layout: rebuild the member set by inserting in repr
        # order, so iteration order is a pure function of (value, hash
        # seed) — identical across pickle round trips and in every
        # process sharing the hash seed (the partitioned backend's
        # process workers fork, and downstream border computations
        # iterate regions into behaviour-observable orders).
        object.__setattr__(
            self, "members", frozenset(sorted(self.members, key=repr))
        )

    def __reduce__(self):
        # Unpickle through __init__ so the canonical layout is restored.
        return (type(self), (self.members,))

    @classmethod
    def of(cls, graph: KnowledgeGraph, nodes: Iterable[NodeId]) -> "Region":
        """Build a region after validating connectivity in ``graph``."""
        node_set = frozenset(nodes)
        if not node_set:
            raise RegionError("a region must contain at least one node")
        if not graph.is_connected_subset(node_set):
            raise RegionError(f"nodes {sorted(map(repr, node_set))} are not connected")
        return cls(node_set)

    # -- set-like behaviour -------------------------------------------------
    def __contains__(self, node: NodeId) -> bool:
        return node in self.members

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def overlaps(self, other: "Region") -> bool:
        """True when the two regions share at least one node (CD6 premise)."""
        return bool(self.members & other.members)

    def issubset(self, other: "Region") -> bool:
        return self.members <= other.members

    def union(self, other: "Region") -> frozenset[NodeId]:
        """Union of member sets (not necessarily connected)."""
        return self.members | other.members

    # -- graph-derived quantities -------------------------------------------
    def border(self, graph: KnowledgeGraph) -> frozenset[NodeId]:
        """The border of the region in ``graph`` (the paper's border(S))."""
        return graph.border(self.members)

    def closed_neighbourhood(self, graph: KnowledgeGraph) -> frozenset[NodeId]:
        """``S ∪ border(S)``, the locality scope of CD3."""
        return graph.closed_neighbourhood(self.members)

    def is_crashed_region(self, graph: KnowledgeGraph, crashed: Iterable[NodeId]) -> bool:
        """True when every member has crashed and the region is connected."""
        crashed_set = frozenset(crashed)
        return self.members <= crashed_set and graph.is_connected_subset(self.members)

    def sorted_members(self) -> tuple[NodeId, ...]:
        """Members sorted by ``repr`` — a stable, type-agnostic order."""
        return tuple(sorted(self.members, key=repr))

    def __repr__(self) -> str:
        inner = ", ".join(repr(node) for node in self.sorted_members())
        return f"Region({{{inner}}})"


# ---------------------------------------------------------------------------
# Faulty domains and clusters
# ---------------------------------------------------------------------------
def faulty_domains(
    graph: KnowledgeGraph, faulty: Iterable[NodeId]
) -> frozenset[Region]:
    """The faulty domains induced by a set of faulty nodes.

    A faulty domain is a maximal connected region of faulty nodes; by
    construction its border nodes are correct.  Two faulty domains are
    either equal or disjoint.
    """
    faulty_set = frozenset(faulty)
    unknown = faulty_set - graph.nodes
    if unknown:
        raise GraphError(f"unknown faulty nodes: {sorted(map(repr, unknown))}")
    return frozenset(
        Region(component) for component in graph.connected_components(faulty_set)
    )


def are_adjacent(graph: KnowledgeGraph, first: Region, second: Region) -> bool:
    """True when two faulty domains are adjacent (their borders intersect).

    The paper notes adjacency ``F ‖ H`` when ``border(F) ∩ border(H) ≠ ∅``.
    A domain is adjacent to itself by this definition.
    """
    return bool(first.border(graph) & second.border(graph))


def faulty_clusters(
    graph: KnowledgeGraph, faulty: Iterable[NodeId]
) -> frozenset[frozenset[Region]]:
    """Partition the faulty domains into faulty clusters.

    A faulty cluster is an equivalence class of the transitive closure of
    the adjacency relation between faulty domains (the paper's
    ``clustered`` relation, footnote 5).
    """
    domains = list(faulty_domains(graph, faulty))
    clusters: list[set[int]] = []
    assigned: dict[int, int] = {}
    for index, domain in enumerate(domains):
        merged_into: set[int] = set()
        for other_index in range(index):
            if are_adjacent(graph, domain, domains[other_index]):
                merged_into.add(assigned[other_index])
        if not merged_into:
            cluster_id = len(clusters)
            clusters.append({index})
            assigned[index] = cluster_id
        else:
            target = min(merged_into)
            clusters[target].add(index)
            assigned[index] = target
            for cluster_id in merged_into - {target}:
                for member in clusters[cluster_id]:
                    assigned[member] = target
                clusters[target].update(clusters[cluster_id])
                clusters[cluster_id] = set()
    return frozenset(
        frozenset(domains[index] for index in cluster)
        for cluster in clusters
        if cluster
    )


def clustered(
    graph: KnowledgeGraph,
    faulty: Iterable[NodeId],
    first: Region,
    second: Region,
) -> bool:
    """True when ``first`` and ``second`` belong to the same faulty cluster."""
    for cluster in faulty_clusters(graph, faulty):
        if first in cluster and second in cluster:
            return True
    return False


def cluster_border(graph: KnowledgeGraph, cluster: Iterable[Region]) -> frozenset[NodeId]:
    """Union of the borders of every domain in a cluster.

    These are exactly the nodes among which CD7 guarantees at least one
    decision.
    """
    result: set[NodeId] = set()
    for domain in cluster:
        result.update(domain.border(graph))
    return frozenset(result)
