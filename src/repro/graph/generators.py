"""Synthetic topology generators.

The paper motivates cliff-edge consensus with very large decentralised
systems (DHTs, overlays, geo-distributed services) but evaluates nothing
numerically.  These generators provide the workloads used by our
experiments: regular lattices whose crashed regions have predictable
shapes (grids, tori, rings), and irregular graphs that stress the
region/border machinery (random geometric, small-world, scale-free,
clustered).

All generators are deterministic for a given ``seed``.
"""

from __future__ import annotations

import math
import random
from collections.abc import Sequence

from .graph import GraphError, KnowledgeGraph, NodeId


def grid(width: int, height: int, diagonal: bool = False) -> KnowledgeGraph:
    """A ``width x height`` 2-D lattice; nodes are ``(x, y)`` tuples.

    With ``diagonal=True`` the eight-neighbourhood (Moore) is used instead
    of the four-neighbourhood (von Neumann).
    """
    if width <= 0 or height <= 0:
        raise GraphError("grid dimensions must be positive")
    edges: list[tuple[NodeId, NodeId]] = []
    offsets = [(1, 0), (0, 1)]
    if diagonal:
        offsets += [(1, 1), (1, -1)]
    for x in range(width):
        for y in range(height):
            for dx, dy in offsets:
                nx, ny = x + dx, y + dy
                if 0 <= nx < width and 0 <= ny < height:
                    edges.append(((x, y), (nx, ny)))
    nodes = [(x, y) for x in range(width) for y in range(height)]
    return KnowledgeGraph(edges, nodes=nodes)


def torus(width: int, height: int) -> KnowledgeGraph:
    """A 2-D torus (grid with wrap-around) — the EXP-L1/L2 workhorse.

    Every node has degree 4, so a ``k x k`` crashed square always has a
    border of the same size regardless of the torus dimensions, which is
    exactly what the locality experiments need.
    """
    if width < 3 or height < 3:
        raise GraphError("torus dimensions must be at least 3")
    edges: list[tuple[NodeId, NodeId]] = []
    for x in range(width):
        for y in range(height):
            edges.append(((x, y), ((x + 1) % width, y)))
            edges.append(((x, y), (x, (y + 1) % height)))
    return KnowledgeGraph(edges)


def ring(size: int, successors: int = 1) -> KnowledgeGraph:
    """A ring of ``size`` integer nodes, each knowing ``successors`` hops.

    With ``successors > 1`` this models a Chord-like successor list, the
    substrate of the overlay-repair application (EXP-R1).
    """
    if size < 3:
        raise GraphError("ring size must be at least 3")
    if successors < 1 or successors >= size:
        raise GraphError("successor count must be in [1, size)")
    edges = [
        (i, (i + hop) % size)
        for i in range(size)
        for hop in range(1, successors + 1)
    ]
    return KnowledgeGraph(edges)


def chord_like(size: int, successors: int = 2, fingers: bool = True) -> KnowledgeGraph:
    """A ring plus power-of-two finger edges, approximating a Chord overlay."""
    base_edges = list(ring(size, successors).edges())
    if fingers:
        hop = 2
        while hop < size // 2:
            base_edges.extend((i, (i + hop) % size) for i in range(size))
            hop *= 2
    return KnowledgeGraph(base_edges)


def complete(size: int) -> KnowledgeGraph:
    """The complete graph on integer nodes ``0 .. size-1``."""
    if size < 1:
        raise GraphError("complete graph needs at least one node")
    edges = [(i, j) for i in range(size) for j in range(i + 1, size)]
    return KnowledgeGraph(edges, nodes=range(size))


def star(leaves: int) -> KnowledgeGraph:
    """A star: node ``0`` is the hub, ``1..leaves`` are leaves."""
    if leaves < 1:
        raise GraphError("star needs at least one leaf")
    return KnowledgeGraph([(0, i) for i in range(1, leaves + 1)])


def line(size: int) -> KnowledgeGraph:
    """A path graph of ``size`` integer nodes."""
    if size < 2:
        raise GraphError("line needs at least two nodes")
    return KnowledgeGraph([(i, i + 1) for i in range(size - 1)])


def random_geometric(
    size: int, radius: float, seed: int = 0, ensure_connected: bool = True
) -> KnowledgeGraph:
    """Random geometric graph on the unit square.

    Nodes are integers carrying implicit coordinates; an edge links nodes
    whose points are within ``radius``.  Mirrors physical-proximity
    topologies (sensor networks, geo DHTs) where correlated regional
    failures are natural.
    """
    if size < 2:
        raise GraphError("random geometric graph needs at least two nodes")
    rng = random.Random(seed)
    for attempt in range(64):
        points = {i: (rng.random(), rng.random()) for i in range(size)}
        edges = []
        for i in range(size):
            for j in range(i + 1, size):
                xi, yi = points[i]
                xj, yj = points[j]
                if math.hypot(xi - xj, yi - yj) <= radius:
                    edges.append((i, j))
        graph = KnowledgeGraph(edges, nodes=range(size))
        if not ensure_connected or graph.is_connected():
            return graph
    raise GraphError(
        f"could not generate a connected random geometric graph "
        f"(size={size}, radius={radius}) after 64 attempts; increase radius"
    )


def watts_strogatz(size: int, degree: int, rewire: float, seed: int = 0) -> KnowledgeGraph:
    """Watts–Strogatz small-world graph (ring lattice with rewiring)."""
    if degree % 2 != 0 or degree < 2:
        raise GraphError("degree must be a positive even number")
    if size <= degree:
        raise GraphError("size must exceed degree")
    if not 0.0 <= rewire <= 1.0:
        raise GraphError("rewire probability must be in [0, 1]")
    rng = random.Random(seed)
    edge_set: set[frozenset[int]] = set()
    for i in range(size):
        for hop in range(1, degree // 2 + 1):
            edge_set.add(frozenset((i, (i + hop) % size)))
    edges = [tuple(sorted(edge)) for edge in edge_set]
    rewired: set[frozenset[int]] = set(frozenset(edge) for edge in edges)
    for u, v in list(edges):
        if rng.random() < rewire:
            candidates = [w for w in range(size) if w != u]
            rng.shuffle(candidates)
            for w in candidates:
                candidate = frozenset((u, w))
                if candidate not in rewired:
                    rewired.discard(frozenset((u, v)))
                    rewired.add(candidate)
                    break
    return KnowledgeGraph([tuple(edge) for edge in rewired], nodes=range(size))


def barabasi_albert(size: int, attach: int, seed: int = 0) -> KnowledgeGraph:
    """Barabási–Albert preferential-attachment graph (scale-free)."""
    if attach < 1:
        raise GraphError("attach must be at least 1")
    if size <= attach:
        raise GraphError("size must exceed attach")
    rng = random.Random(seed)
    edges: list[tuple[int, int]] = []
    targets = list(range(attach))
    repeated: list[int] = list(range(attach))
    for new_node in range(attach, size):
        chosen: set[int] = set()
        while len(chosen) < attach:
            chosen.add(rng.choice(repeated) if repeated else rng.randrange(new_node))
        for target in chosen:
            edges.append((new_node, target))
            repeated.append(target)
            repeated.append(new_node)
        targets.append(new_node)
    return KnowledgeGraph(edges, nodes=range(size))


def clustered_communities(
    communities: int,
    community_size: int,
    intra_probability: float = 0.8,
    bridges: int = 2,
    seed: int = 0,
) -> KnowledgeGraph:
    """Dense communities connected by a few bridge edges.

    Correlated failures that take out an entire community are the
    motivating failure mode of the paper (nodes behind the same relay /
    in the same rack).  Node ids are ``(community, index)`` tuples.
    """
    if communities < 1 or community_size < 2:
        raise GraphError("need at least one community of size >= 2")
    if not 0.0 < intra_probability <= 1.0:
        raise GraphError("intra_probability must be in (0, 1]")
    rng = random.Random(seed)
    edges: list[tuple[NodeId, NodeId]] = []
    for community in range(communities):
        members = [(community, index) for index in range(community_size)]
        # Spanning ring first so each community is connected.
        for index in range(community_size):
            edges.append((members[index], members[(index + 1) % community_size]))
        for i in range(community_size):
            for j in range(i + 2, community_size):
                if rng.random() < intra_probability:
                    edges.append((members[i], members[j]))
    for community in range(communities):
        other = (community + 1) % communities
        if other == community:
            continue
        for bridge in range(bridges):
            edges.append(
                (
                    (community, bridge % community_size),
                    (other, (bridge + 1) % community_size),
                )
            )
    nodes = [(c, i) for c in range(communities) for i in range(community_size)]
    return KnowledgeGraph(edges, nodes=nodes)


def from_edge_list(edges: Sequence[tuple[NodeId, NodeId]]) -> KnowledgeGraph:
    """Trivial wrapper, handy for tests and hand-drawn topologies."""
    return KnowledgeGraph(edges)


def square_region(corner: tuple[int, int], side: int) -> frozenset[NodeId]:
    """The ``side x side`` block of grid/torus coordinates at ``corner``.

    Used by the locality experiments to carve out crashed regions of a
    known shape.  Coordinates are *not* wrapped; on a torus, pick corners
    that keep the block inside ``[0, width) x [0, height)``.
    """
    cx, cy = corner
    return frozenset(
        (cx + dx, cy + dy) for dx in range(side) for dy in range(side)
    )
