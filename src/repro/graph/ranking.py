"""The region ranking relation ``≺`` of §3.1.

The protocol arbitrates between conflicting views with a strict total
order on regions.  The paper defines ``R ≻ S`` ("R outranks S") iff:

1. ``R`` contains more nodes than ``S``; or
2. they contain the same number of nodes but ``R``'s border contains more
   nodes than ``S``'s border; or
3. both sizes are equal and ``R`` is greater than ``S`` according to some
   strict total order on node sets (the paper suggests a lexicographic
   order on node ids — the concrete choice does not matter as long as it
   is a strict total order and is the same at every node).

The ordering therefore *subsumes set inclusion*: a strict superset always
outranks its subsets, a fact the progress proof (Theorem 4) relies on.

This module provides the canonical ranking plus two deliberately weaker
variants used by the ranking ablation experiment (EXP-A2).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Protocol

from .graph import KnowledgeGraph, NodeId
from .regions import Region


def _lexicographic_key(members: Iterable[NodeId]) -> tuple[str, ...]:
    """A deterministic, type-agnostic total order on node sets.

    Node identifiers may be ints, strings or any hashable; sorting their
    ``repr`` strings gives every node set a canonical tuple that compares
    lexicographically, which is all the paper requires of the tie-break.
    """
    return tuple(sorted(repr(node) for node in members))


class RegionRanking(Protocol):
    """Interface of a ranking relation usable by the protocol."""

    name: str

    def key(self, graph: KnowledgeGraph, region: Region) -> tuple:
        """Sort key; higher tuples mean higher-ranked regions."""
        ...

    def precedes(self, graph: KnowledgeGraph, lower: Region, higher: Region) -> bool:
        """``lower ≺ higher`` (strictly lower ranked)."""
        ...


class CanonicalRanking:
    """The paper's ranking: size, then border size, then lexicographic."""

    name = "canonical"

    def key(self, graph: KnowledgeGraph, region: Region) -> tuple:
        return (
            len(region),
            len(region.border(graph)),
            _lexicographic_key(region.members),
        )

    def precedes(self, graph: KnowledgeGraph, lower: Region, higher: Region) -> bool:
        if lower == higher:
            return False
        return self.key(graph, lower) < self.key(graph, higher)

    def max_ranked(self, graph: KnowledgeGraph, regions: Iterable[Region]) -> Region:
        """``maxRankedRegion(C)`` — the highest ranked region of a set."""
        candidates = list(regions)
        if not candidates:
            raise ValueError("maxRankedRegion of an empty collection")
        return max(candidates, key=lambda region: self.key(graph, region))


class SizeOnlyRanking:
    """Ablation variant: rank by region size only (not a total order).

    Ties between distinct, equally sized regions are broken by the
    lexicographic key *anyway* so that ``max`` stays deterministic, but the
    ``precedes`` relation deliberately reports ``False`` on size ties —
    which is how a practitioner might naively implement the rule and what
    EXP-A2 measures the consequences of.
    """

    name = "size-only"

    def key(self, graph: KnowledgeGraph, region: Region) -> tuple:
        return (len(region), _lexicographic_key(region.members))

    def precedes(self, graph: KnowledgeGraph, lower: Region, higher: Region) -> bool:
        if lower == higher:
            return False
        return len(lower) < len(higher)

    def max_ranked(self, graph: KnowledgeGraph, regions: Iterable[Region]) -> Region:
        candidates = list(regions)
        if not candidates:
            raise ValueError("maxRankedRegion of an empty collection")
        return max(candidates, key=lambda region: self.key(graph, region))


class SizeBorderRanking:
    """Ablation variant: size then border size, no lexicographic tie-break."""

    name = "size-border"

    def key(self, graph: KnowledgeGraph, region: Region) -> tuple:
        return (
            len(region),
            len(region.border(graph)),
            _lexicographic_key(region.members),
        )

    def precedes(self, graph: KnowledgeGraph, lower: Region, higher: Region) -> bool:
        if lower == higher:
            return False
        lower_key = (len(lower), len(lower.border(graph)))
        higher_key = (len(higher), len(higher.border(graph)))
        return lower_key < higher_key

    def max_ranked(self, graph: KnowledgeGraph, regions: Iterable[Region]) -> Region:
        candidates = list(regions)
        if not candidates:
            raise ValueError("maxRankedRegion of an empty collection")
        return max(candidates, key=lambda region: self.key(graph, region))


#: The ranking used everywhere unless an experiment overrides it.
DEFAULT_RANKING = CanonicalRanking()

#: All rankings, keyed by name, for the ablation harness.
RANKINGS: dict[str, RegionRanking] = {
    ranking.name: ranking
    for ranking in (CanonicalRanking(), SizeOnlyRanking(), SizeBorderRanking())
}


def region_precedes(
    graph: KnowledgeGraph,
    lower: Region,
    higher: Region,
    ranking: RegionRanking = DEFAULT_RANKING,
) -> bool:
    """Convenience wrapper: ``lower ≺ higher`` under ``ranking``."""
    return ranking.precedes(graph, lower, higher)


def max_ranked_region(
    graph: KnowledgeGraph,
    regions: Iterable[Region],
    ranking: RegionRanking = DEFAULT_RANKING,
) -> Region:
    """Convenience wrapper for ``maxRankedRegion``."""
    return ranking.max_ranked(graph, regions)  # type: ignore[attr-defined]
