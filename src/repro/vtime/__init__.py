"""Virtual-time asyncio: deterministic execution of the real runtime.

The third runtime substrate, between the discrete-event simulator and
the wall-clock asyncio runtime: the *same* asyncio protocol code the
wall-clock runtime executes, driven by
:class:`~repro.vtime.loop.VirtualClockEventLoop`, whose clock is a
:class:`~repro.sim.scheduler.KeyedEventScheduler`.  Runs complete with
zero real sleeps and are digest-reproducible across processes and
``PYTHONHASHSEED`` values, which is what makes asyncio scenarios
sweepable (:mod:`repro.scale`) and servable (:mod:`repro.service`).

Spec surface: ``RuntimeSpec(engine="asyncio-virtual")`` /
``repro churn --runtime asyncio-virtual`` / ``repro run SPEC --runtime
asyncio-virtual``.
"""

from .loop import VirtualClockEventLoop, VirtualTimeDeadlock, VirtualTimeError
from .runtime import VirtualRuntime, run_cliff_edge_virtual

__all__ = [
    "VirtualClockEventLoop",
    "VirtualTimeDeadlock",
    "VirtualTimeError",
    "VirtualRuntime",
    "run_cliff_edge_virtual",
]
