"""A deterministic virtual-time asyncio event loop.

:class:`VirtualClockEventLoop` implements the ``asyncio.AbstractEventLoop``
surface the repo's protocol code touches, but its clock is the
simulator's: ``time()``/``call_later()``/``call_at()`` delegate to a
:class:`~repro.sim.scheduler.KeyedEventScheduler`, so an ``await
asyncio.sleep(5.0)`` completes after five *virtual* seconds and zero real
ones.  Driving the loop pops scheduler events in ``(time, key)`` order —
nothing ever blocks on a wall clock, an OS selector, or thread timing.

Determinism is the point, and it rests on two properties:

* **a FIFO-stable ready queue** — ``call_soon`` schedules at the current
  virtual time, so ready callbacks (task steps, future wakeups) run
  before time advances, in a total order independent of hashing;
* **genealogical tie-break keys** — every scheduled callback gets a key
  minted from the key of the event that scheduled it (``parent + (n,)``
  for the parent's ``n``-th child, root events numbered in submission
  order).  Same-timestamp ties therefore break by *causal history*, a
  pure function of the program, never of ``id()``, hash order, or which
  worker process is running.  This is the same contract the partitioned
  simulator backend uses (see :mod:`repro.sim.partition`), carried by the
  same :class:`~repro.sim.scheduler.KeyedEventScheduler`.

The pattern — an ``AbstractEventLoop`` whose timers are entries in a
deterministic discrete-event scheduler — follows OpenEnv's Rust-backed
event loop; here the scheduler is the repo's own, so the *real*
:class:`~repro.runtime.async_runtime.AsyncRuntime` protocol code runs
unmodified, reproducibly, at simulator speed.
"""

from __future__ import annotations

import asyncio
import warnings
from asyncio import events as _events
from typing import Any, Callable, Optional

from ..sim.scheduler import EventHandle, KeyedEventScheduler

_INFINITY = float("inf")


class VirtualTimeError(RuntimeError):
    """Raised on virtual-loop misuse (nested runs, closed loop, ...)."""


class VirtualTimeDeadlock(VirtualTimeError):
    """The virtual clock ran dry while a future was still pending.

    In virtual time there is no "wait and see": if the scheduler holds no
    event, no timer will ever fire and no callback will ever run, so a
    pending future can never complete.  Real-time code that would hang
    silently fails loudly here instead.
    """


class VirtualClockEventLoop(asyncio.AbstractEventLoop):
    """An asyncio event loop on simulated time.

    Parameters
    ----------
    scheduler:
        The backing :class:`~repro.sim.scheduler.KeyedEventScheduler`.
        A fresh one is created by default; passing one in lets a caller
        interleave loop callbacks with other keyed clients of the same
        clock.
    """

    def __init__(self, scheduler: Optional[KeyedEventScheduler] = None) -> None:
        if scheduler is None:
            scheduler = KeyedEventScheduler()
        self._scheduler = scheduler
        # run_window() publishes each executing entry's (time, key) into
        # its context and zeroes the child counter — the same per-event
        # contract the partition simulator uses.  The loop is its own
        # context: _next_key() reads these fields to mint genealogical
        # child keys.
        scheduler.context = self
        self._ctx_time = 0.0
        self._ctx_key: Optional[tuple] = None
        self._ctx_children = 0
        self._ctx_emits = 0
        self._root_sequence = 0
        #: Live scheduler entries by handle identity, so a cancelled
        #: asyncio handle cancels its scheduler entry (lazy deletion).
        self._entries: dict[int, EventHandle] = {}
        self._running = False
        self._stopping = False
        self._closed = False
        self._debug = False
        self._exception_handler: Optional[Callable[..., None]] = None
        self._task_factory: Optional[Callable[..., Any]] = None

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def time(self) -> float:
        """Current *virtual* time (the scheduler's clock)."""
        return self._scheduler.now

    @property
    def scheduler(self) -> KeyedEventScheduler:
        return self._scheduler

    @property
    def processed_events(self) -> int:
        """Callbacks executed so far (observability for benches/tests)."""
        return self._scheduler.processed_events

    # ------------------------------------------------------------------
    # Genealogical keys
    # ------------------------------------------------------------------
    def _next_key(self) -> tuple:
        if self._ctx_key is not None:
            key = self._ctx_key + (self._ctx_children,)
            self._ctx_children += 1
            return key
        key = (self._root_sequence,)
        self._root_sequence += 1
        return key

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def _check_closed(self) -> None:
        if self._closed:
            raise VirtualTimeError("operation on a closed VirtualClockEventLoop")

    def call_soon(
        self, callback: Callable[..., Any], *args: Any, context: Any = None
    ) -> asyncio.Handle:
        """Schedule at the current virtual time (the FIFO ready queue)."""
        self._check_closed()
        handle = asyncio.Handle(callback, args, self, context)
        self._schedule_handle(self._scheduler.now, handle)
        return handle

    def call_soon_threadsafe(
        self, callback: Callable[..., Any], *args: Any, context: Any = None
    ) -> asyncio.Handle:
        # The virtual loop is single-threaded by construction — real
        # threads would reintroduce the nondeterminism it exists to kill
        # — so threadsafe scheduling is plain scheduling.
        return self.call_soon(callback, *args, context=context)

    def call_later(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        context: Any = None,
    ) -> asyncio.TimerHandle:
        return self.call_at(
            self._scheduler.now + max(0.0, float(delay)),
            callback,
            *args,
            context=context,
        )

    def call_at(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        context: Any = None,
    ) -> asyncio.TimerHandle:
        """Schedule at an absolute virtual time (clamped to ``now``)."""
        self._check_closed()
        when = float(when)
        handle = asyncio.TimerHandle(when, callback, args, self, context)
        self._schedule_handle(max(self._scheduler.now, when), handle)
        return handle

    def _schedule_handle(self, time: float, handle: Any) -> None:
        entry = self._scheduler.schedule_keyed(
            time, self._next_key(), lambda: self._run_handle(handle)
        )
        self._entries[id(handle)] = entry

    def _run_handle(self, handle: Any) -> None:
        self._entries.pop(id(handle), None)
        if not handle.cancelled():
            handle._run()

    def _timer_handle_cancelled(self, handle: asyncio.TimerHandle) -> None:
        # asyncio.TimerHandle.cancel() notifies its loop; drop the
        # scheduler entry so a cancel-heavy workload (failure-detector
        # churn) keeps the heap bounded by live events.
        entry = self._entries.pop(id(handle), None)
        if entry is not None:
            entry.cancel()

    # ------------------------------------------------------------------
    # Futures and tasks
    # ------------------------------------------------------------------
    def create_future(self) -> asyncio.Future:
        return asyncio.Future(loop=self)

    def create_task(self, coro: Any, *, name: Any = None, context: Any = None):
        self._check_closed()
        if self._task_factory is not None:
            task = self._task_factory(self, coro)
            if name is not None:
                task.set_name(name)
            return task
        if context is not None:
            return asyncio.Task(coro, loop=self, name=name, context=context)
        return asyncio.Task(coro, loop=self, name=name)

    def set_task_factory(self, factory: Optional[Callable[..., Any]]) -> None:
        self._task_factory = factory

    def get_task_factory(self) -> Optional[Callable[..., Any]]:
        return self._task_factory

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run_until_complete(
        self, future: Any, *, max_events: Optional[int] = None
    ) -> Any:
        """Drive the scheduler until ``future`` resolves; return its result.

        Raises :class:`VirtualTimeDeadlock` when the scheduler runs dry
        with the future still pending, and :class:`VirtualTimeError` when
        ``max_events`` callbacks execute without completion (the virtual
        analogue of the simulator's event budget).
        """
        self._check_closed()
        future = asyncio.ensure_future(future, loop=self)
        self._drive(until_done=future, max_events=max_events)
        if not future.done():
            future.cancel()
            raise VirtualTimeError(
                f"event budget exhausted after {max_events} callbacks with "
                "the run still pending"
            )
        return future.result()

    def run_forever(self) -> None:
        """Drive until :meth:`stop` or the scheduler drains."""
        self._check_closed()
        self._drive()

    def stop(self) -> None:
        self._stopping = True

    def _drive(
        self, until_done: Optional[asyncio.Future] = None, max_events: Optional[int] = None
    ) -> None:
        if self._running:
            raise VirtualTimeError("VirtualClockEventLoop is already running")
        scheduler = self._scheduler
        self._running = True
        self._stopping = False
        previous_loop = _events._get_running_loop()
        _events._set_running_loop(self)
        try:
            executed = 0
            while not self._stopping:
                if until_done is not None and until_done.done():
                    return
                if scheduler.is_idle():
                    if until_done is not None:
                        raise VirtualTimeDeadlock(
                            "virtual clock ran dry at "
                            f"t={scheduler.now:.6f} with the run still "
                            "pending: no timer or callback will ever "
                            "complete the awaited future"
                        )
                    return
                if max_events is not None and executed >= max_events:
                    return
                # One scheduler event per window keeps the per-event
                # context (time, key, child counter) scoped exactly to
                # that event's execution.
                executed += scheduler.run_window(
                    _INFINITY, inclusive=True, max_events=1
                )
        finally:
            self._running = False
            self._stopping = False
            _events._set_running_loop(previous_loop)

    # ------------------------------------------------------------------
    # State / lifecycle
    # ------------------------------------------------------------------
    def is_running(self) -> bool:
        return self._running

    def is_closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._running:
            raise VirtualTimeError("cannot close a running VirtualClockEventLoop")
        self._closed = True

    async def shutdown_asyncgens(self) -> None:  # pragma: no cover - trivial
        return None

    async def shutdown_default_executor(self, timeout: Optional[float] = None) -> None:  # pragma: no cover - trivial
        return None

    # ------------------------------------------------------------------
    # Debug / exception plumbing (the parts asyncio internals require)
    # ------------------------------------------------------------------
    def get_debug(self) -> bool:
        return self._debug

    def set_debug(self, enabled: bool) -> None:
        self._debug = bool(enabled)

    def set_exception_handler(self, handler: Optional[Callable[..., None]]) -> None:
        self._exception_handler = handler

    def get_exception_handler(self) -> Optional[Callable[..., None]]:
        return self._exception_handler

    def default_exception_handler(self, context: dict) -> None:
        self._raise_from_context(context)

    def call_exception_handler(self, context: dict) -> None:
        """Fail loudly: a swallowed callback error is a silent fork in a
        run that is supposed to be a pure function of its spec.

        The one exception is teardown: once the loop has stopped driving
        (budget exhausted, run abandoned), garbage collection of still-
        pending tasks reports through this handler from ``__del__``,
        where a raise can only print "Exception ignored" noise — so
        outside :meth:`_drive` the report becomes a warning instead.
        """
        if self._exception_handler is not None:
            self._exception_handler(self, context)
            return
        if not self._running:
            warnings.warn(
                "VirtualClockEventLoop teardown: "
                + str(context.get("message") or context.get("exception")),
                RuntimeWarning,
                stacklevel=2,
            )
            return
        self._raise_from_context(context)

    @staticmethod
    def _raise_from_context(context: dict) -> None:
        exception = context.get("exception")
        if isinstance(exception, BaseException):
            raise exception
        raise VirtualTimeError(
            str(context.get("message") or "unhandled error in VirtualClockEventLoop")
        )
