"""The virtual-time runtime: real asyncio protocol code, simulator clock.

:class:`VirtualRuntime` runs the *unmodified*
:class:`~repro.runtime.async_runtime.AsyncRuntime` — the same Process
classes, inboxes, node tasks, timers, crash notifications and membership
mechanics the wall-clock runtime uses — on a
:class:`~repro.vtime.loop.VirtualClockEventLoop`.  Every ``await
asyncio.sleep`` inside the runtime (schedule pacing, quiescence polling)
and every ``loop.call_later`` (detector notifications, protocol timers)
lands in the virtual scheduler, so a run:

* performs **zero real sleeps** — wall-clock cost is the cost of the
  callbacks themselves, typically simulator speed;
* is a **pure function of its inputs** — task wakeup order is fixed by
  the loop's genealogical keys, so the trace (and therefore the
  canonical digest) is identical across repeated runs, across
  ``PYTHONHASHSEED`` values, and across host machines;
* keeps the asyncio timing *model* — zero message latency, scaled
  detector delays — so wall-clock and virtual runs of the same scenario
  are the same code following the same clock, one real and one simulated.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..failures import CrashSchedule
from ..graph import KnowledgeGraph, NodeId
from ..runtime.async_runtime import AsyncRunResult, AsyncRuntime
from ..sim.failure_detector import FailureDetectorPolicy
from ..sim.faults import FaultModel
from ..sim.process import Process
from .loop import VirtualClockEventLoop


class VirtualRuntime:
    """Drives an :class:`AsyncRuntime` to completion on virtual time.

    The constructor mirrors :class:`AsyncRuntime` (plus the optional
    ``failure_detector`` policy both now share); configuration calls
    (``add_process``/``populate``/``process``) delegate to the wrapped
    runtime, and :meth:`run` is synchronous — the virtual loop needs no
    ``asyncio.run``.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        detection_delay: float = 0.01,
        time_scale: float = 0.01,
        seed: int = 0,
        failure_detector: Optional[FailureDetectorPolicy] = None,
        faults: Optional[FaultModel] = None,
    ) -> None:
        self.loop = VirtualClockEventLoop()
        self.runtime = AsyncRuntime(
            graph,
            detection_delay=detection_delay,
            time_scale=time_scale,
            seed=seed,
            failure_detector=failure_detector,
            faults=faults,
        )

    # -- delegated configuration ---------------------------------------
    @property
    def graph(self) -> KnowledgeGraph:
        return self.runtime.graph

    @property
    def trace(self):
        return self.runtime.trace

    def add_process(self, node_id: NodeId, process: Process) -> None:
        self.runtime.add_process(node_id, process)

    def populate(self, factory: Callable[[NodeId], Process]) -> None:
        self.runtime.populate(factory)

    def process(self, node_id: NodeId) -> Process:
        return self.runtime.process(node_id)

    def now(self) -> float:
        return self.runtime.now()

    # -- execution ------------------------------------------------------
    def run(
        self,
        schedule: CrashSchedule,
        timeout: float = 30.0,
        settle_time: float = 0.05,
        membership: Any = None,
        max_events: Optional[int] = None,
    ) -> AsyncRunResult:
        """Execute the scenario entirely in virtual time.

        ``timeout`` and ``settle_time`` keep their :class:`AsyncRuntime`
        meanings but are measured on the virtual clock — a run that would
        poll for 30 wall seconds completes the moment its callbacks do.
        ``max_events`` bounds the number of loop callbacks (the virtual
        analogue of the simulator's event budget).
        """
        return self.loop.run_until_complete(
            self.runtime.run(
                schedule,
                timeout=timeout,
                settle_time=settle_time,
                membership=membership,
            ),
            max_events=max_events,
        )


def run_cliff_edge_virtual(
    graph: KnowledgeGraph,
    schedule: CrashSchedule,
    node_factory: Callable[[NodeId], Process],
    detection_delay: float = 0.01,
    time_scale: float = 0.01,
    timeout: float = 30.0,
    membership: Any = None,
    seed: int = 0,
    failure_detector: Optional[FailureDetectorPolicy] = None,
    faults: Optional[FaultModel] = None,
    max_events: Optional[int] = None,
) -> AsyncRunResult:
    """Convenience wrapper mirroring ``run_cliff_edge_asyncio``, virtual."""
    runtime = VirtualRuntime(
        graph,
        detection_delay=detection_delay,
        time_scale=time_scale,
        seed=seed,
        failure_detector=failure_detector,
        faults=faults,
    )
    runtime.populate(node_factory)
    return runtime.run(
        schedule, timeout=timeout, membership=membership, max_events=max_events
    )
