"""Membership epochs: quotienting a churned run into static slices.

Within one *membership epoch* the knowledge graph is constant and every
node's incarnation is fixed, so the paper's static reasoning applies
unchanged.  A new epoch begins at every graph- or incarnation-changing
event — a join or a recovery.  (Graceful leaves are announced fail-stops:
they do not change the graph or any incarnation, so they behave exactly
like crashes and do not open a new epoch.)

Epoch boundaries are tracked by *trace index*, not timestamp: membership
events share timestamps with ordinary protocol events, and the recorded
order is the ground truth of what happened first.

:func:`build_epochs` reconstructs the per-epoch graphs from the base graph
plus the ``NODE_JOINED`` / ``NODE_RECOVERED`` trace events (whose payloads
carry the neighbour sets chosen by the attachment policies), so the
checkers need nothing beyond the trace a runtime already produces.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import KnowledgeGraph
from ..sim.events import EventKind
from ..trace import TraceRecorder


@dataclass(frozen=True)
class MembershipEpoch:
    """One maximal slice of a run with constant membership."""

    #: 0-based epoch number (0 = the initial static epoch).
    index: int
    #: Trace index of the first event of the epoch.
    start_index: int
    #: Trace index one past the last event (``len(trace)`` for the last).
    end_index: int
    #: Timestamp of the event that opened the epoch (0.0 for epoch 0).
    start_time: float
    #: The knowledge graph in force during the epoch.
    graph: KnowledgeGraph

    def covers(self, trace_index: int) -> bool:
        return self.start_index <= trace_index < self.end_index


def build_epochs(
    base_graph: KnowledgeGraph, trace: TraceRecorder
) -> list[MembershipEpoch]:
    """Slice ``trace`` into membership epochs with their graphs."""
    boundaries: list[tuple[int, float, KnowledgeGraph]] = [(0, 0.0, base_graph)]
    graph = base_graph
    for index, event in enumerate(trace):
        if event.kind is EventKind.NODE_JOINED:
            graph = graph.with_node(event.node, event.payload or ())
            boundaries.append((index, event.time, graph))
        elif event.kind is EventKind.NODE_RECOVERED:
            neighbours = frozenset(event.payload or ())
            if neighbours != graph.neighbours(event.node):
                graph = graph.without([event.node]).with_node(
                    event.node, neighbours
                )
            boundaries.append((index, event.time, graph))
    epochs: list[MembershipEpoch] = []
    total = len(trace)
    for number, (start_index, start_time, epoch_graph) in enumerate(boundaries):
        end_index = (
            boundaries[number + 1][0] if number + 1 < len(boundaries) else total
        )
        epochs.append(
            MembershipEpoch(
                index=number,
                start_index=start_index,
                end_index=end_index,
                start_time=start_time,
                graph=epoch_graph,
            )
        )
    return epochs
