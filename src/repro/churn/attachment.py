"""Edge re-attachment policies for joining and recovering nodes.

When a node (re)enters the system the runtimes must decide which edges the
new membership epoch's knowledge graph gives it.  A policy is any object
with a ``neighbours_for`` method; the three shipped here cover the cases
the churn scenario family exercises:

* :class:`RejoinOldEdges` — the node comes back exactly where it was
  (a process restart on the same host: its neighbours still know it);
* :class:`RejoinViaRepairPlan` — the node re-enters through the nodes that
  agreed on (and repaired around) its crashed region, i.e. the live border
  of the region it belonged to — the natural policy when the overlay was
  repaired while the node was down and its old edges are gone;
* :class:`FreshJoinByLocality` — a brand-new node attaches to a small set
  of live nodes found by breadth-first search around an anchor, the
  locality-aware bootstrap of DHT-style overlays.

Policies are resolved *at event time* against the then-current graph, the
pre-churn base graph, and the ground-truth crashed set, so they can react
to whatever the run has done so far.  They deliberately never attach a
joining node to a crashed node: a newborn cannot have learned about a dead
host, and (usefully for the protocol) this keeps fresh joiners out of the
borders of in-flight consensus instances.
"""

from __future__ import annotations

import abc
import random
from collections import deque

from ..graph import GraphError, KnowledgeGraph, NodeId


class AttachmentError(ValueError):
    """Raised when a policy cannot produce any attachment edge."""


class AttachmentPolicy(abc.ABC):
    """Decides the neighbour set of a node entering a new epoch."""

    @abc.abstractmethod
    def neighbours_for(
        self,
        node: NodeId,
        *,
        current: KnowledgeGraph,
        base: KnowledgeGraph,
        crashed: frozenset[NodeId],
        rng: random.Random,
    ) -> frozenset[NodeId]:
        """The neighbours ``node`` attaches to in the new epoch."""


class RejoinOldEdges(AttachmentPolicy):
    """Recover with exactly the edges the node had before it crashed.

    The node's adjacency is read from the *current* graph (crashed nodes
    stay in the graph, so their edges are still known) and falls back to
    the base graph for robustness.  Old neighbours that are themselves
    crashed are kept: rejoining into a half-dead neighbourhood is exactly
    the situation the crash-recover race scenarios probe.
    """

    def neighbours_for(self, node, *, current, base, crashed, rng):
        source = current if node in current else base
        try:
            neighbours = source.neighbours(node)
        except GraphError:
            raise AttachmentError(
                f"{node!r} has no known old edges to rejoin with"
            ) from None
        kept = frozenset(n for n in neighbours if n in current)
        if not kept:
            raise AttachmentError(f"all old neighbours of {node!r} are gone")
        return kept


class RejoinViaRepairPlan(AttachmentPolicy):
    """Recover through the nodes that agreed on the node's crashed region.

    The rejoining node attaches to the live border of the crashed region
    it currently belongs to — the nodes that (per CD4/CD5) decided on the
    region and executed the repair plan, and are therefore the ones a
    rejoining node would contact.  Falls back to the old edges when the
    whole border is dead.
    """

    def neighbours_for(self, node, *, current, base, crashed, rng):
        if node not in crashed or node not in current:
            raise AttachmentError(
                f"{node!r} is not a known crashed node; repair-plan rejoin "
                "only applies to recoveries"
            )
        component = {node}
        frontier = [node]
        dead = set(crashed) | {node}
        while frontier:
            member = frontier.pop()
            for neighbour in current.neighbours(member):
                if neighbour in dead and neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        live_border = current.border(component) - crashed
        if live_border:
            return frozenset(live_border)
        return RejoinOldEdges().neighbours_for(
            node, current=current, base=base, crashed=crashed, rng=rng
        )


class FreshJoinByLocality(AttachmentPolicy):
    """Attach a brand-new node to ``fanout`` live nodes near an anchor.

    The anchor defaults to a seeded-random live node; the search then
    walks the current graph breadth-first (through live nodes only, in
    deterministic ``repr`` order) and keeps the first ``fanout`` live
    nodes it meets.  This mimics the locality-aware bootstrap of
    structured overlays: a newcomer is handed a nearby contact and learns
    that contact's neighbourhood.
    """

    def __init__(self, fanout: int = 2, anchor: NodeId | None = None) -> None:
        if fanout < 1:
            raise AttachmentError("fanout must be at least 1")
        self.fanout = fanout
        self.anchor = anchor

    def neighbours_for(self, node, *, current, base, crashed, rng):
        live = sorted((n for n in current.nodes if n not in crashed), key=repr)
        if not live:
            raise AttachmentError("no live node to attach to")
        anchor = self.anchor
        if anchor is None or anchor not in current or anchor in crashed:
            anchor = live[rng.randrange(len(live))]
        chosen: list[NodeId] = []
        seen = {anchor}
        queue = deque([anchor])
        while queue and len(chosen) < self.fanout:
            candidate = queue.popleft()
            if candidate not in crashed and candidate != node:
                chosen.append(candidate)
            for neighbour in sorted(current.neighbours(candidate), key=repr):
                if neighbour not in seen and neighbour not in crashed:
                    seen.add(neighbour)
                    queue.append(neighbour)
        if not chosen:
            raise AttachmentError(f"no live attachment found for {node!r}")
        return frozenset(chosen)
