"""Dynamic membership (churn): joins, recoveries, leaves, and the
epoch-quotiented CD1–CD7 specification.

The paper's protocol assumes a static graph and permanent crashes.  This
package removes both assumptions while keeping the specification
checkable:

* :mod:`repro.churn.membership` — immutable timed join/recover/leave
  schedules composing with :class:`~repro.failures.CrashSchedule`, plus
  builders for the churn scenario families;
* :mod:`repro.churn.attachment` — edge re-attachment policies for nodes
  entering a new membership epoch;
* :mod:`repro.churn.epochs` — slicing a churned trace into
  constant-membership epochs with their graphs;
* :mod:`repro.churn.properties` — the epoch-quotiented CD1–CD7 checkers;
* :mod:`repro.churn.runner` — one-call execution on the simulator and the
  asyncio runtime.
"""

from .attachment import (
    AttachmentError,
    AttachmentPolicy,
    FreshJoinByLocality,
    RejoinOldEdges,
    RejoinViaRepairPlan,
)
from .epochs import MembershipEpoch, build_epochs
from .membership import (
    MembershipError,
    MembershipEvent,
    MembershipEventKind,
    MembershipSchedule,
    crash_recover_recrash,
    flash_crowd_joins,
    join,
    leave,
    recover,
    recovery_for,
    steady_state_churn,
)
from .properties import (
    ChurnGroundTruth,
    assert_churn_specification,
    build_ground_truth,
    check_churn_all,
)
from .runner import ChurnRunResult, run_churn, run_churn_asyncio, run_churn_virtual

__all__ = [
    "AttachmentError",
    "AttachmentPolicy",
    "RejoinOldEdges",
    "RejoinViaRepairPlan",
    "FreshJoinByLocality",
    "MembershipEpoch",
    "build_epochs",
    "MembershipError",
    "MembershipEvent",
    "MembershipEventKind",
    "MembershipSchedule",
    "join",
    "recover",
    "leave",
    "recovery_for",
    "crash_recover_recrash",
    "steady_state_churn",
    "flash_crowd_joins",
    "ChurnGroundTruth",
    "build_ground_truth",
    "check_churn_all",
    "assert_churn_specification",
    "ChurnRunResult",
    "run_churn",
    "run_churn_asyncio",
    "run_churn_virtual",
]
