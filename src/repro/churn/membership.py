"""Membership schedules: timed join / recover / leave events.

A :class:`MembershipSchedule` is the churn counterpart of
:class:`~repro.failures.schedules.CrashSchedule`: an immutable list of
timed membership events that both runtimes replay identically.  The two
schedules *compose* — a churn scenario is a ``(CrashSchedule,
MembershipSchedule)`` pair sharing one timeline — and
:meth:`MembershipSchedule.validate` replays the combined timeline against
the graph to catch impossible scripts (recovering a live node, re-crashing
a node that never recovered, joining twice, ...) before a runtime sees
them.

The builders produce the scenario families of the churn experiments:

* :func:`recovery_for` — every crashed node comes back after a fixed
  downtime (steady-state churn, combined with a crash builder);
* :func:`crash_recover_recrash` — one region crashes, recovers, and
  crashes again: the cliff-edge race against in-flight consensus;
* :func:`steady_state_churn` — independent crash→recover cycles at a
  target churn rate;
* :func:`flash_crowd_joins` — a burst of brand-new nodes joining by
  locality.
"""

from __future__ import annotations

import enum
import math
import random
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from typing import Any, Optional

from ..failures import CrashSchedule, ScheduleError, random_connected_region
from ..graph import KnowledgeGraph, NodeId
from .attachment import FreshJoinByLocality


class MembershipError(ValueError):
    """Raised when a membership schedule is inconsistent."""


class MembershipEventKind(enum.Enum):
    """The three kinds of membership events."""

    JOIN = "join"
    RECOVER = "recover"
    LEAVE = "leave"


@dataclass(frozen=True)
class MembershipEvent:
    """One timed membership event.

    ``attachment`` is an :class:`~repro.churn.attachment.AttachmentPolicy`
    (or an explicit iterable of neighbour ids) for joins and recoveries;
    ``None`` means "keep the old edges", which is only meaningful for
    recoveries.
    """

    time: float
    kind: MembershipEventKind
    node: NodeId
    attachment: Any = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise MembershipError(f"negative time for {self.kind.value} of {self.node!r}")
        if self.kind is MembershipEventKind.JOIN and self.attachment is None:
            raise MembershipError(
                f"join of {self.node!r} needs an attachment policy or edge list"
            )
        if self.kind is MembershipEventKind.LEAVE and self.attachment is not None:
            raise MembershipError(f"leave of {self.node!r} takes no attachment")


def join(node: NodeId, at: float, attachment: Any) -> MembershipEvent:
    """A brand-new node joins at ``at``."""
    return MembershipEvent(at, MembershipEventKind.JOIN, node, attachment)


def recover(node: NodeId, at: float, attachment: Any = None) -> MembershipEvent:
    """A crashed node recovers at ``at`` (old edges unless told otherwise)."""
    return MembershipEvent(at, MembershipEventKind.RECOVER, node, attachment)


def leave(node: NodeId, at: float) -> MembershipEvent:
    """A live node announces its departure at ``at`` (permanent)."""
    return MembershipEvent(at, MembershipEventKind.LEAVE, node)


@dataclass(frozen=True)
class MembershipSchedule:
    """An immutable list of timed membership events."""

    events: tuple[MembershipEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def nodes(self) -> frozenset[NodeId]:
        """All nodes touched by the schedule."""
        return frozenset(event.node for event in self.events)

    @property
    def joining_nodes(self) -> frozenset[NodeId]:
        """Nodes that join (do not exist in the base graph)."""
        return frozenset(
            event.node
            for event in self.events
            if event.kind is MembershipEventKind.JOIN
        )

    @property
    def last_time(self) -> float:
        """Time of the last event (0.0 for an empty schedule)."""
        return max((event.time for event in self.events), default=0.0)

    def __iter__(self) -> Iterator[MembershipEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: MembershipEventKind) -> tuple[MembershipEvent, ...]:
        return tuple(event for event in self.events if event.kind is kind)

    def shifted(self, offset: float) -> "MembershipSchedule":
        """The same schedule with every event delayed by ``offset``."""
        if offset < 0:
            raise MembershipError("offset must be non-negative")
        return MembershipSchedule(
            tuple(
                MembershipEvent(
                    event.time + offset, event.kind, event.node, event.attachment
                )
                for event in self.events
            )
        )

    def merged(self, other: "MembershipSchedule") -> "MembershipSchedule":
        """Union of two schedules, kept in time order."""
        merged = sorted(
            self.events + other.events, key=lambda e: (e.time, repr(e.node))
        )
        return MembershipSchedule(tuple(merged))

    def timeline(
        self, crashes: Optional[CrashSchedule] = None
    ) -> list[tuple[float, int, str, NodeId, Optional[MembershipEvent]]]:
        """The canonical merged crash + membership timeline.

        Entries are ``(time, priority, kind, node, event)`` with crashes
        carrying priority 0 and membership events priority 1, so
        same-timestamp ties resolve crash-first, then by the node's
        deterministic ``repr``.  Every consumer — :meth:`validate`, the
        simulator application in :func:`repro.churn.runner.run_churn`,
        and the asyncio runtime's schedule task — iterates this one
        ordering, which keeps the two runtimes in lockstep on ties.
        """
        timeline: list[tuple[float, int, str, NodeId, Optional[MembershipEvent]]] = []
        if crashes is not None:
            timeline.extend(
                (time, 0, "crash", node, None) for node, time in crashes.crashes
            )
        timeline.extend(
            (event.time, 1, event.kind.value, event.node, event)
            for event in self.events
        )
        timeline.sort(key=lambda item: (item[0], item[1], repr(item[3])))
        return timeline

    def validate(
        self,
        graph: KnowledgeGraph,
        crashes: Optional[CrashSchedule] = None,
    ) -> None:
        """Replay the combined crash + membership timeline and check it.

        Raises :class:`MembershipError` when the script is impossible:
        recovering a node that is not down, re-crashing a node that never
        recovered, a join of an existing node, a leave of a dead node,
        events touching unknown nodes, and so on.
        """
        LIVE, CRASHED, DEPARTED, ABSENT = "live", "crashed", "departed", "absent"
        status: dict[NodeId, str] = {node: LIVE for node in graph.nodes}
        for time, _, kind, node, _event in self.timeline(crashes):
            current = status.get(node, ABSENT)
            if kind == "crash":
                if current != LIVE:
                    raise MembershipError(
                        f"crash of {node!r} at t={time} but the node is {current}"
                    )
                status[node] = CRASHED
            elif kind == "join":
                if current != ABSENT:
                    raise MembershipError(
                        f"join of {node!r} at t={time} but the node is {current}"
                    )
                status[node] = LIVE
            elif kind == "recover":
                if current != CRASHED:
                    raise MembershipError(
                        f"recovery of {node!r} at t={time} but the node is {current}"
                    )
                status[node] = LIVE
            elif kind == "leave":
                if current != LIVE:
                    raise MembershipError(
                        f"leave of {node!r} at t={time} but the node is {current}"
                    )
                status[node] = DEPARTED

    def applied_to(self, sim, crashes: Optional[CrashSchedule] = None) -> None:
        """Feed the schedule (and ``crashes``) into a simulator.

        Items are scheduled in :meth:`timeline` order; the simulator's
        event queue is FIFO at equal timestamps, so insertion order *is*
        the canonical tie order.  Joins are registered as they appear,
        ahead of any (validated-later) crash of the same node, which
        satisfies the simulator's schedule-time sanity checks.
        """
        for _time, _priority, kind, node, event in self.timeline(crashes):
            if kind == "crash":
                sim.schedule_crash(node, _time)
            elif event.kind is MembershipEventKind.JOIN:
                sim.schedule_join(node, _time, event.attachment)
            elif event.kind is MembershipEventKind.RECOVER:
                sim.schedule_recover(node, _time, event.attachment)
            else:
                sim.schedule_leave(node, _time)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def recovery_for(
    crashes: CrashSchedule,
    downtime: float = 10.0,
    attachment: Any = None,
) -> MembershipSchedule:
    """Every crashed node recovers ``downtime`` after its (last) crash."""
    if downtime <= 0:
        raise MembershipError("downtime must be positive")
    last_crash: dict[NodeId, float] = {}
    for node, time in crashes.crashes:
        last_crash[node] = max(time, last_crash.get(node, 0.0))
    events = tuple(
        recover(node, time + downtime, attachment)
        for node, time in sorted(last_crash.items(), key=lambda item: repr(item[0]))
    )
    return MembershipSchedule(events)


def crash_recover_recrash(
    graph: KnowledgeGraph,
    members: Iterable[NodeId],
    crash_at: float = 1.0,
    recover_at: float = 40.0,
    recrash_at: float = 80.0,
    attachment: Any = None,
) -> tuple[CrashSchedule, MembershipSchedule]:
    """A region crashes, recovers, and crashes again.

    This is the cliff-edge race the churn subsystem exists for: the same
    border must agree on the same region twice, in two different
    membership epochs, and the epoch-quotiented CD1–CD7 specification must
    hold across the whole run.
    """
    member_list = sorted(frozenset(members), key=repr)
    if not member_list:
        raise MembershipError("cannot churn an empty region")
    if not (crash_at < recover_at < recrash_at):
        raise MembershipError("expected crash_at < recover_at < recrash_at")
    if not graph.is_connected_subset(member_list):
        raise MembershipError("churned members must form a connected region")
    crashes = CrashSchedule(
        tuple((node, crash_at) for node in member_list)
        + tuple((node, recrash_at) for node in member_list),
        allow_recrash=True,
    )
    membership = MembershipSchedule(
        tuple(recover(node, recover_at, attachment) for node in member_list)
    )
    return crashes, membership


def steady_state_churn(
    graph: KnowledgeGraph,
    churn_rate: float = 0.05,
    duration: float = 100.0,
    seed: int = 0,
    start: float = 1.0,
    downtime: float = 15.0,
    region_size: int = 1,
    attachment: Any = None,
    settle_margin: float = 15.0,
) -> tuple[CrashSchedule, MembershipSchedule]:
    """Independent crash→recover cycles at a target churn rate.

    ``churn_rate`` is the expected fraction of the population that starts
    a crash→recover cycle per unit of simulated time; over ``duration``
    time units the builder schedules about ``churn_rate * |Pi| *
    duration`` cycles (at least one), each crashing a connected region of
    ``region_size`` nodes and recovering it ``downtime`` later.

    The independence constraint is *spatio-temporal*: a cycle's region
    must be disjoint from (and non-adjacent to) the regions of cycles it
    overlaps **in time** — a cycle occupies its neighbourhood from its
    crash until ``settle_margin`` after its recovery, leaving room for
    the post-recovery announcements to settle.  Nodes are reusable across
    non-overlapping cycles, so high rates genuinely schedule more cycles
    instead of silently saturating at the graph's disjoint-packing limit.
    Cycle starts are spread uniformly over ``[start, start + duration]``;
    cycles that cannot be placed when the graph is momentarily saturated
    are dropped (the returned schedules reveal the realised count).
    """
    if churn_rate <= 0:
        raise MembershipError("churn rate must be positive")
    if duration <= 0:
        raise MembershipError("duration must be positive")
    if settle_margin <= 0:
        raise MembershipError("settle margin must be positive")
    rng = random.Random(seed)
    wanted = max(1, math.floor(churn_rate * len(graph) * duration + 0.5))
    starts = sorted(start + rng.random() * duration for _ in range(wanted))
    #: Cycles still occupying their neighbourhood: (busy_until, forbidden).
    active: list[tuple[float, frozenset[NodeId]]] = []
    crash_events: list[tuple[NodeId, float]] = []
    membership_events: list[MembershipEvent] = []
    placed = 0
    for at in starts:
        active = [(until, zone) for until, zone in active if until > at]
        forbidden: set[NodeId] = set()
        for _, zone in active:
            forbidden |= zone
        try:
            region = random_connected_region(
                graph,
                region_size,
                seed=rng.randrange(2**31),
                forbidden=forbidden,
            )
        except ScheduleError:
            # The graph is momentarily saturated with in-flight cycles;
            # drop this cycle rather than violate independence.
            continue
        members = frozenset(region.members)
        neighbourhood = graph.closed_neighbourhood(members)
        active.append(
            (at + downtime + settle_margin, neighbourhood | graph.border(neighbourhood))
        )
        placed += 1
        for node in sorted(members, key=repr):
            crash_events.append((node, at))
            membership_events.append(recover(node, at + downtime, attachment))
    if not placed:
        raise MembershipError(
            "graph too small/constrained for even one churn cycle"
        )
    crash_events.sort(key=lambda item: (item[1], repr(item[0])))
    membership_events.sort(key=lambda event: (event.time, repr(event.node)))
    return (
        CrashSchedule(tuple(crash_events), allow_recrash=True),
        MembershipSchedule(tuple(membership_events)),
    )


def flash_crowd_joins(
    graph: KnowledgeGraph,
    count: int = 8,
    at: float = 1.0,
    spacing: float = 0.5,
    fanout: int = 2,
    seed: int = 0,
    prefix: str = "newcomer",
) -> MembershipSchedule:
    """A burst of ``count`` brand-new nodes joining by locality.

    Node ids are ``f"{prefix}-{i}"``; each newcomer attaches to ``fanout``
    live nodes near a seeded-random anchor.  With ``spacing=0`` the whole
    crowd arrives in one instant.
    """
    if count < 1:
        raise MembershipError("a flash crowd needs at least one newcomer")
    if spacing < 0:
        raise MembershipError("spacing must be non-negative")
    rng = random.Random(seed)
    anchor_pool = sorted(graph.nodes, key=repr)
    events = []
    for index in range(count):
        anchor = anchor_pool[rng.randrange(len(anchor_pool))]
        events.append(
            join(
                f"{prefix}-{index}",
                at + index * spacing,
                FreshJoinByLocality(fanout=fanout, anchor=anchor),
            )
        )
    return MembershipSchedule(tuple(events))
