"""High-level harness for churn scenarios on both runtimes.

Mirrors :mod:`repro.experiments.runner` for dynamic-membership workloads:
:func:`run_churn` executes a ``(CrashSchedule, MembershipSchedule)`` pair
on the deterministic simulator, :func:`run_churn_asyncio` on the asyncio
runtime — wall-clock by default, or deterministically on the
virtual-time loop with ``virtual=True`` (:mod:`repro.vtime`) — and all
of them package the outcome — trace, metrics, decisions, reconstructed
membership epochs, and the epoch-quotiented CD1–CD7 report — into a
:class:`ChurnRunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..api.result import DecisionResultMixin, json_safe
from ..core import CliffEdgeNode, DEFAULT_DECISION_POLICY, DecisionPolicy
from ..core.properties import Decision, SpecificationReport, extract_decisions
from ..failures import CrashSchedule
from ..graph import DEFAULT_RANKING, KnowledgeGraph, NodeId, Region, RegionRanking
from ..runtime import run_cliff_edge_asyncio
from ..sim import (
    ConstantLatency,
    EventScheduler,
    FailureDetectorPolicy,
    FaultModel,
    LatencyModel,
    PerfectFailureDetector,
    Simulator,
)
from ..sim.process import Process
from ..trace import RunMetrics, TraceRecorder, collect_metrics
from .epochs import MembershipEpoch, build_epochs
from .membership import MembershipEventKind, MembershipSchedule
from .properties import check_churn_all


@dataclass
class ChurnRunResult(DecisionResultMixin):
    """Outcome of one churned protocol run (either runtime).

    Implements the unified :class:`repro.api.Result` protocol; the
    decision-derived helpers (``decided_views``, ``deciding_nodes``,
    ``decisions_on``, ``digest``) live in the shared
    :class:`~repro.api.result.DecisionResultMixin`.
    """

    #: The topology before any membership event.
    base_graph: KnowledgeGraph
    #: The topology after the last membership event.
    final_graph: KnowledgeGraph
    schedule: CrashSchedule
    membership: MembershipSchedule
    trace: TraceRecorder
    metrics: RunMetrics
    decisions: list[Decision]
    #: The membership epochs of the run, reconstructed from the trace.
    epochs: list[MembershipEpoch]
    #: Which runtime produced the run ("sim", "asyncio" or
    #: "asyncio-virtual").
    runtime: str = "sim"
    #: False when the asyncio runtime hit its timeout before quiescence.
    quiescent: bool = True
    #: None until :meth:`check_specification` runs (or ``check=True``).
    specification: Optional[SpecificationReport] = None
    labels: dict[str, Any] = field(default_factory=dict)

    @property
    def graph(self) -> KnowledgeGraph:
        """Alias for :attr:`final_graph` (RunResult-compatible surface)."""
        return self.final_graph

    @property
    def decided_view_multiset(self) -> tuple[tuple[NodeId, ...], ...]:
        """Every decision's view (sorted members), in decision order.

        Unlike :attr:`decided_views` this keeps re-decisions of the same
        region in later epochs distinguishable, which the cross-runtime
        equivalence tests compare.
        """
        return tuple(
            tuple(sorted(decision.view.members, key=repr))
            for decision in self.decisions
        )

    def check_specification(self, include_liveness: bool = True) -> SpecificationReport:
        """Run the epoch-quotiented CD1–CD7 checkers and cache the report."""
        self.specification = check_churn_all(
            self.base_graph,
            self.trace,
            include_liveness=include_liveness,
            epochs=self.epochs,
        )
        return self.specification

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable summary of the run (the ``--json`` payload)."""
        return {
            "type": "churn-run",
            "runtime": self.runtime,
            "nodes": len(self.base_graph),
            "final_nodes": len(self.final_graph),
            "edges": self.base_graph.edge_count,
            "final_edges": self.final_graph.edge_count,
            "crashes": len(self.schedule),
            "joins": len(self.membership.of_kind(MembershipEventKind.JOIN)),
            "recoveries": len(self.membership.of_kind(MembershipEventKind.RECOVER)),
            "leaves": len(self.membership.of_kind(MembershipEventKind.LEAVE)),
            "epochs": len(self.epochs),
            "quiescent": self.quiescent,
            "metrics": json_safe(self.metrics),
            "decisions": self._decisions_as_dicts(),
            "decided_views": json_safe(self.decided_views),
            "specification": self._specification_as_dict(),
            "digest": self.digest(),
            "labels": json_safe(self.labels),
        }

    def summary(self) -> str:
        """Multi-line human-readable summary (used by the CLI/examples)."""
        joins = len(self.membership.of_kind(MembershipEventKind.JOIN))
        recoveries = len(self.membership.of_kind(MembershipEventKind.RECOVER))
        leaves = len(self.membership.of_kind(MembershipEventKind.LEAVE))
        lines = [
            f"nodes={len(self.base_graph)}->{len(self.final_graph)} "
            f"edges={self.base_graph.edge_count}->{self.final_graph.edge_count} "
            f"crashes={len(self.schedule)} joins={joins} "
            f"recoveries={recoveries} leaves={leaves} "
            f"epochs={len(self.epochs)}",
            f"messages={self.metrics.messages_sent} "
            f"bytes={self.metrics.bytes_sent} "
            f"speaking_nodes={self.metrics.speaking_nodes}",
            f"decisions={self.metrics.decisions} "
            f"views={self.metrics.decided_views} "
            f"rejections={self.metrics.rejections} "
            f"failed_instances={self.metrics.failed_instances}",
        ]
        for members in sorted(set(self.decided_view_multiset)):
            count = self.decided_view_multiset.count(members)
            times = f" x{count}" if count > 1 else ""
            lines.append(f"view {list(map(repr, members))} decided{times}")
        if self.specification is not None:
            status = "holds" if self.specification.holds else "VIOLATED"
            lines.append(f"epoch-quotiented specification CD1-CD7: {status}")
        return "\n".join(lines)


def run_churn(
    graph: KnowledgeGraph,
    schedule: CrashSchedule,
    membership: MembershipSchedule,
    decision_policy: DecisionPolicy = DEFAULT_DECISION_POLICY,
    ranking: RegionRanking = DEFAULT_RANKING,
    latency: Optional[LatencyModel] = None,
    failure_detector: Optional[FailureDetectorPolicy] = None,
    seed: int = 0,
    node_factory: Optional[Callable[[NodeId], Process]] = None,
    check: bool = False,
    max_events: int = 5_000_000,
    until: Optional[float] = None,
    batch_dispatch: bool = True,
    faults: Optional[FaultModel] = None,
) -> ChurnRunResult:
    """Run a churn scenario on the deterministic simulator."""
    membership.validate(graph, schedule)
    sim = Simulator(
        graph,
        latency=latency if latency is not None else ConstantLatency(1.0),
        failure_detector=(
            failure_detector
            if failure_detector is not None
            else PerfectFailureDetector(1.0)
        ),
        seed=seed,
        scheduler=EventScheduler(batch_dispatch=batch_dispatch),
        faults=faults,
    )

    def default_factory(node_id: NodeId) -> CliffEdgeNode:
        return CliffEdgeNode(node_id, decision_policy=decision_policy, ranking=ranking)

    sim.populate(node_factory if node_factory is not None else default_factory)
    # One canonical merged timeline (crash-first on timestamp ties) keeps
    # the simulator's tie-breaking identical to validate() and asyncio.
    membership.applied_to(sim, crashes=schedule)
    sim.run(until=until, max_events=max_events)
    trace = sim.trace
    result = ChurnRunResult(
        base_graph=graph,
        final_graph=sim.graph,
        schedule=schedule,
        membership=membership,
        trace=trace,
        metrics=collect_metrics(trace),
        decisions=extract_decisions(trace),
        epochs=build_epochs(graph, trace),
        runtime="sim",
        quiescent=sim.is_quiescent(),
    )
    if check:
        result.check_specification(include_liveness=sim.is_quiescent())
    return result


def run_churn_asyncio(
    graph: KnowledgeGraph,
    schedule: CrashSchedule,
    membership: MembershipSchedule,
    node_factory: Optional[Callable[[NodeId], Process]] = None,
    detection_delay: float = 0.01,
    time_scale: float = 0.01,
    timeout: float = 60.0,
    seed: int = 0,
    check: bool = False,
    virtual: bool = False,
    failure_detector: Optional[FailureDetectorPolicy] = None,
    max_events: Optional[int] = None,
    faults: Optional[FaultModel] = None,
) -> ChurnRunResult:
    """Run the same churn scenario on the asyncio runtime.

    ``virtual=True`` drives the identical runtime code on the
    deterministic virtual-time loop (:mod:`repro.vtime`): zero real
    sleeps, digest-reproducible, and ``max_events`` bounds the loop's
    callback budget.  ``failure_detector`` (a simulator policy object)
    and ``faults`` (a :mod:`repro.sim.faults` model — fault decisions
    are keyed by message identity, so only the virtual loop makes the
    resulting run reproducible end to end) work on both clocks.
    """
    membership.validate(graph, schedule)
    factory = node_factory if node_factory is not None else CliffEdgeNode
    if virtual:
        from ..vtime import run_cliff_edge_virtual

        async_result = run_cliff_edge_virtual(
            graph,
            schedule,
            node_factory=factory,
            detection_delay=detection_delay,
            time_scale=time_scale,
            timeout=timeout,
            membership=membership,
            seed=seed,
            failure_detector=failure_detector,
            faults=faults,
            max_events=max_events,
        )
    else:
        async_result = run_cliff_edge_asyncio(
            graph,
            schedule,
            node_factory=factory,
            detection_delay=detection_delay,
            time_scale=time_scale,
            timeout=timeout,
            membership=membership,
            seed=seed,
            failure_detector=failure_detector,
            faults=faults,
        )
    result = ChurnRunResult(
        base_graph=graph,
        final_graph=async_result.graph,
        schedule=schedule,
        membership=membership,
        trace=async_result.trace,
        metrics=async_result.metrics,
        decisions=async_result.decisions,
        epochs=build_epochs(graph, async_result.trace),
        runtime="asyncio-virtual" if virtual else "asyncio",
        quiescent=async_result.quiescent,
    )
    if check:
        result.check_specification(include_liveness=async_result.quiescent)
    return result


def run_churn_virtual(
    graph: KnowledgeGraph,
    schedule: CrashSchedule,
    membership: MembershipSchedule,
    **kwargs: Any,
) -> ChurnRunResult:
    """Shorthand for :func:`run_churn_asyncio` with ``virtual=True``."""
    return run_churn_asyncio(graph, schedule, membership, virtual=True, **kwargs)
