"""Epoch-quotiented CD1–CD7 checkers for churned runs.

The paper's specification (§2.3) quantifies over a single execution with a
static graph and permanent crashes.  Under churn both assumptions fall:
the graph changes at joins/recoveries, and a region may crash, recover and
crash again.  The specification stays checkable by *quotienting over
membership epochs* (:mod:`repro.churn.epochs`): within one epoch the
static reasoning applies verbatim, and across epochs each property states
the strongest claim that survives recovery races:

* **CD1 Integrity** — no node decides twice on the same view *within one
  epoch*.  Deciding the same region again after it recovered and
  re-crashed is a fresh agreement about a fresh failure, not a duplicate.
* **CD2 View Accuracy** — every decision, evaluated in the graph of its
  epoch, is a connected region of nodes that were down (crashed *or*
  departed — a graceful leave is an announced fail-stop) at decision
  time, bordered by the decider.
* **CD3 Locality** — every message stays within the closed neighbourhood
  of a faulty domain, computed per epoch over the nodes that had been
  faulty at any point up to the end of that epoch.  (Keeping recovered
  regions in scope is deliberate: detection traffic raced by a recovery
  is still *local* traffic, which is all the property promises.)
* **CD4 Border Termination** — if a node decides ``(V, d)``, every border
  node of ``V`` in the decision's epoch eventually decides — unless it
  fails later in the run (the static excuse) or a member of ``V``
  recovers after the decision, cutting the wave short.
* **CD5 Uniform Border Agreement** — same-epoch decisions by border nodes
  of the same view carry the same pair.
* **CD6 View Convergence** — same-epoch decided views of nodes that never
  fail afterwards are equal or disjoint.
* **CD7 Progress** — at quiescence, every faulty cluster of the *final*
  epoch with a live border has a live border node that decided, after the
  cluster's last stint of failures began, on a view inside the cluster.
  Clusters that recovered before the run ended demand nothing.

On a run with no membership events every quotient collapses to the
original property, so these checkers are a strict generalisation of
:mod:`repro.core.properties`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.properties import Decision, PropertyReport, SpecificationReport
from ..graph import KnowledgeGraph, NodeId, Region, cluster_border, faulty_clusters, faulty_domains
from bisect import bisect_right

from ..sim.events import EventKind
from ..trace import TraceRecorder
from .epochs import MembershipEpoch, build_epochs

_LIVE, _CRASHED, _DEPARTED, _ABSENT = "live", "crashed", "departed", "absent"

_STATUS_OF_EVENT = {
    EventKind.NODE_CRASHED: _CRASHED,
    EventKind.NODE_LEFT: _DEPARTED,
    EventKind.NODE_RECOVERED: _LIVE,
    EventKind.NODE_JOINED: _LIVE,
}


@dataclass
class ChurnGroundTruth:
    """Everything the epoch-quotiented checkers need, precomputed."""

    base_graph: KnowledgeGraph
    epochs: list[MembershipEpoch]
    #: Per node: ordered ``(trace_index, status)`` transitions.
    history: dict[NodeId, list[tuple[int, str]]]
    #: ``(trace_index, Decision)`` pairs, in trace order.
    decisions: list[tuple[int, Decision]]
    #: ``(subscriber, changed_node) -> trace indices`` of membership
    #: announcements actually delivered to the subscriber.
    notifications: dict[tuple[NodeId, NodeId], list[int]]
    #: Epoch start indices, precomputed for the hot ``epoch_at`` lookups.
    epoch_starts: list[int]
    trace_length: int = 0

    # -- membership status ------------------------------------------------
    def status_at(self, node: NodeId, index: int) -> str:
        """The node's status just before trace index ``index``."""
        status = _LIVE if node in self.base_graph else _ABSENT
        for event_index, event_status in self.history.get(node, ()):
            if event_index >= index:
                break
            status = event_status
        return status

    def is_down_at(self, node: NodeId, index: int) -> bool:
        return self.status_at(node, index) in (_CRASHED, _DEPARTED)

    def fails_at_or_after(self, node: NodeId, index: int) -> bool:
        """True when the node crashes or leaves at trace index >= ``index``."""
        return any(
            event_index >= index and status in (_CRASHED, _DEPARTED)
            for event_index, status in self.history.get(node, ())
        )

    def recovers_after(self, node: NodeId, index: int) -> bool:
        return any(
            event_index > index and status == _LIVE
            for event_index, status in self.history.get(node, ())
        )

    def last_fail_index(self, node: NodeId) -> Optional[int]:
        result = None
        for event_index, status in self.history.get(node, ()):
            if status in (_CRASHED, _DEPARTED):
                result = event_index
        return result

    def was_down_for(self, observer: NodeId, node: NodeId, index: int) -> bool:
        """Whether ``node`` counts as down *from the observer's viewpoint*.

        Trace order across nodes is not causal order on the concurrent
        runtime: a recovery can be globally recorded while an observer —
        whose announcement is still in flight — decides based on the
        epoch it is still causally in.  A node therefore counts as down
        for the observer when it is globally down at ``index``, or when
        it recovered but the observer had not yet been handed the
        recovery announcement *and* that announcement wave was provably
        still propagating (someone received it after ``index``).  Without
        the propagation bound the carve-out would be vacuous: an observer
        the announcement machinery misses entirely would be excused
        forever, hiding genuine accuracy violations.
        """
        if self.is_down_at(node, index):
            return True
        down_before = any(
            event_index < index and status in (_CRASHED, _DEPARTED)
            for event_index, status in self.history.get(node, ())
        )
        if not down_before:
            return False
        last_recovery = max(
            (
                event_index
                for event_index, status in self.history.get(node, ())
                if event_index < index and status == _LIVE
            ),
            default=None,
        )
        if last_recovery is None:
            return False
        observer_notified = any(
            last_recovery < notified < index
            for notified in self.notifications.get((observer, node), ())
        )
        if observer_notified:
            return False
        # Bound the wave to *this* recovery: its announcements are the
        # ones delivered between the recovery and the node's next status
        # change.  Matching any later announcement about the node (a
        # subsequent recovery's wave) would excuse stale decisions made
        # long after this wave finished.
        next_change = min(
            (
                event_index
                for event_index, _ in self.history.get(node, ())
                if event_index > last_recovery
            ),
            default=self.trace_length + 1,
        )
        wave_still_propagating = any(
            index < notified < next_change
            for (_, changed), indices in self.notifications.items()
            if changed == node
            for notified in indices
        )
        return wave_still_propagating

    def ever_faulty_until(self, index: int) -> frozenset[NodeId]:
        """Nodes with a crash/leave at some trace index < ``index``."""
        return frozenset(
            node
            for node, transitions in self.history.items()
            if any(
                event_index < index and status in (_CRASHED, _DEPARTED)
                for event_index, status in transitions
            )
        )

    def causally_stale(self, node: NodeId, view: Region, index: int) -> bool:
        """Whether a decision at ``index`` belongs to an earlier epoch.

        True when some member of ``view`` already recovered globally but
        the decider had not been handed the announcement: the decision was
        made in the epoch the decider was still causally in, and merely
        *recorded* after the global epoch boundary (possible on the
        concurrent runtime, where trace order is not causal order).
        """
        return any(
            not self.is_down_at(member, index)
            and self.was_down_for(node, member, index)
            for member in view.members
        )

    def epoch_at(self, index: int) -> MembershipEpoch:
        position = bisect_right(self.epoch_starts, index) - 1
        return self.epochs[max(position, 0)]

    @property
    def final_epoch(self) -> MembershipEpoch:
        return self.epochs[-1]

    def final_status(self, node: NodeId) -> str:
        return self.status_at(node, self.trace_length + 1)


def build_ground_truth(
    base_graph: KnowledgeGraph,
    trace: TraceRecorder,
    epochs: Optional[list[MembershipEpoch]] = None,
) -> ChurnGroundTruth:
    """Scan the trace once and precompute the churn ground truth.

    ``epochs`` may be passed when the caller already reconstructed them
    (e.g. :class:`~repro.churn.runner.ChurnRunResult`), avoiding a second
    trace scan and per-event graph rebuild.
    """
    history: dict[NodeId, list[tuple[int, str]]] = {}
    decisions: list[tuple[int, Decision]] = []
    notifications: dict[tuple[NodeId, NodeId], list[int]] = {}
    for index, event in enumerate(trace):
        status = _STATUS_OF_EVENT.get(event.kind)
        if status is not None and event.node is not None:
            history.setdefault(event.node, []).append((index, status))
        elif event.kind is EventKind.DECIDED:
            decisions.append((index, Decision.from_event(event)))
        elif (
            event.kind is EventKind.MEMBERSHIP_NOTIFIED
            and event.node is not None
            and event.peer is not None
        ):
            notifications.setdefault((event.node, event.peer), []).append(index)
    if epochs is None:
        epochs = build_epochs(base_graph, trace)
    return ChurnGroundTruth(
        base_graph=base_graph,
        epochs=epochs,
        history=history,
        decisions=decisions,
        notifications=notifications,
        epoch_starts=[epoch.start_index for epoch in epochs],
        trace_length=len(trace),
    )


# ---------------------------------------------------------------------------
# Individual properties
# ---------------------------------------------------------------------------
def check_churn_integrity(gt: ChurnGroundTruth) -> PropertyReport:
    """CD1, quotiented: repeat (node, view) decisions need an epoch change.

    Two decisions by the same node on the same view are legitimate only
    when the node was told, in between, that the view's membership changed
    — a recovery/join announcement about a view member reached it, or the
    node itself was reincarnated.  The check is causal (per-decider
    announcement order), so it is sound on the concurrent runtime where
    global trace order can record an old decision after a newer epoch
    started.
    """
    report = PropertyReport("CD1 Integrity (epoch-quotiented)")
    last_index: dict[tuple[NodeId, Region], int] = {}
    for index, decision in gt.decisions:
        key = (decision.node, decision.view)
        previous = last_index.get(key)
        if previous is not None:
            announced = any(
                previous < notified < index
                for member in decision.view.members
                for notified in gt.notifications.get((decision.node, member), ())
            )
            reincarnated = any(
                previous < event_index < index and status == _LIVE
                for event_index, status in gt.history.get(decision.node, ())
            )
            if not (announced or reincarnated):
                report.fail(
                    f"node {decision.node!r} decided twice on view "
                    f"{sorted(map(repr, decision.view.members))} with no "
                    f"membership change in between"
                )
        last_index[key] = index
    return report


def check_churn_view_accuracy(gt: ChurnGroundTruth) -> PropertyReport:
    """CD2, quotiented: decisions are accurate in their epoch's graph."""
    report = PropertyReport("CD2 View Accuracy (epoch-quotiented)")
    for index, decision in gt.decisions:
        graph = gt.epoch_at(index).graph
        view = decision.view
        unknown = view.members - graph.nodes
        if unknown:
            report.fail(
                f"decided view contains {sorted(map(repr, unknown))} "
                f"unknown to the graph of epoch {gt.epoch_at(index).index}"
            )
            continue
        if not graph.is_connected_subset(view.members):
            report.fail(
                f"decided view {sorted(map(repr, view.members))} is not "
                f"connected in epoch {gt.epoch_at(index).index}"
            )
        if decision.node not in graph.border(view.members):
            report.fail(
                f"decider {decision.node!r} is not on the border of its view "
                f"{sorted(map(repr, view.members))} in epoch "
                f"{gt.epoch_at(index).index}"
            )
        for member in view.members:
            if not gt.was_down_for(decision.node, member, index):
                report.fail(
                    f"decided view contains {member!r} which was "
                    f"{gt.status_at(member, index)} at the decision"
                )
    return report


def check_churn_locality(
    gt: ChurnGroundTruth, trace: TraceRecorder
) -> PropertyReport:
    """CD3, quotiented: per-epoch locality over the ever-faulty scope."""
    report = PropertyReport("CD3 Locality (epoch-quotiented)")
    scope_cache: dict[int, list[frozenset[NodeId]]] = {}

    def scopes_of(epoch: MembershipEpoch) -> list[frozenset[NodeId]]:
        cached = scope_cache.get(epoch.index)
        if cached is None:
            faulty = gt.ever_faulty_until(epoch.end_index) & epoch.graph.nodes
            domains = faulty_domains(epoch.graph, faulty)
            cached = [domain.closed_neighbourhood(epoch.graph) for domain in domains]
            scope_cache[epoch.index] = cached
        return cached

    for index, event in enumerate(trace):
        if event.kind is not EventKind.MESSAGE_SENT:
            continue
        sender, receiver = event.node, event.peer
        if sender is None or receiver is None or sender == receiver:
            continue
        scopes = scopes_of(gt.epoch_at(index))
        if not any(sender in scope and receiver in scope for scope in scopes):
            report.fail(
                f"message from {sender!r} to {receiver!r} leaves every "
                f"faulty-domain scope of epoch {gt.epoch_at(index).index}"
            )
    return report


def check_churn_border_agreement(gt: ChurnGroundTruth) -> PropertyReport:
    """CD5, quotiented: same-epoch border deciders agree on (V, d)."""
    report = PropertyReport("CD5 Uniform Border Agreement (epoch-quotiented)")
    by_epoch: dict[int, list[tuple[int, Decision]]] = {}
    for index, decision in gt.decisions:
        if gt.causally_stale(decision.node, decision.view, index):
            # Recorded after a newer epoch started but made in an older
            # one; comparing it against genuinely-new decisions would mix
            # epochs.  Its own epoch's comparisons already covered it.
            continue
        by_epoch.setdefault(gt.epoch_at(index).index, []).append((index, decision))
    for epoch_index, decisions in by_epoch.items():
        graph = gt.epochs[epoch_index].graph
        for index, decision in decisions:
            if decision.view.members - graph.nodes:
                continue  # reported by CD2
            border = graph.border(decision.view.members)
            for _, other in decisions:
                if other.node not in border or other.node == decision.node:
                    continue
                if other.view != decision.view:
                    continue
                if repr(other.value) != repr(decision.value):
                    report.fail(
                        f"{decision.node!r} decided "
                        f"({sorted(map(repr, decision.view.members))}, "
                        f"{decision.value!r}) but border node {other.node!r} "
                        f"decided value {other.value!r} in epoch {epoch_index}"
                    )
    return report


def check_churn_view_convergence(gt: ChurnGroundTruth) -> PropertyReport:
    """CD6, quotiented: same-epoch views of surviving deciders don't clash."""
    report = PropertyReport("CD6 View Convergence (epoch-quotiented)")
    by_epoch: dict[int, list[tuple[int, Decision]]] = {}
    for index, decision in gt.decisions:
        if gt.fails_at_or_after(decision.node, index):
            continue
        if gt.causally_stale(decision.node, decision.view, index):
            continue
        by_epoch.setdefault(gt.epoch_at(index).index, []).append((index, decision))
    for epoch_index, decisions in by_epoch.items():
        for position, (_, first) in enumerate(decisions):
            for _, second in decisions[position + 1 :]:
                if first.view.overlaps(second.view) and first.view != second.view:
                    report.fail(
                        f"overlapping but different views decided in epoch "
                        f"{epoch_index} by {first.node!r} "
                        f"({sorted(map(repr, first.view.members))}) and "
                        f"{second.node!r} "
                        f"({sorted(map(repr, second.view.members))})"
                    )
    return report


def check_churn_border_termination(gt: ChurnGroundTruth) -> PropertyReport:
    """CD4, quotiented: decision waves complete unless churn cuts them short.

    Only sound on quiescent runs, like the static CD4.
    """
    report = PropertyReport("CD4 Border Termination (epoch-quotiented)")
    deciders = {decision.node for _, decision in gt.decisions}
    for index, decision in gt.decisions:
        graph = gt.epoch_at(index).graph
        if decision.view.members - graph.nodes:
            continue  # reported by CD2
        # The wave is cut short when churn touches the instance: a view
        # member recovering makes the region itself stale, a border
        # *participant* reincarnating mid-wave makes the instance state
        # stale (laggards restart it against the new incarnation while
        # early deciders keep their — still valid — decision), and a
        # causally stale decision (recorded after a member's recovery
        # whose announcement had not yet reached the decider) belongs to
        # the epoch that recovery closed, so the border abandoned the
        # wave legitimately.
        wave_disrupted = (
            any(gt.recovers_after(member, index) for member in decision.view.members)
            or any(
                gt.recovers_after(participant, index)
                for participant in graph.border(decision.view.members)
            )
            or gt.causally_stale(decision.node, decision.view, index)
            # The participant-level mirror of causal staleness: a border
            # participant recovered before the decision but the
            # announcement wave had not yet reached the decider.  The
            # decider completed the instance causally inside the closed
            # epoch; peers that processed the announcement first
            # abandoned the same instance legitimately.
            or any(
                not gt.is_down_at(participant, index)
                and gt.was_down_for(decision.node, participant, index)
                for participant in graph.border(decision.view.members)
            )
        )
        if wave_disrupted:
            continue
        for border_node in graph.border(decision.view.members):
            if (
                border_node in deciders
                or gt.is_down_at(border_node, index)
                or gt.fails_at_or_after(border_node, index)
            ):
                # Excused: already decided something, down at the decision,
                # or fails later in the run (the static CD4 excuse).  A
                # node that failed and recovered *before* the decision is
                # correct for the wave and stays on the hook.
                continue
            report.fail(
                f"{decision.node!r} decided on "
                f"{sorted(map(repr, decision.view.members))} but correct "
                f"border node {border_node!r} never decided"
            )
    return report


def check_churn_progress(gt: ChurnGroundTruth) -> PropertyReport:
    """CD7, quotiented: the final epoch's faulty clusters made progress.

    Only sound on quiescent runs, like the static CD7.
    """
    report = PropertyReport("CD7 Progress (epoch-quotiented)")
    final = gt.final_epoch
    faulty = frozenset(
        node
        for node in final.graph.nodes
        if gt.final_status(node) in (_CRASHED, _DEPARTED)
    )
    if not faulty:
        return report
    for cluster in faulty_clusters(final.graph, faulty):
        members = frozenset().union(*(domain.members for domain in cluster))
        live_border = cluster_border(final.graph, cluster) - faulty
        if not live_border:
            continue
        stint_start = min(
            (
                gt.last_fail_index(member)
                for member in members
                if gt.last_fail_index(member) is not None
            ),
            default=0,
        )
        progressed = any(
            decision.node in live_border
            and index >= stint_start
            and decision.view.members <= members
            for index, decision in gt.decisions
        )
        if not progressed:
            domains_text = [sorted(map(repr, domain.members)) for domain in cluster]
            report.fail(
                f"no live border node of final faulty cluster {domains_text} "
                f"decided after the cluster's last stint began"
            )
    return report


# ---------------------------------------------------------------------------
# Whole-specification check
# ---------------------------------------------------------------------------
def check_churn_all(
    base_graph: KnowledgeGraph,
    trace: TraceRecorder,
    include_liveness: bool = True,
    epochs: Optional[list[MembershipEpoch]] = None,
) -> SpecificationReport:
    """Check the epoch-quotiented CD1–CD7 specification on a churned run.

    ``base_graph`` is the pre-churn topology; per-epoch graphs are
    reconstructed from the trace (or taken from ``epochs`` when already
    available).  As with the static checkers, CD4 and CD7 are only sound
    on quiescent runs.
    """
    gt = build_ground_truth(base_graph, trace, epochs=epochs)
    report = SpecificationReport()
    report.add(check_churn_integrity(gt))
    report.add(check_churn_view_accuracy(gt))
    report.add(check_churn_locality(gt, trace))
    report.add(check_churn_border_agreement(gt))
    report.add(check_churn_view_convergence(gt))
    if include_liveness:
        report.add(check_churn_border_termination(gt))
        report.add(check_churn_progress(gt))
    return report


def assert_churn_specification(
    base_graph: KnowledgeGraph,
    trace: TraceRecorder,
    include_liveness: bool = True,
) -> SpecificationReport:
    """Like :func:`check_churn_all` but raises ``AssertionError``."""
    report = check_churn_all(base_graph, trace, include_liveness)
    if not report.holds:
        raise AssertionError(
            "epoch-quotiented specification violated:\n" + report.summary()
        )
    return report
