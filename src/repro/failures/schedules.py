"""Crash schedules and fault injectors.

A *crash schedule* is simply a list of ``(node, time)`` pairs fed to the
simulator.  The builders in this module produce the failure patterns the
paper reasons about:

* an entire region crashing (correlated failure — the motivating case);
* a region crashing and then *growing* while the protocol is running
  (the Fig. 1b situation that creates conflicting views);
* cascades of adjacent regions (faulty clusters, Fig. 2);
* uniformly random crashes (stress tests for the property sweep).
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from ..graph import GraphError, KnowledgeGraph, NodeId, Region


class ScheduleError(ValueError):
    """Raised when a crash schedule is inconsistent with the graph."""


@dataclass(frozen=True)
class CrashSchedule:
    """An immutable list of timed crashes.

    Under the paper's static model a node crashes at most once, and the
    constructor rejects duplicates as almost-certain scenario bugs.  Churn
    scenarios (:mod:`repro.churn`) legitimately re-crash a node after it
    recovered; they construct their schedules with ``allow_recrash=True``
    and rely on :meth:`repro.churn.MembershipSchedule.validate` to check
    that every re-crash is preceded by a recovery.
    """

    crashes: tuple[tuple[NodeId, float], ...] = field(default_factory=tuple)
    allow_recrash: bool = False

    def __post_init__(self) -> None:
        seen: set[NodeId] = set()
        for node, time in self.crashes:
            if time < 0:
                raise ScheduleError(f"negative crash time for {node!r}")
            if node in seen and not self.allow_recrash:
                raise ScheduleError(f"{node!r} scheduled to crash twice")
            seen.add(node)

    @property
    def nodes(self) -> frozenset[NodeId]:
        """All nodes that crash in this schedule."""
        return frozenset(node for node, _ in self.crashes)

    @property
    def last_time(self) -> float:
        """Time of the last crash (0.0 for an empty schedule)."""
        return max((time for _, time in self.crashes), default=0.0)

    def __iter__(self):
        return iter(self.crashes)

    def __len__(self) -> int:
        return len(self.crashes)

    def shifted(self, offset: float) -> "CrashSchedule":
        """The same schedule with every crash delayed by ``offset``."""
        if offset < 0:
            raise ScheduleError("offset must be non-negative")
        return CrashSchedule(
            tuple((node, time + offset) for node, time in self.crashes),
            allow_recrash=self.allow_recrash,
        )

    def merged(self, other: "CrashSchedule") -> "CrashSchedule":
        """Union of two schedules (node sets must be disjoint)."""
        overlap = self.nodes & other.nodes
        if overlap:
            raise ScheduleError(
                f"schedules overlap on {sorted(map(repr, overlap))}"
            )
        return CrashSchedule(
            self.crashes + other.crashes,
            allow_recrash=self.allow_recrash or other.allow_recrash,
        )

    def validate(self, graph: KnowledgeGraph) -> None:
        """Check every crashed node exists in ``graph``."""
        unknown = self.nodes - graph.nodes
        if unknown:
            raise ScheduleError(f"unknown nodes in schedule: {sorted(map(repr, unknown))}")

    def applied_to(self, sim) -> None:
        """Feed the schedule into a :class:`~repro.sim.network.Simulator`."""
        sim.schedule_crashes(self.crashes)


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------
def region_crash(
    graph: KnowledgeGraph,
    members: Iterable[NodeId],
    at: float = 1.0,
    spread: float = 0.0,
) -> CrashSchedule:
    """Crash every member of a (connected) region.

    With ``spread > 0`` the members crash in deterministic `repr` order,
    evenly spaced over ``[at, at + spread]`` — a correlated but not
    perfectly simultaneous failure, which exercises the incremental view
    construction of lines 5–11.
    """
    member_list = sorted(frozenset(members), key=repr)
    if not member_list:
        raise ScheduleError("cannot crash an empty region")
    if not graph.is_connected_subset(member_list):
        raise ScheduleError("crashed members must form a connected region")
    if spread < 0:
        raise ScheduleError("spread must be non-negative")
    if len(member_list) == 1 or spread == 0:
        return CrashSchedule(tuple((node, at) for node in member_list))
    step = spread / (len(member_list) - 1)
    return CrashSchedule(
        tuple((node, at + index * step) for index, node in enumerate(member_list))
    )


def growing_region_crash(
    graph: KnowledgeGraph,
    initial_members: Iterable[NodeId],
    growth_members: Sequence[NodeId],
    initial_at: float = 1.0,
    growth_at: float = 10.0,
    growth_spacing: float = 2.0,
) -> CrashSchedule:
    """A region crashes, then grows node by node while the protocol runs.

    This is the Fig. 1b pattern: F1 crashes first, then ``paris``-like
    border members crash later, turning F1 into F3 and changing the
    constituency mid-agreement.
    """
    initial = region_crash(graph, initial_members, at=initial_at)
    growth_list = list(growth_members)
    if not growth_list:
        return initial
    overlap = initial.nodes & set(growth_list)
    if overlap:
        raise ScheduleError(
            f"growth nodes already in the initial region: {sorted(map(repr, overlap))}"
        )
    crashes = list(initial.crashes)
    accumulated = set(initial.nodes)
    for index, node in enumerate(growth_list):
        if node not in graph:
            raise ScheduleError(f"unknown growth node {node!r}")
        if not (graph.neighbours(node) & accumulated):
            raise ScheduleError(
                f"growth node {node!r} is not adjacent to the crashed region"
            )
        crashes.append((node, growth_at + index * growth_spacing))
        accumulated.add(node)
    return CrashSchedule(tuple(crashes))


def multi_region_crash(
    graph: KnowledgeGraph,
    regions: Iterable[Iterable[NodeId]],
    at: float = 1.0,
    stagger: float = 0.0,
) -> CrashSchedule:
    """Several disjoint regions crash (simultaneously or staggered)."""
    schedule = CrashSchedule()
    for index, members in enumerate(regions):
        schedule = schedule.merged(
            region_crash(graph, members, at=at + index * stagger)
        )
    return schedule


def random_connected_region(
    graph: KnowledgeGraph,
    size: int,
    seed: int = 0,
    forbidden: Iterable[NodeId] = (),
) -> Region:
    """A random connected region of ``size`` nodes (seeded BFS growth)."""
    if size < 1:
        raise ScheduleError("region size must be positive")
    rng = random.Random(seed)
    forbidden_set = frozenset(forbidden)
    candidates = sorted(graph.nodes - forbidden_set, key=repr)
    if not candidates:
        raise ScheduleError("no candidate nodes available")
    for _ in range(256):
        start = rng.choice(candidates)
        members = {start}
        frontier = list(graph.neighbours(start) - forbidden_set)
        while frontier and len(members) < size:
            next_node = frontier.pop(rng.randrange(len(frontier)))
            if next_node in members:
                continue
            members.add(next_node)
            frontier.extend(graph.neighbours(next_node) - members - forbidden_set)
        if len(members) == size:
            return Region(frozenset(members))
    raise ScheduleError(
        f"could not grow a connected region of size {size} "
        f"(graph too small or too constrained)"
    )


def random_crashes(
    graph: KnowledgeGraph,
    count: int,
    seed: int = 0,
    start: float = 1.0,
    spacing: float = 1.0,
    keep_connected_survivors: bool = False,
) -> CrashSchedule:
    """``count`` crashes of uniformly random distinct nodes.

    With ``keep_connected_survivors=True`` candidates whose removal would
    disconnect the surviving graph are skipped (useful when a scenario
    requires the correct nodes to stay mutually reachable).
    """
    if count < 0:
        raise ScheduleError("count must be non-negative")
    rng = random.Random(seed)
    available = sorted(graph.nodes, key=repr)
    rng.shuffle(available)
    chosen: list[NodeId] = []
    crashed: set[NodeId] = set()
    for node in available:
        if len(chosen) >= count:
            break
        if keep_connected_survivors:
            survivors = graph.nodes - crashed - {node}
            if survivors and not graph.is_connected_subset(survivors):
                continue
        chosen.append(node)
        crashed.add(node)
    if len(chosen) < count:
        raise ScheduleError(
            f"could only select {len(chosen)} of {count} requested crashes"
        )
    return CrashSchedule(
        tuple((node, start + index * spacing) for index, node in enumerate(chosen))
    )


def cascade_crash(
    graph: KnowledgeGraph,
    seed_node: NodeId,
    size: int,
    start: float = 1.0,
    spacing: float = 1.0,
) -> CrashSchedule:
    """A failure cascade spreading outwards from ``seed_node`` by BFS order.

    Deterministic: neighbours are visited in ``repr`` order.  Produces the
    "crashed region keeps growing under the protocol's feet" workloads used
    by the adversarial property sweep.
    """
    if seed_node not in graph:
        raise GraphError(f"unknown node {seed_node!r}")
    if size < 1:
        raise ScheduleError("cascade size must be positive")
    order: list[NodeId] = []
    seen = {seed_node}
    frontier = [seed_node]
    while frontier and len(order) < size:
        current = frontier.pop(0)
        order.append(current)
        for neighbour in sorted(graph.neighbours(current), key=repr):
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    if len(order) < size:
        raise ScheduleError(
            f"graph only allows a cascade of {len(order)} nodes from {seed_node!r}"
        )
    return CrashSchedule(
        tuple((node, start + index * spacing) for index, node in enumerate(order))
    )
