"""Crash schedules and fault injection."""

from .schedules import (
    CrashSchedule,
    ScheduleError,
    cascade_crash,
    growing_region_crash,
    multi_region_crash,
    random_connected_region,
    random_crashes,
    region_crash,
)

__all__ = [
    "CrashSchedule",
    "ScheduleError",
    "region_crash",
    "growing_region_crash",
    "multi_region_crash",
    "random_connected_region",
    "random_crashes",
    "cascade_crash",
]
