"""Command-line interface.

``python -m repro <command>`` (or the ``repro`` console script) exposes the
most useful entry points of the library without writing any Python:

* ``quickstart`` — crash a block in a grid and print the agreement;
* ``figure {1a,1b,2,3}`` — run a paper-figure scenario and print what it
  demonstrates;
* ``locality`` — the EXP-L1/EXP-L2 sweeps as plain-text tables;
* ``repair`` — the end-to-end overlay repair demo;
* ``sweep`` — the EXP-C1 adversarial property sweep;
* ``report`` — every experiment table (the EXPERIMENTS.md source).

Every command prints deterministic output for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from typing import Callable

from .experiments import (
    churn_flash_crowd_scenario,
    churn_property_sweep,
    churn_recovery_race_scenario,
    churn_steady_scenario,
    fig1a_scenario,
    format_table,
    locality_is_flat,
    property_sweep,
    region_size_sweep,
    render_report,
    run_fig1b,
    run_fig2,
    run_fig3,
    run_overlay_repair,
    sweep_summary,
    system_size_sweep,
)
from .experiments.report import build_report
from .failures import region_crash
from .graph.generators import grid, square_region
from .experiments.runner import run_cliff_edge


def _cmd_quickstart(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    graph = grid(args.side, args.side)
    block = sorted(square_region((1, 1), args.block))
    schedule = region_crash(graph, block, at=1.0)
    result = run_cliff_edge(graph, schedule, seed=args.seed, check=True)
    write(f"crashed block: {block}")
    write(result.summary())
    write(result.specification.summary())
    return 0 if result.specification.holds else 1


def _cmd_figure(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    if args.which == "1a":
        result = fig1a_scenario().run(seed=args.seed)
        write(result.summary())
        write(result.specification.summary())
        return 0 if result.specification.holds else 1
    if args.which == "1b":
        observations = run_fig1b(seed=args.seed)
        write(f"conflict arose: {observations.conflict_arose}")
        write(f"converged on F3: {observations.converged_on_f3}")
        write(f"rejections: {observations.rejections}")
        write(observations.result.specification.summary())
        return 0 if observations.result.specification.holds else 1
    if args.which == "2":
        observations = run_fig2(seed=args.seed)
        rows = [
            {"domain": name, "decided": decided, "deciders": ", ".join(map(str, observations.deciders[name]))}
            for name, decided in sorted(observations.decided_domains.items())
        ]
        write(format_table(rows, title="Fig. 2 — faulty cluster"))
        write(f"cluster has a decision (CD7): {observations.cluster_has_decision}")
        return 0 if observations.result.specification.holds else 1
    observations = run_fig3(seed=args.seed)
    write(f"first wave decided: {observations.first_wave_view is not None}")
    write(f"grown region proposed: {observations.grown_region_proposed}")
    write(f"no conflicting decision (CD6): {observations.no_conflicting_decision}")
    return 0 if observations.result.specification.holds else 1


def _cmd_locality(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    sides = (8, 12, 16, 24, 32) if not args.full else (8, 12, 16, 24, 32, 48, 64)
    points = system_size_sweep(sides=sides, seed=args.seed)
    write(format_table([p.as_row() for p in points], title="EXP-L1: cost vs system size"))
    write(f"flat across system sizes: {locality_is_flat(points)}")
    region_points = region_size_sweep(region_sides=(1, 2, 3, 4), seed=args.seed)
    write("")
    write(
        format_table(
            [p.as_row() for p in region_points], title="EXP-L2: cost vs region size"
        )
    )
    return 0


def _cmd_repair(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    run = run_overlay_repair(
        ring_size=args.ring_size,
        successors=2,
        arc_start=args.arc_start,
        arc_length=args.arc_length,
        seed=args.seed,
    )
    write(f"crashed arc: {list(run.arc)}")
    write(run.outcome.summary())
    write(f"specification holds: {run.result.specification.holds}")
    return 0 if run.outcome.ring_restored and run.result.specification.holds else 1


def _cmd_sweep(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    from .scale import resolve_workers

    seeds = tuple(range(args.cases))
    workers = resolve_workers(args.workers)
    if args.churn:
        churn_cases = churn_property_sweep(seeds=seeds, workers=workers)
        write(
            format_table(
                [case.as_row() for case in churn_cases],
                title="EXP-C1 adversarial churn sweep",
            )
        )
        ok = all(case.specification_holds for case in churn_cases)
        violating = [c.seed for c in churn_cases if not c.specification_holds]
        write(f"workers: {workers}  all hold: {ok}  violations: {violating}")
        return 0 if ok else 1
    cases = property_sweep(seeds=seeds, workers=workers)
    write(format_table([case.as_row() for case in cases], title="EXP-C1 sweep"))
    summary = sweep_summary(cases)
    write(
        f"workers: {workers}  all hold: {summary['all_hold']}  "
        f"violations: {summary['violating_seeds']}"
    )
    return 0 if summary["all_hold"] else 1


def _cmd_churn(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    if args.scenario == "steady":
        scenario = churn_steady_scenario(
            nodes=args.nodes,
            churn_rate=args.churn_rate,
            duration=args.duration,
            seed=args.seed,
        )
    elif args.scenario == "race":
        scenario = churn_recovery_race_scenario(nodes=args.nodes, seed=args.seed)
    else:
        scenario = churn_flash_crowd_scenario(nodes=args.nodes, seed=args.seed)
    write(f"scenario: {scenario.name} — {scenario.description}")
    runtimes = ["sim", "asyncio"] if args.runtime == "both" else [args.runtime]
    results = []
    for runtime in runtimes:
        result = scenario.run(check=True, seed=args.seed, runtime=runtime)
        results.append(result)
        write("")
        write(f"=== {runtime} runtime ===")
        write(result.summary())
        write(result.specification.summary())
    ok = all(r.specification.holds and r.quiescent for r in results)
    if len(results) == 2:
        # Distinct decided views must agree across runtimes.  The per-epoch
        # decision counts may legitimately differ on racy scenarios: whether
        # a recovery beats the in-flight agreement is a timing question, and
        # both outcomes satisfy the epoch-quotiented specification.
        agree = results[0].decided_views == results[1].decided_views
        write("")
        write(f"runtimes decided identical views: {agree}")
        ok = ok and agree
    return 0 if ok else 1


def _cmd_report(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    sections = build_report(quick=args.quick)
    write(render_report(sections, markdown=args.markdown))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cliff-edge consensus (Taïani et al., PaCT 2013) — reproduction CLI",
    )
    parser.add_argument("--seed", type=int, default=0, help="deterministic seed")
    sub = parser.add_subparsers(dest="command", required=True)

    quickstart = sub.add_parser("quickstart", help="crash a block in a grid and agree on it")
    quickstart.add_argument("--side", type=int, default=6, help="grid side length")
    quickstart.add_argument("--block", type=int, default=2, help="crashed block side length")
    quickstart.set_defaults(func=_cmd_quickstart)

    figure = sub.add_parser("figure", help="run one of the paper's figure scenarios")
    figure.add_argument("which", choices=["1a", "1b", "2", "3"])
    figure.set_defaults(func=_cmd_figure)

    locality = sub.add_parser("locality", help="EXP-L1/EXP-L2 locality sweeps")
    locality.add_argument("--full", action="store_true", help="sweep up to 4096 nodes")
    locality.set_defaults(func=_cmd_locality)

    repair = sub.add_parser("repair", help="end-to-end overlay repair demo")
    repair.add_argument("--ring-size", type=int, default=32)
    repair.add_argument("--arc-start", type=int, default=5)
    repair.add_argument("--arc-length", type=int, default=4)
    repair.set_defaults(func=_cmd_repair)

    sweep = sub.add_parser("sweep", help="EXP-C1 adversarial property sweep")
    sweep.add_argument("--cases", type=int, default=10)
    def _worker_count(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError("workers must be >= 0")
        return value

    sweep.add_argument(
        "--workers",
        type=_worker_count,
        default=1,
        help="shard the sweep over N worker processes (0 = one per CPU); "
        "results are identical for every worker count",
    )
    sweep.add_argument(
        "--churn",
        action="store_true",
        help="run the adversarial churn extension (random joins/recoveries "
        "racing cascades, epoch-quotiented CD1-CD7)",
    )
    sweep.set_defaults(func=_cmd_sweep)

    churn = sub.add_parser(
        "churn", help="dynamic-membership scenarios (joins, recoveries, leaves)"
    )
    churn.add_argument(
        "--scenario",
        choices=["steady", "race", "flash"],
        default="steady",
        help="steady churn sweep, crash-recover-recrash race, or flash-crowd joins",
    )
    churn.add_argument("--nodes", type=int, default=64, help="approximate torus size")
    churn.add_argument(
        "--churn-rate",
        type=float,
        default=0.05,
        dest="churn_rate",
        help="fraction of the population starting a crash-recover cycle per time unit",
    )
    churn.add_argument("--duration", type=float, default=100.0)
    churn.add_argument(
        "--runtime", choices=["sim", "asyncio", "both"], default="sim"
    )
    # Accept --seed after the subcommand too (it is also a global option);
    # SUPPRESS keeps a pre-subcommand --seed intact when absent here.
    churn.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="deterministic seed"
    )
    churn.set_defaults(func=_cmd_churn)

    report = sub.add_parser("report", help="regenerate every experiment table")
    report.add_argument("--quick", action="store_true")
    report.add_argument("--markdown", action="store_true")
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Sequence[str] | None = None, write: Callable[[str], object] = print) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else sys.argv[1:])
    return args.func(args, write)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
