"""Command-line interface.

``python -m repro <command>`` (or the ``repro`` console script) exposes the
most useful entry points of the library without writing any Python:

* ``quickstart`` — crash a block in a grid and print the agreement;
* ``figure {1a,1b,2,3}`` — run a paper-figure scenario and print what it
  demonstrates;
* ``locality`` — the EXP-L1/EXP-L2 sweeps as plain-text tables;
* ``repair`` — the end-to-end overlay repair demo;
* ``sweep`` — the EXP-C1 adversarial property sweep;
* ``churn`` — dynamic-membership scenarios on either runtime;
* ``run`` — execute a declarative spec document (``SPEC.json`` or ``-``
  for stdin);
* ``report`` — every experiment table (the EXPERIMENTS.md source).

The single-run and sweep commands are thin shims over the declarative
spec layer (:mod:`repro.api`): ``--emit-spec`` prints the JSON spec that
reproduces the command (pipe it into ``repro run -``), and ``--json``
prints the machine-readable result instead of text tables.

Every command prints deterministic output for a given ``--seed``.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path
from typing import Callable

from .api import (
    ExperimentSession,
    SweepSpec,
    churn_scenario_description,
    churn_scenario_spec,
    figure_spec,
    load_spec,
    property_sweep_spec,
    quickstart_spec,
)
from .experiments import (
    fig1a_scenario,
    format_table,
    locality_is_flat,
    region_size_sweep,
    render_report,
    run_fig1b,
    run_fig2,
    run_fig3,
    run_overlay_repair,
    system_size_sweep,
)
from .experiments.report import build_report


def _write_json(write: Callable[[str], object], payload: dict) -> None:
    write(json.dumps(payload, indent=2, sort_keys=True))


#: The ``--faults`` knobs and how to parse their values.
_FAULT_KNOB_TYPES = {
    "loss": float,
    "duplication": float,
    "copies": int,
    "reorder": float,
    "reorder_rate": float,
    "seed": int,
}

#: Knobs a sweep may colon-expand into degradation axes.
_FAULT_AXIS_KNOBS = ("loss", "duplication", "reorder")


def _parse_faults(text: str, sweep: bool = False) -> tuple[dict, dict]:
    """Parse a ``--faults`` argument into ``(block, axes)``.

    ``text`` is either a preset name (``lossy``, ``dupes``, ``jumbled``,
    ``hostile``) or comma-separated ``knob=value`` pairs.  With
    ``sweep=True`` a colon-separated value list (``loss=0:0.02:0.05``)
    becomes a degradation axis in ``axes``; scalars stay in ``block``.
    """
    from .api import SpecError, fault_preset

    if "=" not in text:
        return fault_preset(text.strip()), {}
    block: dict = {}
    axes: dict = {}
    for pair in text.split(","):
        pair = pair.strip()
        if not pair:
            continue
        knob, _, raw = pair.partition("=")
        knob = knob.strip()
        try:
            cast = _FAULT_KNOB_TYPES[knob]
        except KeyError:
            raise SpecError(
                f"unknown --faults knob {knob!r}; known: "
                f"{', '.join(sorted(_FAULT_KNOB_TYPES))} (or a preset name)"
            ) from None
        try:
            values = [cast(value) for value in raw.split(":")]
        except ValueError:
            raise SpecError(
                f"bad --faults value for {knob!r}: {raw!r} "
                f"(expected {cast.__name__}, ':'-separated to sweep)"
            ) from None
        if len(values) > 1:
            if not sweep:
                raise SpecError(
                    f"--faults {knob} lists several values; colon lists "
                    "sweep a degradation axis and only `repro sweep "
                    "--faults` accepts them"
                )
            if knob not in _FAULT_AXIS_KNOBS:
                raise SpecError(
                    f"--faults can only sweep {', '.join(_FAULT_AXIS_KNOBS)}; "
                    f"{knob!r} is a modifier and takes one value"
                )
            axes[knob] = values
        else:
            block[knob] = values[0]
    if not block and not axes:
        raise SpecError("--faults is empty (give a preset name or knob=value pairs)")
    return block, axes


def _write_sweep_report(
    report, spec: SweepSpec, as_json: bool, write: Callable[[str], object]
) -> int:
    """Shared rendering + exit code for spec-driven sweep reports."""
    if as_json:
        _write_json(write, report.as_dict())
        return 0 if report.all_hold else 1
    write(format_table(report.as_rows(), title=f"sweep {spec.name or spec.digest()[:12]}"))
    write(
        f"runs: {len(report)}  workers: {report.workers}  "
        f"all hold: {report.all_hold}  digest: {report.digest()[:12]}"
    )
    return 0 if report.all_hold else 1


def _cmd_quickstart(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    spec = quickstart_spec(side=args.side, block=args.block, seed=args.seed)
    if args.emit_spec:
        write(spec.to_json())
        return 0
    result = ExperimentSession().run(spec)
    if args.json:
        _write_json(write, result.as_dict())
        return 0 if result.specification.holds else 1
    # Print the block the spec actually crashes, not a recomputation.
    block = sorted(tuple(member) for member in spec.failure.params["members"])
    write(f"crashed block: {block}")
    write(result.summary())
    write(result.specification.summary())
    return 0 if result.specification.holds else 1


def _cmd_figure(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    if args.emit_spec:
        write(figure_spec(args.which, seed=args.seed).to_json())
        return 0
    if args.which == "1a":
        result = fig1a_scenario().run(seed=args.seed)
        write(result.summary())
        write(result.specification.summary())
        return 0 if result.specification.holds else 1
    if args.which == "1b":
        observations = run_fig1b(seed=args.seed)
        write(f"conflict arose: {observations.conflict_arose}")
        write(f"converged on F3: {observations.converged_on_f3}")
        write(f"rejections: {observations.rejections}")
        write(observations.result.specification.summary())
        return 0 if observations.result.specification.holds else 1
    if args.which == "2":
        observations = run_fig2(seed=args.seed)
        rows = [
            {"domain": name, "decided": decided, "deciders": ", ".join(map(str, observations.deciders[name]))}
            for name, decided in sorted(observations.decided_domains.items())
        ]
        write(format_table(rows, title="Fig. 2 — faulty cluster"))
        write(f"cluster has a decision (CD7): {observations.cluster_has_decision}")
        return 0 if observations.result.specification.holds else 1
    observations = run_fig3(seed=args.seed)
    write(f"first wave decided: {observations.first_wave_view is not None}")
    write(f"grown region proposed: {observations.grown_region_proposed}")
    write(f"no conflicting decision (CD6): {observations.no_conflicting_decision}")
    return 0 if observations.result.specification.holds else 1


def _cmd_locality(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    from .api import locality_sweep_spec

    sides = (8, 12, 16, 24, 32) if not args.full else (8, 12, 16, 24, 32, 48, 64)
    if args.emit_spec:
        # One declarative document per experiment: EXP-L1 varies the
        # torus through a width|height-coupled axis, EXP-L2 the block.
        write(locality_sweep_spec(args.exp, sides=sides, seed=args.seed).to_json())
        return 0
    points = system_size_sweep(sides=sides, seed=args.seed)
    write(format_table([p.as_row() for p in points], title="EXP-L1: cost vs system size"))
    write(f"flat across system sizes: {locality_is_flat(points)}")
    region_points = region_size_sweep(region_sides=(1, 2, 3, 4), seed=args.seed)
    write("")
    write(
        format_table(
            [p.as_row() for p in region_points], title="EXP-L2: cost vs region size"
        )
    )
    return 0


def _cmd_repair(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    if args.emit_spec:
        from .api import repair_spec

        write(
            repair_spec(
                ring_size=args.ring_size,
                successors=2,
                arc_start=args.arc_start,
                arc_length=args.arc_length,
                seed=args.seed,
            ).to_json()
        )
        return 0
    run = run_overlay_repair(
        ring_size=args.ring_size,
        successors=2,
        arc_start=args.arc_start,
        arc_length=args.arc_length,
        seed=args.seed,
    )
    write(f"crashed arc: {list(run.arc)}")
    write(run.outcome.summary())
    write(f"specification holds: {run.result.specification.holds}")
    return 0 if run.outcome.ring_restored and run.result.specification.holds else 1


def _cmd_sweep(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    from .scale import resolve_workers

    session = ExperimentSession()
    # --cases/--workers default to None so an *explicitly passed* default
    # value is distinguishable from "not passed" when combined with --spec.
    cases = args.cases if args.cases is not None else 10
    workers_requested = args.workers if args.workers is not None else 1
    if args.faults:
        if args.spec or args.churn:
            write(
                "--faults builds a degradation sweep from the quickstart "
                "scenario; it conflicts with --spec and --churn (put a "
                "'runtime.faults.*' axis in the sweep document instead)"
            )
            return 2
        return _cmd_sweep_faults(args, cases, workers_requested, session, write)
    if args.spec:
        if args.cases is not None or args.churn:
            # The document defines the sweep; silently dropping explicit
            # flags would run something other than what was asked for.
            write(
                "--cases/--churn conflict with --spec (the document defines "
                "the sweep); pass --workers to override the pool size"
            )
            return 2
        spec = load_spec(_read_spec_text(args.spec))
        if not isinstance(spec, SweepSpec):
            write(
                f"{args.spec}: expected a sweep spec, got an experiment spec "
                "(use `repro run` for single experiments)"
            )
            return 2
        if args.workers is not None:
            import dataclasses

            spec = dataclasses.replace(spec, workers=args.workers)
        if args.emit_spec:
            # Print the (possibly worker-overridden) normalized document
            # instead of launching a potentially expensive sweep.
            write(spec.to_json())
            return 0
        report = session.run_sweep(spec)
        return _write_sweep_report(report, spec, args.json, write)
    if args.emit_spec:
        # Emit the *requested* worker count, not the resolved one: baking
        # this machine's CPU count into the document would make the spec
        # (and its digest) machine-dependent for no behavioural gain.
        write(
            property_sweep_spec(
                cases=cases, workers=workers_requested, churn=args.churn
            ).to_json()
        )
        return 0
    workers = resolve_workers(workers_requested)
    spec = property_sweep_spec(cases=cases, workers=workers, churn=args.churn)
    report = session.run_sweep(spec)
    if args.json:
        _write_json(write, report.as_dict())
        return 0 if report.all_hold else 1
    cases = report.cases()
    if args.churn:
        write(
            format_table(
                [case.as_row() for case in cases],
                title="EXP-C1 adversarial churn sweep",
            )
        )
        ok = all(case.specification_holds for case in cases)
        violating = [c.seed for c in cases if not c.specification_holds]
        write(f"workers: {workers}  all hold: {ok}  violations: {violating}")
        return 0 if ok else 1
    from .experiments import sweep_summary

    write(format_table([case.as_row() for case in cases], title="EXP-C1 sweep"))
    summary = sweep_summary(cases)
    write(
        f"workers: {workers}  all hold: {summary['all_hold']}  "
        f"violations: {summary['violating_seeds']}"
    )
    return 0 if summary["all_hold"] else 1


def _cmd_sweep_faults(
    args: argparse.Namespace,
    cases: int,
    workers_requested: int,
    session: ExperimentSession,
    write: Callable[[str], object],
) -> int:
    """``repro sweep --faults``: a degradation sweep + per-property table."""
    import dataclasses

    from .experiments import degradation_from_sweep
    from .scale import resolve_workers

    block, axes = _parse_faults(args.faults, sweep=True)
    if not axes:
        write(
            "sweep --faults needs at least one ':'-separated axis, e.g. "
            "--faults loss=0:0.02:0.05 (a single fault point runs with "
            "`repro run --faults`)"
        )
        return 2
    # Scalar knobs (and each axis' first value, for eager validation of
    # the full combination) live on the template; only the colon lists
    # become grid axes, so the degradation report's swept knob is
    # unambiguous.  _override merges into the template's faults block.
    template_faults = dict(block)
    for knob, values in axes.items():
        template_faults[knob] = values[0]
    template = quickstart_spec(seed=args.seed).with_faults(template_faults)
    spec = SweepSpec(
        name="faults-" + "-".join(sorted(axes)),
        experiment=template,
        seeds=tuple(range(cases)),
        grid={f"runtime.faults.{knob}": list(values) for knob, values in axes.items()},
        workers=workers_requested,
    )
    if args.emit_spec:
        write(spec.to_json())
        return 0
    spec = dataclasses.replace(spec, workers=resolve_workers(workers_requested))
    report = session.run_sweep(spec)
    degradation = degradation_from_sweep(spec, report)
    if args.json:
        payload = report.as_dict()
        payload["degradation"] = degradation.as_dict()
        _write_json(write, payload)
    else:
        write(degradation.summary())
        write(
            f"runs: {len(report)}  workers: {report.workers}  "
            f"digest: {report.digest()[:12]}"
        )
    return 0 if degradation.acceptable else 1


def _cmd_churn(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    if args.emit_spec and args.runtime in ("both", "all"):
        # A single experiment spec describes one engine; emitting only the
        # sim half would silently drop the cross-runtime agreement check.
        write(
            "--emit-spec needs a single engine; re-run with --runtime sim, "
            "asyncio or asyncio-virtual (run each document to compare)"
        )
        return 2
    spec = churn_scenario_spec(
        args.scenario,
        nodes=args.nodes,
        churn_rate=args.churn_rate,
        duration=args.duration,
        seed=args.seed,
        runtime=args.runtime if args.runtime not in ("both", "all") else "sim",
    )
    if args.faults:
        block, _ = _parse_faults(args.faults)
        spec = spec.with_faults(block)
    if args.emit_spec:
        write(spec.to_json())
        return 0
    session = ExperimentSession()
    if args.runtime == "both":
        runtimes = ["sim", "asyncio"]
    elif args.runtime == "all":
        runtimes = ["sim", "asyncio", "asyncio-virtual"]
    else:
        runtimes = [args.runtime]
    results = [session.run(spec.with_engine(runtime)) for runtime in runtimes]
    ok = all(r.specification.holds and r.quiescent for r in results)
    agree = None
    if len(results) >= 2:
        # Distinct decided views must agree across runtimes.  The per-epoch
        # decision counts may legitimately differ on racy scenarios: whether
        # a recovery beats the in-flight agreement is a timing question, and
        # both outcomes satisfy the epoch-quotiented specification.
        agree = all(
            result.decided_views == results[0].decided_views
            for result in results[1:]
        )
        ok = ok and agree
    if args.json:
        payload = {
            "scenario": spec.name,
            "runs": [result.as_dict() for result in results],
            "ok": ok,
        }
        if agree is not None:
            payload["runtimes_agree"] = agree
        _write_json(write, payload)
        return 0 if ok else 1
    write(f"scenario: {spec.name} — {churn_scenario_description(args.scenario)}")
    for runtime, result in zip(runtimes, results):
        write("")
        write(f"=== {runtime} runtime ===")
        write(result.summary())
        write(result.specification.summary())
    if agree is not None:
        write("")
        write(f"runtimes decided identical views: {agree}")
    return 0 if ok else 1


def _read_spec_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    try:
        return Path(path).read_text()
    except OSError as exc:
        from .api import SpecError

        raise SpecError(f"cannot read spec file {path!r}: {exc}") from exc


def _cmd_run(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    spec = load_spec(_read_spec_text(args.spec))
    session = ExperimentSession()
    if isinstance(spec, SweepSpec):
        if args.partitions is not None:
            write(
                "--partitions applies to single experiments; a sweep "
                "parallelises across runs (set 'workers' in the document "
                "or use `repro sweep --workers`)"
            )
            return 2
        if args.collection is not None:
            write(
                "--collection applies to single experiments; set "
                "runtime.collection on the sweep's base experiment instead"
            )
            return 2
        if args.runtime is not None:
            write(
                "--runtime applies to single experiments; set "
                "runtime.engine on the sweep's base experiment instead"
            )
            return 2
        if args.faults is not None:
            write(
                "--faults applies to single experiments; put a "
                "'runtime.faults' block (or grid axis) in the sweep "
                "document, or use `repro sweep --faults`"
            )
            return 2
        report = session.run_sweep(spec)
        return _write_sweep_report(report, spec, args.json, write)
    if args.runtime is not None:
        spec = spec.with_engine(args.runtime)
    if args.partitions is not None:
        spec = spec.with_partitions(args.partitions)
    if args.collection is not None:
        spec = spec.with_collection(args.collection)
    if args.faults is not None:
        block, _ = _parse_faults(args.faults)
        spec = spec.with_faults(block)
    result = session.run(spec)
    if args.json:
        _write_json(write, result.as_dict())
    else:
        if spec.name:
            write(f"spec: {spec.name} ({spec.digest()[:12]})")
        write(result.summary())
        if result.specification is not None:
            write(result.specification.summary())
    holds = result.specification.holds if result.specification is not None else True
    return 0 if holds else 1


def _cmd_report(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    sections = build_report(quick=args.quick)
    write(render_report(sections, markdown=args.markdown))
    return 0


# ---------------------------------------------------------------------------
# Experiment service commands
# ---------------------------------------------------------------------------
def _server_url(args: argparse.Namespace) -> str:
    """Resolve the server URL: ``--server`` > ``$REPRO_SERVER`` > default."""
    import os

    from .service import DEFAULT_URL

    if getattr(args, "server", None):
        return args.server
    return os.environ.get("REPRO_SERVER", DEFAULT_URL)


def _format_job(job: dict) -> str:
    progress = job.get("progress", {})
    done, total = progress.get("done", 0), progress.get("total", 1)
    parts = [
        f"job {job['id']}",
        f"state={job['state']}",
        f"progress={done}/{total}",
        f"spec={job['spec_digest'][:12]}",
        f"seed={job['seed']}",
    ]
    if job.get("cached"):
        parts.append("cached")
    if job.get("digest"):
        parts.append(f"digest={job['digest'][:12]}")
    if job.get("error"):
        parts.append(f"error={job['error'].splitlines()[-1]}")
    return "  ".join(parts)


def _cmd_serve(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    from .service import serve

    server = serve(
        args.root,
        host=args.host,
        port=args.port,
        workers=args.workers,
        verbose=args.verbose,
        store_max_bytes=args.store_max_bytes,
    )
    write(
        f"experiment server listening on {server.url} "
        f"(root={args.root}, workers={args.workers})"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    finally:
        server.service.stop_workers()
        server.server_close()
    return 0


def _cmd_submit(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    from .api import SpecError
    from .service import ServiceClient, ServiceError

    text = _read_spec_text(args.spec)
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"spec document is not valid JSON: {exc}") from exc
    client = ServiceClient(_server_url(args))
    response = client.submit(document, force=args.force)
    job = response["job"]
    if args.wait and not job["state"] in ("done", "failed"):
        try:
            job = client.wait(job["id"], timeout=args.timeout)
        except ServiceError as exc:
            write(str(exc))
            return 1
    if args.json:
        _write_json(write, {"job": job, "created": response["created"]})
    else:
        write(_format_job(job))
        if job["state"] == "done" and job.get("cached"):
            write("served from the result store (identical submission)")
    if job["state"] == "failed":
        return 1
    return 0


def _cmd_status(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    from .service import ServiceClient

    client = ServiceClient(_server_url(args))
    if args.job is None:
        jobs = client.jobs(state=args.state)
        if args.json:
            _write_json(write, {"jobs": jobs})
        elif not jobs:
            write("no jobs")
        else:
            for job in jobs:
                write(_format_job(job))
        return 0
    if args.watch:
        job = None
        for job in client.events(args.job, timeout=args.timeout):
            write(_format_job(job))
        return 0 if job is not None and job["state"] == "done" else 1
    job = client.job(args.job)
    if args.json:
        _write_json(write, {"job": job})
    else:
        write(_format_job(job))
    return 0 if job["state"] != "failed" else 1


def _cmd_result(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    from .service import ServiceClient, ServiceError

    client = ServiceClient(_server_url(args))
    try:
        response = client.result(args.job)
    except ServiceError as exc:
        if getattr(exc, "status", None) == 409 and args.wait:
            client.wait(args.job, timeout=args.timeout)
            response = client.result(args.job)
        else:
            write(str(exc))
            return 1
    envelope = response["envelope"]
    if args.json:
        _write_json(write, response)
        return 0
    job = response["job"]
    write(_format_job(job))
    write(f"kind: {envelope['kind']}  digest: {envelope['digest']}")
    summary = envelope.get("result", {}).get("summary")
    if isinstance(summary, dict):
        for key in sorted(summary):
            write(f"  {key}: {summary[key]}")
    if "digest_state" in envelope:
        from .service import hydrate_digest_result

        recorder = hydrate_digest_result(envelope)
        write(
            f"digest-partial verified: {len(recorder)} events fold to "
            f"{recorder.digest()[:12]} (no event log crossed the wire)"
        )
    return 0


def _cmd_work(args: argparse.Namespace, write: Callable[[str], object]) -> int:
    from .service import ServiceClient, WorkerLoop

    client = ServiceClient(_server_url(args), timeout=args.timeout)
    loop = WorkerLoop(
        client,
        name=args.name,
        poll_interval=args.poll_interval,
        drain=args.drain,
        processes=args.processes,
    )
    mode = f" ({args.processes} processes)" if args.processes else ""
    write(f"worker {args.name!r} polling {client.base_url}{mode}")
    try:
        loop.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
    write(f"worker {args.name!r}: {loop.completed} completed, {loop.failed} failed")
    return 0 if loop.failed == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cliff-edge consensus (Taïani et al., PaCT 2013) — reproduction CLI",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the package version (sourced from pyproject.toml)",
    )
    parser.add_argument("--seed", type=int, default=0, help="deterministic seed")
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_spec_flags(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--emit-spec",
            action="store_true",
            dest="emit_spec",
            help="print the declarative spec JSON reproducing this command "
            "(pipe into `repro run -`) instead of running it",
        )
        command.add_argument(
            "--json",
            action="store_true",
            help="print the machine-readable result as JSON",
        )

    quickstart = sub.add_parser("quickstart", help="crash a block in a grid and agree on it")
    quickstart.add_argument("--side", type=int, default=6, help="grid side length")
    quickstart.add_argument("--block", type=int, default=2, help="crashed block side length")
    _add_spec_flags(quickstart)
    quickstart.set_defaults(func=_cmd_quickstart)

    figure = sub.add_parser("figure", help="run one of the paper's figure scenarios")
    figure.add_argument("which", choices=["1a", "1b", "2", "3"])
    figure.add_argument(
        "--emit-spec",
        action="store_true",
        dest="emit_spec",
        help="print the spec JSON reproducing the figure's run",
    )
    figure.set_defaults(func=_cmd_figure)

    locality = sub.add_parser("locality", help="EXP-L1/EXP-L2 locality sweeps")
    locality.add_argument("--full", action="store_true", help="sweep up to 4096 nodes")
    locality.add_argument(
        "--exp",
        choices=["l1", "l2"],
        default="l1",
        help="which experiment --emit-spec describes: l1 (system size) "
        "or l2 (region size)",
    )
    locality.add_argument(
        "--emit-spec",
        action="store_true",
        dest="emit_spec",
        help="print the declarative sweep spec JSON reproducing the "
        "selected experiment (pipe into `repro sweep --spec -`) instead "
        "of running it",
    )
    locality.set_defaults(func=_cmd_locality)

    repair = sub.add_parser("repair", help="end-to-end overlay repair demo")
    repair.add_argument("--ring-size", type=int, default=32)
    repair.add_argument("--arc-start", type=int, default=5)
    repair.add_argument("--arc-length", type=int, default=4)
    repair.add_argument(
        "--emit-spec",
        action="store_true",
        dest="emit_spec",
        help="print the declarative spec JSON reproducing this repair run "
        "(pipe into `repro run -`) instead of running it",
    )
    repair.set_defaults(func=_cmd_repair)

    sweep = sub.add_parser("sweep", help="EXP-C1 adversarial property sweep")
    sweep.add_argument("--cases", type=int, default=None, help="number of seeds (default 10)")
    def _worker_count(text: str) -> int:
        value = int(text)
        if value < 0:
            raise argparse.ArgumentTypeError("workers must be >= 0")
        return value

    sweep.add_argument(
        "--workers",
        type=_worker_count,
        default=None,
        help="shard the sweep over N worker processes (default 1, 0 = one "
        "per CPU); results are identical for every worker count; with "
        "--spec, overrides the document's worker count",
    )
    sweep.add_argument(
        "--churn",
        action="store_true",
        help="run the adversarial churn extension (random joins/recoveries "
        "racing cascades, epoch-quotiented CD1-CD7)",
    )
    sweep.add_argument(
        "--spec",
        default=None,
        help="run a sweep spec JSON file ('-' for stdin) instead of EXP-C1",
    )
    sweep.add_argument(
        "--faults",
        default=None,
        help="degradation sweep: fault knobs as knob=value pairs where at "
        "least one value is a ':'-separated axis (e.g. "
        "'loss=0:0.02:0.05' or 'duplication=0.1:0.3,copies=3'); runs "
        "the quickstart scenario at every (rate, seed) point and prints "
        "which CD1-CD7 properties failed at which rate and whether the "
        "fault model excuses them",
    )
    _add_spec_flags(sweep)
    sweep.set_defaults(func=_cmd_sweep)

    churn = sub.add_parser(
        "churn", help="dynamic-membership scenarios (joins, recoveries, leaves)"
    )
    churn.add_argument(
        "--scenario",
        choices=["steady", "race", "flash"],
        default="steady",
        help="steady churn sweep, crash-recover-recrash race, or flash-crowd joins",
    )
    churn.add_argument("--nodes", type=int, default=64, help="approximate torus size")
    churn.add_argument(
        "--churn-rate",
        type=float,
        default=0.05,
        dest="churn_rate",
        help="fraction of the population starting a crash-recover cycle per time unit",
    )
    churn.add_argument("--duration", type=float, default=100.0)
    churn.add_argument(
        "--runtime",
        choices=["sim", "asyncio", "asyncio-virtual", "both", "all"],
        default="sim",
        help="engine: deterministic simulator, wall-clock asyncio, "
        "virtual-time asyncio, sim+asyncio ('both'), or all three "
        "('all'); multi-engine runs cross-check decided views",
    )
    # Accept --seed after the subcommand too (it is also a global option);
    # SUPPRESS keeps a pre-subcommand --seed intact when absent here.
    churn.add_argument(
        "--seed", type=int, default=argparse.SUPPRESS, help="deterministic seed"
    )
    churn.add_argument(
        "--faults",
        default=None,
        help="inject deterministic link faults: a preset (lossy, dupes, "
        "jumbled, hostile) or knob=value pairs such as "
        "'loss=0.02,duplication=0.1'; identical across engines for a "
        "given seed",
    )
    _add_spec_flags(churn)
    churn.set_defaults(func=_cmd_churn)

    run = sub.add_parser(
        "run", help="execute a declarative spec document (experiment or sweep)"
    )
    run.add_argument(
        "spec",
        help="path to a spec JSON file, or '-' to read the document from stdin",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="print the machine-readable result as JSON",
    )

    def _partition_count(text: str) -> int:
        value = int(text)
        if value < 1:
            raise argparse.ArgumentTypeError("partitions must be >= 1")
        return value

    run.add_argument(
        "--partitions",
        type=_partition_count,
        default=None,
        help="split the single run across N locality-aware simulator "
        "shards (overrides the document's runtime.partitions); the "
        "merged trace digest is identical for every N",
    )
    run.add_argument(
        "--collection",
        choices=["trace", "digest"],
        default=None,
        help="trace collection mode (overrides the document's "
        "runtime.collection): 'trace' keeps the full columnar event "
        "log, 'digest' streams only the canonical digest + metrics "
        "(implies no CD1-CD7 checking); the digest is bit-identical "
        "either way",
    )
    run.add_argument(
        "--runtime",
        choices=["sim", "asyncio", "asyncio-virtual"],
        default=None,
        help="runtime engine (overrides the document's runtime.engine): "
        "the deterministic simulator, the wall-clock asyncio runtime, "
        "or the same asyncio runtime on the deterministic virtual-time "
        "loop",
    )
    run.add_argument(
        "--faults",
        default=None,
        help="override the document's runtime.faults block: a preset "
        "(lossy, dupes, jumbled, hostile) or comma-separated knob=value "
        "pairs from {loss, duplication, copies, reorder, reorder_rate, "
        "seed}, e.g. 'loss=0.02,reorder=0.5'; every fault decision is "
        "drawn from a per-message keyed RNG, so the run stays "
        "deterministic and digest-stable",
    )
    run.set_defaults(func=_cmd_run)

    report = sub.add_parser("report", help="regenerate every experiment table")
    report.add_argument("--quick", action="store_true")
    report.add_argument("--markdown", action="store_true")
    report.set_defaults(func=_cmd_report)

    # -- experiment service -------------------------------------------
    def _add_server_flag(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--server",
            default=None,
            help="experiment server URL (default: $REPRO_SERVER or "
            "http://127.0.0.1:8787)",
        )

    serve = sub.add_parser(
        "serve",
        help="run the experiment server (submit specs over HTTP, results "
        "cached by spec digest)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8787, help="listen port (0 = ephemeral)"
    )
    serve.add_argument(
        "--root",
        default=".repro-service",
        help="state directory for the job ledger and result store",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="in-process worker threads (0 = remote workers only, "
        "see `repro work`)",
    )
    serve.add_argument("--verbose", action="store_true", help="log HTTP requests")
    serve.add_argument(
        "--store-max-bytes",
        type=int,
        default=None,
        dest="store_max_bytes",
        help="cap the result store at this many bytes; the least-recently-"
        "used entries are evicted (and journaled to evictions.jsonl) "
        "when a write overflows the budget (default: unbounded)",
    )
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a spec document to the experiment server"
    )
    submit.add_argument(
        "spec", help="path to a spec JSON file, or '-' to read from stdin"
    )
    submit.add_argument(
        "--force",
        action="store_true",
        help="bypass the result cache and re-execute even if an identical "
        "submission is already stored",
    )
    submit.add_argument(
        "--wait",
        action="store_true",
        help="follow the job until it finishes instead of returning the id",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, help="--wait timeout (seconds)"
    )
    submit.add_argument("--json", action="store_true", help="print the job as JSON")
    _add_server_flag(submit)
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="poll job state on the experiment server")
    status.add_argument(
        "job", nargs="?", default=None, help="job id (omit to list every job)"
    )
    status.add_argument(
        "--state",
        choices=["queued", "running", "done", "failed"],
        default=None,
        help="when listing, filter by state",
    )
    status.add_argument(
        "--watch",
        action="store_true",
        help="stream progress updates (completed-task counts) until the "
        "job finishes",
    )
    status.add_argument(
        "--timeout", type=float, default=300.0, help="--watch window (seconds)"
    )
    status.add_argument("--json", action="store_true")
    _add_server_flag(status)
    status.set_defaults(func=_cmd_status)

    result = sub.add_parser(
        "result", help="fetch a finished job's digest-verified result"
    )
    result.add_argument("job", help="job id")
    result.add_argument(
        "--wait",
        action="store_true",
        help="if the job is still running, wait for it first",
    )
    result.add_argument(
        "--timeout", type=float, default=600.0, help="--wait timeout (seconds)"
    )
    result.add_argument(
        "--json",
        action="store_true",
        help="print the full {job, spec, envelope} document as JSON",
    )
    _add_server_flag(result)
    result.set_defaults(func=_cmd_result)

    work = sub.add_parser(
        "work",
        help="run a worker against a (possibly remote) experiment server",
    )
    work.add_argument("--name", default="worker", help="reported worker name")
    work.add_argument(
        "--drain",
        action="store_true",
        help="exit when the queue is empty instead of polling forever",
    )
    work.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        dest="poll_interval",
        help="seconds between claims when the queue is empty",
    )
    work.add_argument(
        "--timeout", type=float, default=60.0, help="per-request HTTP timeout"
    )
    work.add_argument(
        "--processes",
        type=int,
        default=0,
        help="run up to N jobs concurrently in a local process pool "
        "(0 = inline in this process); results are digest-identical "
        "either way",
    )
    _add_server_flag(work)
    work.set_defaults(func=_cmd_work)

    return parser


def main(argv: Sequence[str] | None = None, write: Callable[[str], object] = print) -> int:
    """Entry point used by ``python -m repro`` and the ``repro`` script."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else sys.argv[1:])
    return args.func(args, write)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    raise SystemExit(main())
