"""Deterministic per-run seed derivation.

A sharded sweep must produce *identical* runs no matter how the tasks are
distributed over workers.  Per-run seeds therefore cannot come from any
shared mutable RNG — they are derived purely from the sweep's base seed
and the task's identity (submission index + family + parameters), through
SHA-256, so:

* ``workers=1`` and ``workers=N`` hand every run the same seed;
* two different tasks in one sweep get statistically independent seeds;
* reordering unrelated tasks does not change an individual task's seed
  stream only when the caller pins seeds explicitly (the index is part of
  the derivation otherwise, which is what sweeps over ``range(n)`` want).
"""

from __future__ import annotations

import hashlib
from typing import Any

from ..trace.digest import canonical_text

#: Seeds are reduced into this many bits (fits ``random.Random`` nicely).
SEED_BITS = 63


def derive_seed(base_seed: int, *components: Any) -> int:
    """A deterministic ``SEED_BITS``-bit seed from a base seed and labels.

    ``components`` may be any canonically encodable values (ints, strings,
    mappings of parameters...); the derivation is independent of the
    process's hash seed, so parent and workers agree on it by
    construction.
    """
    hasher = hashlib.sha256()
    hasher.update(canonical_text(base_seed).encode("utf-8"))
    for component in components:
        hasher.update(b"\x1f")
        hasher.update(canonical_text(component).encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big") >> (64 - SEED_BITS)
