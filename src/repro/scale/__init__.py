"""The scale subsystem: sharded multi-core sweep execution.

``repro.scale`` is the foundation for every workload too large for one
core: it fans independent (scenario × seed × topology) simulation runs
across a process pool with deterministic per-run seeding and merges the
results into an order-stable, digest-verifiable report.

* :mod:`repro.scale.task` — picklable task/outcome records and errors;
* :mod:`repro.scale.seeding` — hash-seed-independent seed derivation;
* :mod:`repro.scale.families` — the named scenario-family registry
  (EXP-C1 property cases, adversarial churn cases, churn scenarios, the
  large-torus block family) plus task-list builders;
* :mod:`repro.scale.sweep` — :class:`ShardedSweepRunner` itself.

Determinism contract: a sweep's outcome — every run's canonical trace
digest and the merged report digest — is a pure function of
``(tasks, base_seed)`` and is *independent of the worker count*.  The
determinism regression suite (``tests/integration``) holds the project to
this.
"""

from .families import (
    FamilyFn,
    churn_property_tasks,
    family_names,
    get_family,
    outcome_from_result,
    property_tasks,
    register_family,
    run_task,
    torus_scale_tasks,
    unregister_family,
)
from .seeding import derive_seed
from .sweep import ShardedSweepRunner, SweepReport, resolve_workers
from .task import (
    SweepError,
    SweepOutcome,
    SweepTask,
    SweepTaskError,
    UnknownFamilyError,
)

__all__ = [
    "ShardedSweepRunner",
    "SweepReport",
    "SweepTask",
    "SweepOutcome",
    "SweepError",
    "SweepTaskError",
    "UnknownFamilyError",
    "FamilyFn",
    "register_family",
    "unregister_family",
    "get_family",
    "family_names",
    "run_task",
    "outcome_from_result",
    "property_tasks",
    "churn_property_tasks",
    "torus_scale_tasks",
    "derive_seed",
    "resolve_workers",
]
