"""The scale subsystem: sharded multi-core sweep execution.

``repro.scale`` is the foundation for every workload too large for one
core: it fans independent (scenario × seed × topology) simulation runs
across a process pool with deterministic per-run seeding and merges the
results into an order-stable, digest-verifiable report.

* :mod:`repro.scale.task` — picklable task/outcome records and errors;
* :mod:`repro.scale.seeding` — hash-seed-independent seed derivation;
* :mod:`repro.scale.families` — the named scenario-family registry
  (EXP-C1 property cases, adversarial churn cases, churn scenarios, the
  large-torus block family) plus task-list builders;
* :mod:`repro.scale.sweep` — :class:`ShardedSweepRunner` itself.

Determinism invariants:

* a sweep's outcome — every run's canonical trace digest and the merged
  report digest — is a pure function of ``(tasks, base_seed)`` and is
  *independent of the worker count*: per-run seeds derive from
  ``(base_seed, submission index, family, params)`` through SHA-256
  before any work is distributed, and results merge in submission order
  no matter which worker finishes first;
* tasks cross process boundaries as *data* (family name + params, or a
  serialized spec), never as live objects, so a worker rebuilds each
  scenario from scratch and hash-seed differences cannot leak in;
* the engine parallelises *across* runs and composes with the
  partitioned backend (:mod:`repro.sim.partition`), which parallelises
  *inside* one run — a spec with ``runtime.partitions > 1`` inside a
  sweep runs its shards inline on the pool workers (no nested process
  fan-out oversubscribing the host), with an identical digest either
  way.

The determinism regression suite (``tests/integration``) holds the
project to all of this.
"""

from .families import (
    FamilyFn,
    churn_property_tasks,
    family_names,
    get_family,
    outcome_from_result,
    property_tasks,
    register_family,
    run_task,
    torus_scale_tasks,
    unregister_family,
)
from .seeding import derive_seed
from .sweep import ShardedSweepRunner, SweepReport, resolve_workers
from .task import (
    SweepError,
    SweepOutcome,
    SweepTask,
    SweepTaskError,
    UnknownFamilyError,
)

__all__ = [
    "ShardedSweepRunner",
    "SweepReport",
    "SweepTask",
    "SweepOutcome",
    "SweepError",
    "SweepTaskError",
    "UnknownFamilyError",
    "FamilyFn",
    "register_family",
    "unregister_family",
    "get_family",
    "family_names",
    "run_task",
    "outcome_from_result",
    "property_tasks",
    "churn_property_tasks",
    "torus_scale_tasks",
    "derive_seed",
    "resolve_workers",
]
