"""Task and outcome records of the sharded sweep engine.

A :class:`SweepTask` is a *picklable description* of one independent
simulation run — scenario family name plus parameters plus (optionally) a
pinned seed.  Workers never receive live simulators or callbacks: they
receive task descriptions, rebuild the scenario from the family registry,
run it, and send back a compact, picklable :class:`SweepOutcome`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional


class SweepError(RuntimeError):
    """Base class for sharded-sweep failures."""


class UnknownFamilyError(SweepError):
    """A task referenced a scenario family that is not registered."""


class SweepTaskError(SweepError):
    """A task failed inside a worker; wraps the original exception.

    ``task``, ``index`` and ``seed`` (the *effective* per-run seed the
    runner derived) identify the failing run, so a sweep failure is
    immediately reproducible in-process with
    ``run_task(error.task, seed=error.seed)``.
    """

    def __init__(
        self,
        task: "SweepTask",
        index: int,
        reason: str,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(
            f"sweep task #{index} ({task.family!r}, seed={seed if seed is not None else task.seed}) "
            f"failed: {reason}"
        )
        self.task = task
        self.index = index
        self.reason = reason
        #: The effective seed the run executed with (reproduce via
        #: ``run_task(error.task, seed=error.seed)``).
        self.seed = seed if seed is not None else task.seed


@dataclass(frozen=True)
class SweepTask:
    """One independent run of a sweep.

    Attributes
    ----------
    family:
        Name of a registered scenario family (see
        :mod:`repro.scale.families`).
    params:
        Keyword parameters handed to the family builder.  Must be
        picklable and canonically encodable (they feed seed derivation).
    seed:
        Explicit per-run seed; ``None`` derives one deterministically
        from the sweep's base seed and the task's identity.
    label:
        Free-form display label (defaults to ``family``).
    """

    family: str
    params: dict[str, Any] = field(default_factory=dict)
    seed: Optional[int] = None
    label: str = ""

    def display_label(self) -> str:
        return self.label or self.family


@dataclass(frozen=True)
class SweepOutcome:
    """The compact, picklable result of one sweep run.

    Heavy artefacts (traces, simulators) stay in the worker; what crosses
    the process boundary is the deterministic fingerprint (``digest``),
    the specification verdict and the headline metrics.  ``case`` carries
    an optional family-specific record (e.g. a
    :class:`~repro.experiments.property_sweep.SweepCase`).
    """

    family: str
    label: str
    seed: int
    #: Submission index inside the sweep (aggregation is sorted by this).
    index: int
    #: Canonical trace digest of the run (``""`` when a family opts out).
    digest: str
    nodes: int
    messages: int
    decisions: int
    decided_views: int
    quiescent: bool
    spec_holds: bool
    violations: tuple[str, ...] = ()
    #: Wall-clock seconds the run took inside its worker.
    wall_time: float = 0.0
    labels: dict[str, Any] = field(default_factory=dict)
    case: Any = None

    def as_row(self) -> dict[str, Any]:
        """A flat table row (CLI / report rendering)."""
        return {
            "index": self.index,
            "family": self.family,
            "label": self.label,
            "seed": self.seed,
            "nodes": self.nodes,
            "messages": self.messages,
            "decisions": self.decisions,
            "views": self.decided_views,
            "quiescent": self.quiescent,
            "spec_holds": self.spec_holds,
            "digest": self.digest[:12],
        }

    def with_position(self, index: int, wall_time: float) -> "SweepOutcome":
        """The same outcome stamped with its sweep position and timing."""
        return replace(self, index=index, wall_time=wall_time)
