"""The sharded sweep engine.

:class:`ShardedSweepRunner` fans independent (scenario × seed ×
topology) runs across a process pool and merges the outcomes into a
deterministic, order-stable report:

* **Determinism** — every run's seed is derived from the sweep's base
  seed and the task's identity *before* any work is distributed
  (:mod:`repro.scale.seeding`), so ``workers=1`` and ``workers=N``
  execute bit-identical runs; the per-run canonical trace digests (and
  the combined report digest) are equal by construction, and the
  determinism regression suite asserts exactly that.
* **Order stability** — outcomes are merged in submission order no
  matter which worker finishes first.
* **Failure propagation** — an exception inside a worker surfaces in the
  parent as a :class:`~repro.scale.task.SweepTaskError` naming the task,
  index and effective seed (reproducible in-process via
  ``run_task(error.task, seed=error.seed)``); a worker process dying
  outright (``BrokenProcessPool``) is reported the same way, flagged as
  possibly mis-attributed since a dead pool fails every in-flight task.
* **Interrupt hygiene** — Ctrl-C cancels all queued work and tears the
  pool down before re-raising.

``workers<=1`` (or a single-task sweep) bypasses multiprocessing
entirely and runs inline — same seeds, same outcomes, no pool overhead.

The digest-only channel: what crosses the pool boundary is a
:class:`~repro.scale.task.SweepOutcome` — the run's canonical digest
plus scalar metrics, never the trace.  A spec-mode task whose
experiment sets ``runtime.collection="digest"`` goes further: the
worker itself never materialises an event log (the recorder streams the
digest and metrics as events fire — see :mod:`repro.trace`), so sweep
memory stays flat in trace length while every digest remains
bit-identical to a full-trace run.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable, Optional, Sequence

from ..trace.digest import combine_digests
from .families import get_family, run_task
from .seeding import derive_seed
from .task import SweepOutcome, SweepTask, SweepTaskError


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count request (``None``/``0`` → CPU count)."""
    if workers is None or workers == 0:
        return max(os.cpu_count() or 1, 1)
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _mp_context():
    """Prefer ``fork`` where available: workers inherit the family
    registry (including dynamically registered families) and start in
    milliseconds; elsewhere fall back to the platform default."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _execute_indexed(task: SweepTask, index: int, seed: int) -> SweepOutcome:
    """Worker entry point: run one task and stamp its sweep position.

    ``run_task`` already timed the execution; only the index is added.
    """
    outcome = run_task(task, seed=seed)
    return outcome.with_position(index, outcome.wall_time)


@dataclass(frozen=True)
class SweepReport:
    """Merged, order-stable result of a sharded sweep.

    Implements the unified :class:`repro.api.Result` protocol alongside
    :class:`~repro.experiments.runner.RunResult` and
    :class:`~repro.churn.runner.ChurnRunResult`: ``digest()``,
    ``check_specification()``, ``summary()`` and ``as_dict()``.
    """

    outcomes: tuple[SweepOutcome, ...]
    workers: int
    base_seed: int
    #: Wall-clock seconds of the whole sweep (parent-side, incl. merge).
    wall_time: float
    labels: dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.outcomes)

    def digest(self) -> str:
        """Order-sensitive combination of the per-run digests.

        Equal across worker counts iff every run's trace and the merge
        order are identical — the sweep engine's determinism contract in
        one hex string.
        """
        return combine_digests(outcome.digest for outcome in self.outcomes)

    @property
    def all_hold(self) -> bool:
        """True when every run satisfied its specification."""
        return all(outcome.spec_holds for outcome in self.outcomes)

    @property
    def all_quiescent(self) -> bool:
        return all(outcome.quiescent for outcome in self.outcomes)

    @property
    def violating(self) -> tuple[SweepOutcome, ...]:
        return tuple(o for o in self.outcomes if not o.spec_holds)

    @property
    def total_messages(self) -> int:
        return sum(o.messages for o in self.outcomes)

    @property
    def total_decisions(self) -> int:
        return sum(o.decisions for o in self.outcomes)

    @property
    def worker_time(self) -> float:
        """Sum of per-run wall times (the work actually parallelised)."""
        return sum(o.wall_time for o in self.outcomes)

    def cases(self) -> list[Any]:
        """The family-specific case records, in submission order."""
        return [o.case for o in self.outcomes if o.case is not None]

    def as_rows(self) -> list[dict[str, Any]]:
        return [o.as_row() for o in self.outcomes]

    def check_specification(self):
        """The sweep-level specification verdict.

        Per-run CD1–CD7 checks ran inside the workers; this aggregates
        their verdicts (see
        :class:`~repro.api.result.AggregateSpecification`).
        """
        from ..api.result import AggregateSpecification

        violations = tuple(
            f"run #{outcome.index} ({outcome.label}, seed={outcome.seed}): {violation}"
            for outcome in self.outcomes
            for violation in outcome.violations
        )
        return AggregateSpecification(
            holds=self.all_hold,
            checked_runs=len(self.outcomes),
            violation_list=violations,
        )

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable report (the CLI's ``--json`` payload)."""
        from ..api.result import json_safe

        return {
            "type": "sweep",
            "workers": self.workers,
            "base_seed": self.base_seed,
            "digest": self.digest(),
            "summary": self.summary(),
            "runs": [
                dict(
                    outcome.as_row(),
                    digest=outcome.digest,
                    wall_time=outcome.wall_time,
                    violations=list(outcome.violations),
                    # Extractor rows (locality cost points, repair
                    # verdicts) ride along only when the run's spec
                    # carried an extract block — absent otherwise, so
                    # pre-extractor payload shapes are unchanged.
                    **(
                        {"extract": json_safe(outcome.labels["extract"])}
                        if "extract" in outcome.labels
                        else {}
                    ),
                )
                for outcome in self.outcomes
            ],
            "labels": json_safe(self.labels),
        }

    def summary(self) -> dict[str, Any]:
        return {
            "runs": len(self.outcomes),
            "workers": self.workers,
            "all_hold": self.all_hold,
            "all_quiescent": self.all_quiescent,
            "total_messages": self.total_messages,
            "total_decisions": self.total_decisions,
            "wall_time": self.wall_time,
            "worker_time": self.worker_time,
            "digest": self.digest(),
            "violating_indices": [o.index for o in self.violating],
        }


class ShardedSweepRunner:
    """Fan independent simulation runs across a process pool.

    Parameters
    ----------
    workers:
        Pool size; ``None``/``0`` means one worker per CPU, ``1`` runs
        inline without a pool (the single-worker fallback path).
    base_seed:
        Root of the deterministic per-run seed derivation.
    """

    def __init__(self, workers: Optional[int] = None, base_seed: int = 0) -> None:
        self.workers = resolve_workers(workers)
        self.base_seed = base_seed

    # ------------------------------------------------------------------
    def seed_for(self, task: SweepTask, index: int) -> int:
        """The seed a task at ``index`` will run with (pure function)."""
        if task.seed is not None:
            return task.seed
        return derive_seed(self.base_seed, index, task.family, task.params)

    def run(
        self,
        tasks: Iterable[SweepTask],
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> SweepReport:
        """Execute every task and merge outcomes in submission order.

        ``progress`` (optional) is called as ``progress(done, total)``
        each time a task completes — inline after each run, pooled from a
        completion callback (so it may fire from a pool-management
        thread).  It observes timing only; results, seeds and digests are
        identical with or without it.
        """
        task_list = list(tasks)
        started = perf_counter()
        # Fail fast on unknown families *before* spinning up a pool.
        for task in task_list:
            get_family(task.family)
        seeds = [self.seed_for(task, index) for index, task in enumerate(task_list)]
        if not task_list:
            return SweepReport(
                outcomes=(),
                workers=self.workers,
                base_seed=self.base_seed,
                wall_time=perf_counter() - started,
            )
        if self.workers <= 1 or len(task_list) == 1:
            outcomes = self._run_inline(task_list, seeds, progress)
        else:
            outcomes = self._run_pooled(task_list, seeds, progress)
        return SweepReport(
            outcomes=tuple(outcomes),
            workers=self.workers,
            base_seed=self.base_seed,
            wall_time=perf_counter() - started,
        )

    # ------------------------------------------------------------------
    def _run_inline(
        self,
        tasks: Sequence[SweepTask],
        seeds: Sequence[int],
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> list[SweepOutcome]:
        """The single-worker fallback: same seeds, no pool."""
        outcomes = []
        total = len(tasks)
        for index, (task, seed) in enumerate(zip(tasks, seeds)):
            try:
                outcomes.append(_execute_indexed(task, index, seed))
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as exc:
                raise SweepTaskError(task, index, repr(exc), seed=seed) from exc
            if progress is not None:
                progress(index + 1, total)
        return outcomes

    def _make_executor(self) -> ProcessPoolExecutor:
        """Build the pool (overridable seam for the interrupt tests)."""
        return ProcessPoolExecutor(
            max_workers=self.workers, mp_context=_mp_context()
        )

    def _run_pooled(
        self,
        tasks: Sequence[SweepTask],
        seeds: Sequence[int],
        progress: Optional[Callable[[int, int], None]] = None,
    ) -> list[SweepOutcome]:
        executor = self._make_executor()
        futures = {}
        wait_on_exit = True
        total = len(tasks)
        if progress is not None:
            import threading

            completed = [0]
            progress_lock = threading.Lock()

            def _tick(_future) -> None:
                # Fires on the pool's completion thread; count every
                # settled future (cancelled/failed included) so the
                # denominator stays honest even on error paths.
                with progress_lock:
                    completed[0] += 1
                    done_now = completed[0]
                progress(done_now, total)

        try:
            for index, (task, seed) in enumerate(zip(tasks, seeds)):
                future = executor.submit(_execute_indexed, task, index, seed)
                if progress is not None:
                    future.add_done_callback(_tick)
                futures[future] = index
            # Wait for everything, stopping at the first failure so a
            # crashed worker does not stall the sweep behind queued work.
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            by_index: dict[int, SweepOutcome] = {}
            failures: list[tuple[int, BaseException]] = []
            for future in done:
                index = futures[future]
                exc = future.exception()
                if exc is not None:
                    failures.append((index, exc))
                    continue
                outcome = future.result()
                by_index[index] = outcome
            if failures:
                for future in not_done:
                    future.cancel()
                # A dead worker delivers BrokenProcessPool to *every*
                # in-flight future, innocent tasks included; a pickled
                # in-task exception identifies the culprit precisely, so
                # prefer it when both kinds are present.
                precise = [
                    f for f in failures if not isinstance(f[1], BrokenProcessPool)
                ]
                if precise:
                    index, exc = min(precise, key=lambda f: f[0])
                    reason = repr(exc)
                else:
                    index, exc = min(failures, key=lambda f: f[0])
                    reason = (
                        "worker process died (BrokenProcessPool); the crash may "
                        "belong to any task that was in flight, this is merely "
                        "the lowest-indexed one"
                    )
                raise SweepTaskError(
                    tasks[index], index, reason, seed=seeds[index]
                ) from exc
            # Completion order is whatever the pool produced; the merge
            # is by submission index, which makes aggregation
            # order-stable by construction.
            return [by_index[index] for index in range(len(tasks))]
        except (KeyboardInterrupt, SystemExit):
            # Do not block the interrupt on stragglers: cancel queued
            # work and abandon the pool (workers get SIGINT too).
            wait_on_exit = False
            raise
        finally:
            executor.shutdown(wait=wait_on_exit, cancel_futures=True)
