"""The scenario-family registry of the sharded sweep engine.

A *family* is a named, picklable-parameterised builder that turns
``(seed, **params)`` into one executed run and returns a compact
:class:`~repro.scale.task.SweepOutcome`.  Workers resolve families by
name, so a :class:`~repro.scale.task.SweepTask` crossing a process
boundary never carries live objects.

Built-in families:

* ``spec`` — the generic declarative family: ``params["spec"]`` is a
  serialized :class:`~repro.api.ExperimentSpec`, executed through
  :class:`~repro.api.ExperimentSession` (topology builds go through the
  spec-keyed cache, shared by tasks landing on the same worker).  Tasks
  cross the process boundary *as specs*, not as registered names — this
  is what :meth:`repro.api.SweepSpec.tasks` produces;
* ``property`` — one EXP-C1 randomised topology × crash-schedule case;
* ``churn-property`` — the adversarial churn extension of EXP-C1
  (random joins/recoveries racing cascades, epoch-quotiented CD1–CD7);
* ``churn-scenario`` — the PR-1 churn scenario family (steady / race /
  flash crowd) at a parameterised size;
* ``torus-block`` — a square block crash on an ``side×side`` torus (the
  large-torus scale family; ``side=64`` is the 4096-node workload).
  Backed by the spec layer, so repeated builds of the same big torus hit
  the topology cache.

Imports of the experiment harness happen lazily inside the family
functions: :mod:`repro.experiments` itself uses the sweep runner, and the
registry must stay importable from both directions.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterator, Optional

from .seeding import derive_seed
from .task import SweepOutcome, SweepTask, UnknownFamilyError

FamilyFn = Callable[..., SweepOutcome]

_REGISTRY: dict[str, FamilyFn] = {}


def register_family(name: str, fn: FamilyFn) -> None:
    """Register (or replace) a scenario family under ``name``."""
    _REGISTRY[name] = fn


def unregister_family(name: str) -> None:
    """Remove a family (used by tests registering throwaway families)."""
    _REGISTRY.pop(name, None)


def family_names() -> tuple[str, ...]:
    """All registered family names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_family(name: str) -> FamilyFn:
    """Look up a family; raises :class:`UnknownFamilyError` when absent."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownFamilyError(
            f"unknown scenario family {name!r}; registered: {', '.join(family_names())}"
        ) from None


def run_task(task: SweepTask, seed: Optional[int] = None) -> SweepOutcome:
    """Execute one task in the current process (workers call this).

    ``seed`` overrides the task's own seed (the runner passes the derived
    per-run seed); the outcome is stamped with its wall-clock cost but
    not with its sweep index — the runner does that on merge.
    """
    family = get_family(task.family)
    effective_seed = seed if seed is not None else task.seed
    if effective_seed is None:
        effective_seed = derive_seed(0, task.family, task.params)
    started = time.perf_counter()
    outcome = family(effective_seed, **task.params)
    elapsed = time.perf_counter() - started
    return outcome.with_position(outcome.index, elapsed)


# ---------------------------------------------------------------------------
# Built-in families
# ---------------------------------------------------------------------------
def outcome_from_result(
    family: str,
    label: str,
    seed: int,
    result: Any,
    extra_labels: Optional[dict[str, Any]] = None,
) -> SweepOutcome:
    """Compress any run-layer :class:`~repro.api.Result` into an outcome.

    Works for both :class:`~repro.experiments.runner.RunResult` and
    :class:`~repro.churn.runner.ChurnRunResult` — the unified result
    surface (``quiescent``, ``metrics``, ``specification``, ``digest``)
    is all it needs.
    """
    specification = getattr(result, "specification", None)
    labels = dict(result.labels)
    if extra_labels:
        labels.update(extra_labels)
    return SweepOutcome(
        family=family,
        label=label,
        seed=seed,
        index=-1,
        digest=result.digest(),
        nodes=len(result.graph),
        messages=result.metrics.messages_sent,
        decisions=result.metrics.decisions,
        decided_views=result.metrics.decided_views,
        quiescent=result.quiescent,
        spec_holds=specification.holds if specification is not None else True,
        violations=(
            tuple(specification.violations()) if specification is not None else ()
        ),
        labels=labels,
    )


def _spec_family(seed: int, spec: dict[str, Any]) -> SweepOutcome:
    """One run of a serialized :class:`~repro.api.ExperimentSpec`.

    The runner-derived (or task-pinned) ``seed`` overrides the spec's own
    seed, so a spec template swept over many seeds stays one spec.
    """
    from ..api import ExperimentSession, ExperimentSpec

    experiment = ExperimentSpec.from_dict(spec).with_seed(seed)
    result = ExperimentSession().run(experiment)
    return outcome_from_result("spec", experiment.display_name(), seed, result)


def _property_family(seed: int) -> SweepOutcome:
    """One EXP-C1 case (static topology + crash schedule)."""
    from ..experiments.property_sweep import run_sweep_case

    case = run_sweep_case(seed)
    return SweepOutcome(
        family="property",
        label=case.topology,
        seed=seed,
        index=-1,
        digest=case.digest,
        nodes=case.nodes,
        messages=case.messages,
        decisions=case.decisions,
        decided_views=case.decided_views,
        quiescent=case.quiescent,
        spec_holds=case.specification_holds,
        violations=case.violations,
        labels={"topology": case.topology, "crashed": case.crashed},
        case=case,
    )


def _churn_property_family(seed: int) -> SweepOutcome:
    """One adversarial churn case (joins/recoveries racing cascades)."""
    from ..experiments.property_sweep import run_churn_sweep_case

    case = run_churn_sweep_case(seed)
    return SweepOutcome(
        family="churn-property",
        label=case.topology,
        seed=seed,
        index=-1,
        digest=case.digest,
        nodes=case.nodes,
        messages=case.messages,
        decisions=case.decisions,
        decided_views=case.decided_views,
        quiescent=case.quiescent,
        spec_holds=case.specification_holds,
        violations=case.violations,
        labels={
            "topology": case.topology,
            "crashed": case.crashed,
            "joins": case.joins,
            "recoveries": case.recoveries,
            "epochs": case.epochs,
        },
        case=case,
    )


def _churn_scenario_family(
    seed: int,
    scenario: str = "steady",
    nodes: int = 64,
    **scenario_params: Any,
) -> SweepOutcome:
    """One run of the PR-1 churn scenario family on the simulator."""
    from ..experiments.scenarios import (
        churn_flash_crowd_scenario,
        churn_recovery_race_scenario,
        churn_steady_scenario,
    )

    builders = {
        "steady": churn_steady_scenario,
        "race": churn_recovery_race_scenario,
        "flash": churn_flash_crowd_scenario,
    }
    try:
        builder = builders[scenario]
    except KeyError:
        raise UnknownFamilyError(
            f"unknown churn scenario {scenario!r}; expected one of {sorted(builders)}"
        ) from None
    built = builder(nodes=nodes, seed=seed, **scenario_params)
    result = built.run(check=True, seed=seed, runtime="sim")
    specification = result.specification
    return SweepOutcome(
        family="churn-scenario",
        label=built.name,
        seed=seed,
        index=-1,
        digest=result.digest(),
        nodes=len(result.base_graph),
        messages=result.metrics.messages_sent,
        decisions=result.metrics.decisions,
        decided_views=result.metrics.decided_views,
        quiescent=result.quiescent,
        spec_holds=specification.holds if specification is not None else True,
        violations=(
            tuple(specification.violations()) if specification is not None else ()
        ),
        labels=dict(result.labels, epochs=len(result.epochs)),
    )


def _torus_block_family(
    seed: int,
    side: int = 32,
    block_side: int = 2,
    origin: tuple[int, int] = (1, 1),
    at: float = 1.0,
    check: bool = True,
) -> SweepOutcome:
    """A square block crash on a ``side×side`` torus (scale workload).

    Implemented through the spec layer: the block is computed without
    touching the graph, and the ``side×side`` torus build goes through
    the spec-keyed topology cache — tasks of the same family landing on
    the same worker rebuild it zero times instead of once each (the
    ROADMAP's "caching repeated topology builds" item).
    """
    from ..api import (
        ExperimentSession,
        ExperimentSpec,
        FailureSpec,
        SpecError,
        TopologySpec,
    )

    from ..experiments.scenarios import torus_block_members

    if side < 3:
        raise SpecError("torus side must be at least 3")
    if not (1 <= block_side < side - 1):
        raise SpecError("block must be smaller than the torus")
    ox, oy = tuple(origin)
    block = sorted(torus_block_members(side, block_side, (ox, oy)))
    name = f"torus{side}x{side}-block{block_side}@{(ox % side, oy % side)}"
    spec = ExperimentSpec(
        name=name,
        topology=TopologySpec("torus", {"width": side, "height": side}),
        failure=FailureSpec("region", {"members": block, "at": at}),
        seed=seed,
        check=check,
        labels={
            "side": side,
            "nodes": side * side,
            "block_side": block_side,
            "origin": (ox % side, oy % side),
        },
    )
    result = ExperimentSession().run(spec)
    return outcome_from_result("torus-block", name, seed, result)


register_family("spec", _spec_family)
register_family("property", _property_family)
register_family("churn-property", _churn_property_family)
register_family("churn-scenario", _churn_scenario_family)
register_family("torus-block", _torus_block_family)


# ---------------------------------------------------------------------------
# Task-list builders
# ---------------------------------------------------------------------------
def property_tasks(seeds: Iterator[int] | range | tuple[int, ...]) -> list[SweepTask]:
    """EXP-C1 tasks, one per seed."""
    return [SweepTask("property", seed=seed) for seed in seeds]


def churn_property_tasks(
    seeds: Iterator[int] | range | tuple[int, ...]
) -> list[SweepTask]:
    """Adversarial churn EXP-C1 tasks, one per seed."""
    return [SweepTask("churn-property", seed=seed) for seed in seeds]


def torus_scale_tasks(
    side: int = 32,
    scenarios: int = 8,
    block_side: int = 2,
    check: bool = True,
) -> list[SweepTask]:
    """The large-torus scale family as sweep tasks (``side=64`` → 4096
    nodes).  Block placement is delegated to
    :func:`repro.experiments.scenarios.torus_scale_family` — the single
    source of truth for the family — so the sharded sweep and the
    in-process scenario list always describe the same workload.
    """
    from ..experiments.scenarios import torus_scale_family

    family = torus_scale_family(side=side, scenarios=scenarios, block_side=block_side)
    return [
        SweepTask(
            "torus-block",
            params={
                "side": side,
                "block_side": block_side,
                "origin": scenario.labels["origin"],
                "check": check,
            },
            label=scenario.name,
        )
        for scenario in family
    ]
