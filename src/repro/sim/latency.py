"""Message latency models for the discrete-event simulator.

The paper's channels are asynchronous (no bound on delivery time) but
reliable and FIFO.  The simulator lets experiments pick how adversarial the
asynchrony is: constant latency for fully deterministic runs, seeded
uniform/exponential jitter for stress runs, and a per-pair model for
topology-aware delays.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol

from ..graph import NodeId


class LatencyModel(Protocol):
    """Returns the network delay for a message from ``source`` to ``target``."""

    def sample(self, source: NodeId, target: NodeId, rng: random.Random) -> float:
        ...


@dataclass(frozen=True)
class ConstantLatency:
    """Every message takes exactly ``delay`` time units."""

    delay: float = 1.0

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise ValueError("latency must be positive")

    def sample(self, source: NodeId, target: NodeId, rng: random.Random) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency:
    """Latency drawn uniformly from ``[low, high]``."""

    low: float = 0.5
    high: float = 1.5

    def __post_init__(self) -> None:
        if self.low <= 0 or self.high < self.low:
            raise ValueError("need 0 < low <= high")

    def sample(self, source: NodeId, target: NodeId, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class ExponentialLatency:
    """Heavy-ish tailed latency: ``base + Exp(mean)`` jitter."""

    base: float = 0.1
    mean: float = 1.0

    def __post_init__(self) -> None:
        if self.base < 0 or self.mean <= 0:
            raise ValueError("need base >= 0 and mean > 0")

    def sample(self, source: NodeId, target: NodeId, rng: random.Random) -> float:
        return self.base + rng.expovariate(1.0 / self.mean)


@dataclass(frozen=True)
class PerPairLatency:
    """Fixed latency per ordered node pair, with a default for the rest.

    Handy for building adversarial schedules (e.g. make ``madrid`` slow to
    hear from ``berlin`` in the Fig. 1b scenario).
    """

    pairs: tuple[tuple[tuple[NodeId, NodeId], float], ...]
    default: float = 1.0

    def sample(self, source: NodeId, target: NodeId, rng: random.Random) -> float:
        for (pair_source, pair_target), delay in self.pairs:
            if pair_source == source and pair_target == target:
                return delay
        return self.default

    @classmethod
    def from_dict(
        cls, pairs: dict[tuple[NodeId, NodeId], float], default: float = 1.0
    ) -> "PerPairLatency":
        return cls(tuple(pairs.items()), default)
