"""The deterministic discrete-event simulator.

:class:`Simulator` ties together the knowledge graph, the per-node
processes, reliable FIFO channels with a pluggable latency model, a crash
schedule, and a perfect failure detector.  Every observable action is
recorded into a :class:`~repro.trace.recorder.TraceRecorder` so that
property checkers and metrics can be computed after the run.

Model guarantees (matching §2.2 of the paper):

* channels are reliable and FIFO between every ordered pair of nodes;
* nodes are asynchronous — there is no bound on relative speeds, modelled
  here by the latency model's jitter;
* a crashed node stops executing instantly: its handlers are never invoked
  again, it sends nothing, and messages addressed to it are dropped;
* the failure detector is perfect (strong accuracy + strong completeness),
  with a configurable notification-delay policy.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from typing import Any, Optional

from ..graph import KnowledgeGraph, NodeId
from ..trace import TraceRecorder
from .events import EventKind
from .failure_detector import FailureDetectorPolicy, PerfectFailureDetector
from .latency import ConstantLatency, LatencyModel
from .process import Process, ProcessContext
from .scheduler import EventScheduler

#: Minimal spacing between two deliveries on the same FIFO channel; keeps
#: delivery order equal to send order even under jittered latencies.
_FIFO_EPSILON = 1e-9

#: Default safety valve for :meth:`Simulator.run` — far above anything the
#: experiments need, but low enough to abort a livelocked run quickly.
DEFAULT_MAX_EVENTS = 5_000_000


class SimulationError(RuntimeError):
    """Raised on simulator misuse (unknown nodes, missing processes, ...)."""


class _SimContext:
    """The :class:`ProcessContext` handed to processes by the simulator."""

    __slots__ = ("_sim", "node_id")

    def __init__(self, sim: "Simulator", node_id: NodeId) -> None:
        self._sim = sim
        self.node_id = node_id

    @property
    def graph(self) -> KnowledgeGraph:
        return self._sim.graph

    def now(self) -> float:
        return self._sim.now

    def send(self, target: NodeId, message: Any) -> None:
        self._sim._send(self.node_id, target, message)

    def multicast(self, targets: Iterable[NodeId], message: Any) -> None:
        # The paper's best-effort multicast: a plain loop of sends.
        for target in targets:
            self._sim._send(self.node_id, target, message)

    def monitor_crash(self, targets: Iterable[NodeId]) -> None:
        self._sim._monitor(self.node_id, targets)

    def set_timer(self, delay: float, tag: Any = None) -> None:
        self._sim._set_timer(self.node_id, delay, tag)

    def record(
        self,
        kind: EventKind,
        payload: Any = None,
        peer: NodeId | None = None,
        **detail: Any,
    ) -> None:
        self._sim.trace.emit(
            self._sim.now, kind, node=self.node_id, peer=peer, payload=payload, **detail
        )


class Simulator:
    """Discrete-event execution of processes on a knowledge graph.

    Parameters
    ----------
    graph:
        The static knowledge graph ``G``.
    latency:
        Latency model for point-to-point messages.
    failure_detector:
        Notification-delay policy of the perfect failure detector.
    seed:
        Seed for all randomness (latency jitter, detector jitter).
    trace:
        Optional pre-existing recorder; a fresh one is created otherwise.
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        latency: LatencyModel | None = None,
        failure_detector: FailureDetectorPolicy | None = None,
        seed: int = 0,
        trace: TraceRecorder | None = None,
    ) -> None:
        self.graph = graph
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.failure_detector = (
            failure_detector if failure_detector is not None else PerfectFailureDetector(1.0)
        )
        self.trace = trace if trace is not None else TraceRecorder()
        self._rng = random.Random(seed)
        self._scheduler = EventScheduler()
        self._processes: dict[NodeId, Process] = {}
        self._contexts: dict[NodeId, _SimContext] = {}
        self._crashed: set[NodeId] = set()
        self._crash_times: dict[NodeId, float] = {}
        self._subscriptions: dict[NodeId, set[NodeId]] = {}
        self._notification_scheduled: set[tuple[NodeId, NodeId]] = set()
        self._channel_clock: dict[tuple[NodeId, NodeId], float] = {}
        self._started = False

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_process(self, node_id: NodeId, process: Process) -> None:
        """Install the behaviour of one node."""
        if node_id not in self.graph:
            raise SimulationError(f"node {node_id!r} is not in the graph")
        if self._started:
            raise SimulationError("cannot add processes after start()")
        self._processes[node_id] = process
        self._contexts[node_id] = _SimContext(self, node_id)

    def populate(self, factory: Callable[[NodeId], Process]) -> None:
        """Install ``factory(node)`` on every graph node lacking a process."""
        for node in self.graph.nodes:
            if node not in self._processes:
                self.add_process(node, factory(node))

    def process(self, node_id: NodeId) -> Process:
        """The process installed at ``node_id`` (for inspection in tests)."""
        try:
            return self._processes[node_id]
        except KeyError:
            raise SimulationError(f"no process installed at {node_id!r}") from None

    def schedule_crash(self, node: NodeId, time: float) -> None:
        """Crash ``node`` at absolute simulated time ``time``."""
        if node not in self.graph:
            raise SimulationError(f"node {node!r} is not in the graph")
        self._scheduler.schedule_at(time, lambda: self._crash(node))

    def schedule_crashes(self, crashes: Iterable[tuple[NodeId, float]]) -> None:
        """Schedule many ``(node, time)`` crashes."""
        for node, time in crashes:
            self.schedule_crash(node, time)

    def schedule_call(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule an arbitrary callback (used by scenario scripts)."""
        self._scheduler.schedule_at(time, callback)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._scheduler.now

    @property
    def crashed_nodes(self) -> frozenset[NodeId]:
        """Nodes that have crashed so far."""
        return frozenset(self._crashed)

    def is_crashed(self, node: NodeId) -> bool:
        return node in self._crashed

    def crash_time(self, node: NodeId) -> Optional[float]:
        """When ``node`` crashed, or ``None`` if it has not."""
        return self._crash_times.get(node)

    def start(self) -> None:
        """Deliver the ``init`` event to every process at time 0."""
        if self._started:
            raise SimulationError("start() called twice")
        missing = self.graph.nodes - self._processes.keys()
        if missing:
            raise SimulationError(
                f"{len(missing)} graph nodes have no process installed; "
                "call populate() or add_process() for every node"
            )
        self._started = True
        for node in sorted(self._processes, key=repr):
            context = self._contexts[node]
            self.trace.emit(self.now, EventKind.NODE_STARTED, node=node)
            self._processes[node].on_start(context)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> float:
        """Run the simulation; starts it first if necessary.

        Returns the simulated time at which the run stopped (queue drained,
        ``until`` reached, or ``max_events`` executed).
        """
        if not self._started:
            self.start()
        return self._scheduler.run(until=until, max_events=max_events)

    def is_quiescent(self) -> bool:
        """True when no further event can occur."""
        return self._scheduler.is_idle()

    @property
    def processed_events(self) -> int:
        return self._scheduler.processed_events

    # ------------------------------------------------------------------
    # Internal mechanics
    # ------------------------------------------------------------------
    def _send(self, source: NodeId, target: NodeId, message: Any) -> None:
        if target not in self.graph:
            raise SimulationError(f"message addressed to unknown node {target!r}")
        if source in self._crashed:
            # A crashed node cannot send; this only happens if a handler
            # crashed its own node mid-event, which the model forbids.
            return
        self.trace.emit(
            self.now, EventKind.MESSAGE_SENT, node=source, peer=target, payload=message
        )
        delay = self.latency.sample(source, target, self._rng)
        if delay <= 0:
            raise SimulationError("latency model produced a non-positive delay")
        channel = (source, target)
        earliest = self._channel_clock.get(channel, 0.0) + _FIFO_EPSILON
        delivery_time = max(self.now + delay, earliest)
        self._channel_clock[channel] = delivery_time
        self._scheduler.schedule_at(
            delivery_time, lambda: self._deliver(source, target, message)
        )

    def _deliver(self, source: NodeId, target: NodeId, message: Any) -> None:
        if target in self._crashed:
            self.trace.emit(
                self.now,
                EventKind.MESSAGE_DROPPED,
                node=target,
                peer=source,
                payload=message,
            )
            return
        self.trace.emit(
            self.now,
            EventKind.MESSAGE_DELIVERED,
            node=target,
            peer=source,
            payload=message,
        )
        self._processes[target].on_message(self._contexts[target], source, message)

    def _monitor(self, subscriber: NodeId, targets: Iterable[NodeId]) -> None:
        target_list = [t for t in targets]
        for target in target_list:
            if target not in self.graph:
                raise SimulationError(f"cannot monitor unknown node {target!r}")
        if not target_list:
            return
        self.trace.emit(
            self.now,
            EventKind.CRASH_MONITORED,
            node=subscriber,
            payload=tuple(sorted(map(repr, target_list))),
        )
        for target in target_list:
            self._subscriptions.setdefault(target, set()).add(subscriber)
            if target in self._crashed:
                self._schedule_notification(subscriber, target)

    def _schedule_notification(self, subscriber: NodeId, crashed: NodeId) -> None:
        key = (subscriber, crashed)
        if key in self._notification_scheduled:
            return
        self._notification_scheduled.add(key)
        delay = self.failure_detector.delay(subscriber, crashed, self._rng)
        if delay < 0:
            raise SimulationError("failure detector produced a negative delay")
        self._scheduler.schedule(
            delay, lambda: self._notify_crash(subscriber, crashed)
        )

    def _notify_crash(self, subscriber: NodeId, crashed: NodeId) -> None:
        if subscriber in self._crashed:
            return
        self.trace.emit(
            self.now, EventKind.CRASH_NOTIFIED, node=subscriber, peer=crashed
        )
        self._processes[subscriber].on_crash(self._contexts[subscriber], crashed)

    def _set_timer(self, node: NodeId, delay: float, tag: Any) -> None:
        if delay < 0:
            raise SimulationError("timer delay must be non-negative")
        self._scheduler.schedule(delay, lambda: self._fire_timer(node, tag))

    def _fire_timer(self, node: NodeId, tag: Any) -> None:
        if node in self._crashed:
            return
        self._processes[node].on_timer(self._contexts[node], tag)

    def _crash(self, node: NodeId) -> None:
        if node in self._crashed:
            return
        self._crashed.add(node)
        self._crash_times[node] = self.now
        self.trace.emit(self.now, EventKind.NODE_CRASHED, node=node)
        for subscriber in sorted(self._subscriptions.get(node, ()), key=repr):
            if subscriber not in self._crashed:
                self._schedule_notification(subscriber, node)
