"""The deterministic discrete-event simulator.

:class:`Simulator` ties together the knowledge graph, the per-node
processes, reliable FIFO channels with a pluggable latency model, a crash
schedule, and a perfect failure detector.  Every observable action is
recorded into a :class:`~repro.trace.recorder.TraceRecorder` so that
property checkers and metrics can be computed after the run.

Model guarantees (matching §2.2 of the paper):

* channels are reliable and FIFO between every ordered pair of nodes;
* nodes are asynchronous — there is no bound on relative speeds, modelled
  here by the latency model's jitter;
* a crashed node stops executing instantly: its handlers are never invoked
  again, it sends nothing, and messages addressed to it are dropped;
* the failure detector is perfect (strong accuracy + strong completeness),
  with a configurable notification-delay policy.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from typing import Any, Optional

from ..graph import KnowledgeGraph, NodeId
from ..trace import TraceRecorder
from .events import EventKind
from .failure_detector import FailureDetectorPolicy, PerfectFailureDetector
from .faults import FaultModel
from .latency import ConstantLatency, LatencyModel
from .process import MembershipChange, Process, ProcessContext, resolve_attachment
from .scheduler import EventScheduler

#: Minimal spacing between two deliveries on the same FIFO channel; keeps
#: delivery order equal to send order even under jittered latencies.
_FIFO_EPSILON = 1e-9

#: Default safety valve for :meth:`Simulator.run` — far above anything the
#: experiments need, but low enough to abort a livelocked run quickly.
DEFAULT_MAX_EVENTS = 5_000_000


class SimulationError(RuntimeError):
    """Raised on simulator misuse (unknown nodes, missing processes, ...)."""


class _SimContext:
    """The :class:`ProcessContext` handed to processes by the simulator."""

    __slots__ = ("_sim", "node_id")

    def __init__(self, sim: "Simulator", node_id: NodeId) -> None:
        self._sim = sim
        self.node_id = node_id

    @property
    def graph(self) -> KnowledgeGraph:
        return self._sim.graph

    def now(self) -> float:
        return self._sim.now

    def send(self, target: NodeId, message: Any) -> None:
        self._sim._send(self.node_id, target, message)

    def multicast(self, targets: Iterable[NodeId], message: Any) -> None:
        # The paper's best-effort multicast: a plain loop of sends.
        for target in targets:
            self._sim._send(self.node_id, target, message)

    def monitor_crash(self, targets: Iterable[NodeId]) -> None:
        self._sim._monitor(self.node_id, targets)

    def set_timer(self, delay: float, tag: Any = None) -> None:
        self._sim._set_timer(self.node_id, delay, tag)

    def record(
        self,
        kind: EventKind,
        payload: Any = None,
        peer: NodeId | None = None,
        **detail: Any,
    ) -> None:
        self._sim.trace.emit(
            self._sim.now, kind, node=self.node_id, peer=peer, payload=payload, **detail
        )


class Simulator:
    """Discrete-event execution of processes on a knowledge graph.

    Parameters
    ----------
    graph:
        The static knowledge graph ``G``.
    latency:
        Latency model for point-to-point messages.
    failure_detector:
        Notification-delay policy of the perfect failure detector.
    seed:
        Seed for all randomness (latency jitter, detector jitter).
    trace:
        Optional pre-existing recorder; a fresh one is created otherwise.
    scheduler:
        Optional pre-built :class:`EventScheduler` (the determinism
        regression suite injects an unbatched one to compare dispatch
        modes); a fresh batched scheduler is created otherwise.
    faults:
        Optional :class:`~repro.sim.faults.FaultModel` injecting
        deterministic message loss / duplication / reordering at the
        send site; ``None`` (the default) keeps the paper's reliable
        FIFO channels and the exact fault-free event stream.
    """

    __slots__ = (
        "graph",
        "latency",
        "failure_detector",
        "faults",
        "trace",
        "_rng",
        "_fault_seed",
        "_fault_seq",
        "_scheduler",
        "_processes",
        "_contexts",
        "_crashed",
        "_crash_times",
        "_subscriptions",
        "_notification_scheduled",
        "_channel_clock",
        "_started",
        "_base_graph",
        "_incarnation",
        "_departed",
        "_pending_joins",
        "_epoch",
        "_process_factory",
    )

    def __init__(
        self,
        graph: KnowledgeGraph,
        latency: LatencyModel | None = None,
        failure_detector: FailureDetectorPolicy | None = None,
        seed: int = 0,
        trace: TraceRecorder | None = None,
        scheduler: EventScheduler | None = None,
        faults: FaultModel | None = None,
    ) -> None:
        self.graph = graph
        self.latency = latency if latency is not None else ConstantLatency(1.0)
        self.failure_detector = (
            failure_detector if failure_detector is not None else PerfectFailureDetector(1.0)
        )
        self.faults = faults
        self.trace = trace if trace is not None else TraceRecorder()
        self._rng = random.Random(seed)
        # Fault decisions never touch self._rng: they come from dedicated
        # per-message keyed RNGs (repro.sim.faults.message_rng) so the
        # shared latency/detector stream stays in lockstep with fault-free
        # and partitioned runs.  The per-channel send counters below are
        # the message-identity half of that key.
        self._fault_seed = seed
        self._fault_seq: dict[tuple[NodeId, NodeId], int] = {}
        self._scheduler = scheduler if scheduler is not None else EventScheduler()
        self._processes: dict[NodeId, Process] = {}
        self._contexts: dict[NodeId, _SimContext] = {}
        self._crashed: set[NodeId] = set()
        self._crash_times: dict[NodeId, float] = {}
        self._subscriptions: dict[NodeId, set[NodeId]] = {}
        self._notification_scheduled: set[tuple[NodeId, NodeId]] = set()
        self._channel_clock: dict[tuple[NodeId, NodeId], float] = {}
        self._started = False
        # --- dynamic-membership state (repro.churn) -----------------------
        #: The topology before any membership event (attachment policies
        #: consult it, e.g. to restore a recovering node's old edges).
        self._base_graph = graph
        #: Per-node incarnation counter; bumped on join/recover so stale
        #: deliveries, timers and notifications aimed at a previous life of
        #: the node can be recognised and dropped.
        self._incarnation: dict[NodeId, int] = {}
        #: Nodes that left gracefully (messages to them are dropped).
        self._departed: set[NodeId] = set()
        #: Nodes with a scheduled join (crashes may be scheduled for them).
        self._pending_joins: set[NodeId] = set()
        #: Membership epoch counter (0 = the initial static epoch).
        self._epoch = 0
        self._process_factory: Optional[Callable[[NodeId], Process]] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_process(self, node_id: NodeId, process: Process) -> None:
        """Install the behaviour of one node."""
        if node_id not in self.graph:
            raise SimulationError(f"node {node_id!r} is not in the graph")
        if self._started:
            raise SimulationError("cannot add processes after start()")
        self._processes[node_id] = process
        self._contexts[node_id] = _SimContext(self, node_id)

    def populate(self, factory: Callable[[NodeId], Process]) -> None:
        """Install ``factory(node)`` on every graph node lacking a process.

        The factory is kept so that nodes joining or recovering later (see
        :meth:`schedule_join` / :meth:`schedule_recover`) can be given a
        fresh process of the same kind.
        """
        self._process_factory = factory
        for node in self.graph.nodes:
            if node not in self._processes:
                self.add_process(node, factory(node))

    def process(self, node_id: NodeId) -> Process:
        """The process installed at ``node_id`` (for inspection in tests)."""
        try:
            return self._processes[node_id]
        except KeyError:
            raise SimulationError(f"no process installed at {node_id!r}") from None

    def schedule_crash(self, node: NodeId, time: float) -> None:
        """Crash ``node`` at absolute simulated time ``time``."""
        if node not in self.graph and node not in self._pending_joins:
            raise SimulationError(f"node {node!r} is not in the graph")
        self._schedule_event_at(time, lambda: self._crash(node))

    def schedule_crashes(self, crashes: Iterable[tuple[NodeId, float]]) -> None:
        """Schedule many ``(node, time)`` crashes."""
        for node, time in crashes:
            self.schedule_crash(node, time)

    def schedule_call(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule an arbitrary callback (used by scenario scripts)."""
        self._schedule_event_at(time, callback)

    # ------------------------------------------------------------------
    # Dynamic membership (churn) scheduling
    # ------------------------------------------------------------------
    def schedule_join(self, node: NodeId, time: float, attachment: Any) -> None:
        """A brand-new ``node`` joins at ``time``.

        ``attachment`` is either an iterable of neighbour ids or an
        attachment policy (any object with a ``neighbours_for`` method, see
        :mod:`repro.churn.attachment`) resolved at join time against the
        then-current graph.
        """
        if node in self.graph or node in self._pending_joins:
            raise SimulationError(f"node {node!r} is already part of the system")
        self._pending_joins.add(node)
        self._schedule_event_at(time, lambda: self._join(node, attachment))

    def schedule_recover(
        self, node: NodeId, time: float, attachment: Any = None
    ) -> None:
        """A crashed ``node`` recovers at ``time``.

        With ``attachment=None`` the node keeps the edges it had when it
        crashed; otherwise the attachment policy decides where the fresh
        incarnation re-attaches (the rejoin-via-repair-plan and locality
        policies of :mod:`repro.churn.attachment`).
        """
        if node not in self.graph and node not in self._pending_joins:
            raise SimulationError(f"node {node!r} is not in the graph")
        self._schedule_event_at(time, lambda: self._recover(node, attachment))

    def schedule_leave(self, node: NodeId, time: float) -> None:
        """A live ``node`` leaves gracefully at ``time``."""
        if node not in self.graph and node not in self._pending_joins:
            raise SimulationError(f"node {node!r} is not in the graph")
        self._schedule_event_at(time, lambda: self._leave(node))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._scheduler.now

    @property
    def crashed_nodes(self) -> frozenset[NodeId]:
        """Nodes that have crashed so far."""
        return frozenset(self._crashed)

    @property
    def departed_nodes(self) -> frozenset[NodeId]:
        """Nodes that left gracefully so far."""
        return frozenset(self._departed)

    @property
    def membership_epoch(self) -> int:
        """Number of membership events applied so far (0 = static run)."""
        return self._epoch

    @property
    def base_graph(self) -> KnowledgeGraph:
        """The topology before any membership event."""
        return self._base_graph

    def is_crashed(self, node: NodeId) -> bool:
        return node in self._crashed

    def crash_time(self, node: NodeId) -> Optional[float]:
        """When ``node`` crashed, or ``None`` if it has not."""
        return self._crash_times.get(node)

    def start(self) -> None:
        """Deliver the ``init`` event to every process at time 0."""
        if self._started:
            raise SimulationError("start() called twice")
        missing = self.graph.nodes - self._processes.keys()
        if missing:
            raise SimulationError(
                f"{len(missing)} graph nodes have no process installed; "
                "call populate() or add_process() for every node"
            )
        self._started = True
        for node in sorted(self._processes, key=repr):
            context = self._contexts[node]
            self.trace.emit(self.now, EventKind.NODE_STARTED, node=node)
            self._processes[node].on_start(context)

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = DEFAULT_MAX_EVENTS,
    ) -> float:
        """Run the simulation; starts it first if necessary.

        Returns the simulated time at which the run stopped (queue drained,
        ``until`` reached, or ``max_events`` executed).
        """
        if not self._started:
            self.start()
        return self._scheduler.run(until=until, max_events=max_events)

    def is_quiescent(self) -> bool:
        """True when no further event can occur."""
        return self._scheduler.is_idle()

    @property
    def processed_events(self) -> int:
        return self._scheduler.processed_events

    # ------------------------------------------------------------------
    # Internal mechanics
    # ------------------------------------------------------------------
    # Every internal scheduling action funnels through these two hooks
    # (message deliveries through :meth:`_schedule_delivery`) so that
    # :class:`repro.sim.partition.PartitionSimulator`
    # can stamp each event with a genealogical order key.  ``fanout``
    # identifies replicated fan-out sites (crash notifications, membership
    # announcements) whose sequential tie order is "sorted by target
    # repr"; the base simulator ignores it.
    def _schedule_event_at(
        self, time: float, callback: Callable[[], None], fanout: Any = None
    ) -> None:
        self._scheduler.schedule_at(time, callback)

    def _schedule_event_after(
        self, delay: float, callback: Callable[[], None], fanout: Any = None
    ) -> None:
        self._scheduler.schedule(delay, callback)

    def _delivers_to(self, node: NodeId) -> bool:
        """Whether this simulator runs the handlers of ``node`` (always,
        for the sequential simulator; an ownership test for partitions)."""
        return True

    def _inc(self, node: NodeId) -> int:
        return self._incarnation.get(node, 0)

    def _send(self, source: NodeId, target: NodeId, message: Any) -> None:
        # Hot path: every local/bound name below is touched once per
        # protocol message, so attribute lookups are hoisted to locals.
        if target not in self.graph:
            # Departed and crashed nodes stay in the graph snapshot, so an
            # id outside it was never part of the system: a caller bug.
            raise SimulationError(f"message addressed to unknown node {target!r}")
        if source in self._crashed or source in self._departed:
            # A crashed (or departed) node cannot send; this only happens
            # if a handler stopped its own node mid-event, which the model
            # forbids.
            return
        scheduler = self._scheduler
        now = scheduler.now
        self.trace.emit(
            now, EventKind.MESSAGE_SENT, node=source, peer=target, payload=message
        )
        delay = self.latency.sample(source, target, self._rng)
        if delay <= 0:
            raise SimulationError("latency model produced a non-positive delay")
        channel = (source, target)
        channel_clock = self._channel_clock
        earliest = channel_clock.get(channel, 0.0) + _FIFO_EPSILON
        delivery_time = now + delay
        if delivery_time < earliest:
            delivery_time = earliest
        channel_clock[channel] = delivery_time
        target_incarnation = self._incarnation.get(target, 0)
        faults = self.faults
        if faults is None:
            self._schedule_delivery(
                delivery_time, source, target, message, target_incarnation
            )
            return
        # Fault layer: the base delivery above (latency sample, FIFO clamp,
        # channel-clock advance) is computed identically with faults on or
        # off, so the fault-free path stays byte-stable and a dropped
        # message still consumes its FIFO slot.  The decision is keyed by
        # the channel's send counter — pure message identity.
        fault_seq = self._fault_seq
        sequence = fault_seq.get(channel, 0)
        fault_seq[channel] = sequence + 1
        offsets = faults.deliveries(source, target, sequence, self._fault_seed)
        if not offsets:
            self.trace.emit(
                now, EventKind.MESSAGE_LOST, node=source, peer=target, payload=message
            )
            return
        if len(offsets) > 1:
            self.trace.emit(
                now,
                EventKind.MESSAGE_DUPLICATED,
                node=source,
                peer=target,
                payload=message,
                copies=len(offsets),
            )
        for offset in offsets:
            self._schedule_delivery(
                delivery_time + offset, source, target, message, target_incarnation
            )

    def _schedule_delivery(
        self,
        delivery_time: float,
        source: NodeId,
        target: NodeId,
        message: Any,
        target_incarnation: int,
    ) -> None:
        """Schedule one delivered copy (partition subclass keys/envelopes it)."""
        self._scheduler.schedule_at(
            delivery_time,
            lambda: self._deliver(source, target, message, target_incarnation),
        )

    def _deliver(
        self,
        source: NodeId,
        target: NodeId,
        message: Any,
        target_incarnation: int = 0,
    ) -> None:
        emit = self.trace.emit
        now = self._scheduler.now
        if (
            target in self._crashed
            or target in self._departed
            or target not in self.graph
            or self._incarnation.get(target, 0) != target_incarnation
        ):
            # Crashed, departed, or addressed to a previous incarnation of
            # a node that has since recovered/rejoined: never delivered.
            emit(
                now,
                EventKind.MESSAGE_DROPPED,
                node=target,
                peer=source,
                payload=message,
            )
            return
        emit(
            now,
            EventKind.MESSAGE_DELIVERED,
            node=target,
            peer=source,
            payload=message,
        )
        self._processes[target].on_message(self._contexts[target], source, message)

    def _monitor(self, subscriber: NodeId, targets: Iterable[NodeId]) -> None:
        target_list = [t for t in targets]
        for target in target_list:
            if target not in self.graph:
                raise SimulationError(f"cannot monitor unknown node {target!r}")
        if not target_list:
            return
        self.trace.emit(
            self.now,
            EventKind.CRASH_MONITORED,
            node=subscriber,
            payload=tuple(sorted(map(repr, target_list))),
        )
        for target in target_list:
            self._subscriptions.setdefault(target, set()).add(subscriber)
            if target in self._crashed or target in self._departed:
                self._schedule_notification(subscriber, target)

    def _schedule_notification(
        self, subscriber: NodeId, crashed: NodeId, fanout: Any = None
    ) -> None:
        key = (subscriber, crashed)
        if key in self._notification_scheduled:
            return
        self._notification_scheduled.add(key)
        delay = self.failure_detector.delay(subscriber, crashed, self._rng)
        if delay < 0:
            raise SimulationError("failure detector produced a negative delay")
        subscriber_incarnation = self._inc(subscriber)
        self._schedule_event_after(
            delay,
            lambda: self._notify_crash(subscriber, crashed, subscriber_incarnation),
            fanout=fanout,
        )

    def _notify_crash(
        self, subscriber: NodeId, crashed: NodeId, subscriber_incarnation: int = 0
    ) -> None:
        if subscriber in self._crashed or subscriber in self._departed:
            return
        if self._inc(subscriber) != subscriber_incarnation:
            # The subscriber recovered in the meantime; its fresh
            # incarnation re-subscribes and is notified separately.
            return
        if crashed not in self._crashed and crashed not in self._departed:
            # The crashed node recovered before the notification fired;
            # the membership announcement supersedes it.
            return
        self.trace.emit(
            self.now, EventKind.CRASH_NOTIFIED, node=subscriber, peer=crashed
        )
        self._processes[subscriber].on_crash(self._contexts[subscriber], crashed)

    def _set_timer(self, node: NodeId, delay: float, tag: Any) -> None:
        if delay < 0:
            raise SimulationError("timer delay must be non-negative")
        incarnation = self._inc(node)
        self._schedule_event_after(
            delay, lambda: self._fire_timer(node, tag, incarnation)
        )

    def _fire_timer(self, node: NodeId, tag: Any, incarnation: int = 0) -> None:
        if node in self._crashed or node in self._departed:
            return
        if self._inc(node) != incarnation:
            return
        self._processes[node].on_timer(self._contexts[node], tag)

    def _crash(self, node: NodeId) -> None:
        if node in self._crashed or node in self._departed:
            return
        if node not in self.graph:
            raise SimulationError(f"cannot crash unknown node {node!r}")
        self._crashed.add(node)
        self._crash_times[node] = self.now
        self.trace.emit(self.now, EventKind.NODE_CRASHED, node=node)
        for subscriber in sorted(self._subscriptions.get(node, ()), key=repr):
            if subscriber not in self._crashed:
                self._schedule_notification(subscriber, node, fanout=subscriber)

    # ------------------------------------------------------------------
    # Membership mechanics (churn)
    # ------------------------------------------------------------------
    def _resolve_attachment(self, node: NodeId, attachment: Any) -> frozenset[NodeId]:
        return resolve_attachment(
            node,
            attachment,
            current=self.graph,
            base=self._base_graph,
            # Departed nodes are as dead as crashed ones for attachment
            # purposes: a policy must never hand out edges to them.
            crashed=frozenset(self._crashed | self._departed),
            rng=self._rng,
            error_cls=SimulationError,
        )

    def _spawn_process(self, node: NodeId) -> Process:
        if self._process_factory is None:
            raise SimulationError(
                "no process factory installed; call populate() before "
                "scheduling membership events"
            )
        process = self._process_factory(node)
        seed_incarnation = getattr(process, "set_incarnation", None)
        if callable(seed_incarnation):
            # Let the fresh process mint instance generations that can
            # never collide with its previous life's (see
            # CliffEdgeNode.set_incarnation).
            seed_incarnation(self._inc(node))
        self._processes[node] = process
        self._contexts[node] = _SimContext(self, node)
        return process

    def _activate(self, node: NodeId) -> None:
        """Spawn and start the fresh process of a joined/recovered node.

        The partitioned subclass runs this only on the node's owning
        partition; the trace order (NODE_JOINED/NODE_RECOVERED, then
        NODE_STARTED, then the handler's own emissions) is part of the
        determinism contract.
        """
        process = self._spawn_process(node)
        self.trace.emit(self.now, EventKind.NODE_STARTED, node=node)
        process.on_start(self._contexts[node])

    def _admit(self, node: NodeId, neighbours: frozenset[NodeId]) -> None:
        """Hook: a brand-new node is about to enter the graph (partition
        ownership assignment); the sequential simulator needs nothing."""

    def _join(self, node: NodeId, attachment: Any) -> None:
        self._pending_joins.discard(node)
        if node in self.graph:
            raise SimulationError(f"joining node {node!r} is already in the graph")
        neighbours = self._resolve_attachment(node, attachment)
        if not neighbours:
            raise SimulationError(f"joining node {node!r} attaches to nothing")
        self._admit(node, neighbours)
        self.graph = self.graph.with_node(node, neighbours)
        self._epoch += 1
        self._incarnation[node] = self._inc(node) + 1
        self.trace.emit(
            self.now,
            EventKind.NODE_JOINED,
            node=node,
            payload=tuple(sorted(neighbours, key=repr)),
            epoch=self._epoch,
        )
        self._activate(node)
        self._announce(MembershipChange("join", node, neighbours, incarnation=self._inc(node)))

    def _recover(self, node: NodeId, attachment: Any) -> None:
        if node not in self.graph:
            raise SimulationError(f"cannot recover unknown node {node!r}")
        if node not in self._crashed:
            raise SimulationError(f"cannot recover live node {node!r}")
        neighbours = self._resolve_attachment(node, attachment)
        if not neighbours:
            raise SimulationError(f"recovering node {node!r} attaches to nothing")
        if neighbours != self.graph.neighbours(node):
            self.graph = self.graph.without([node]).with_node(node, neighbours)
        self._crashed.discard(node)
        self._crash_times.pop(node, None)
        self._epoch += 1
        self._incarnation[node] = self._inc(node) + 1
        # A future re-crash must be notifiable again, and pending
        # notifications aimed at the dead incarnation must not leak into
        # the fresh one (the incarnation guard catches in-flight ones).
        self._notification_scheduled = {
            (subscriber, crashed)
            for subscriber, crashed in self._notification_scheduled
            if crashed != node and subscriber != node
        }
        # The fresh incarnation starts with no subscriptions of its own,
        # and nobody is subscribed to it: monitorCrash relationships are
        # per-incarnation on both sides.  Interested neighbours re-monitor
        # through the membership announcement, and more distant border
        # nodes re-learn it transitively (line 7 of Algorithm 1), which
        # restores the static model's adjacency-ordered notifications.
        # The announcement must still reach everyone who was watching the
        # *old* incarnation — including non-neighbour border nodes — so
        # the audience is captured before the subscription wipe.
        old_watchers = frozenset(self._subscriptions.pop(node, set()))
        for subscribers in self._subscriptions.values():
            subscribers.discard(node)
        self.trace.emit(
            self.now,
            EventKind.NODE_RECOVERED,
            node=node,
            payload=tuple(sorted(neighbours, key=repr)),
            epoch=self._epoch,
        )
        self._activate(node)
        self._announce(
            MembershipChange("recover", node, neighbours, incarnation=self._inc(node)),
            extra=old_watchers,
        )

    def _leave(self, node: NodeId) -> None:
        """A graceful leave: an *announced* fail-stop.

        The node stops executing instantly (exactly like a crash), stays
        in the graph snapshot — the topology service keeps answering
        queries about it, as it does for crashed nodes — and subscribers
        are notified through the ordinary failure-detector channel, so the
        border runs the same agreement it would run for a crash.  This is
        what overlay maintenance does for departures in practice; the
        ground truth (NODE_LEFT vs NODE_CRASHED) stays distinguishable for
        the epoch-quotiented property checkers.  Leaves are permanent: a
        departed node never recovers.
        """
        if node not in self.graph:
            raise SimulationError(f"cannot remove unknown node {node!r}")
        if node in self._crashed or node in self._departed:
            return
        self._departed.add(node)
        self._crash_times[node] = self.now
        self.trace.emit(self.now, EventKind.NODE_LEFT, node=node)
        for subscriber in sorted(self._subscriptions.get(node, ()), key=repr):
            if subscriber not in self._crashed and subscriber not in self._departed:
                self._schedule_notification(subscriber, node, fanout=subscriber)

    def _announce(
        self, change: MembershipChange, extra: frozenset[NodeId] = frozenset()
    ) -> None:
        """Announce a membership change to the nodes that care.

        The announcement reaches current subscribers of the node, its
        (new) neighbours, and any ``extra`` audience the caller captured
        (recoveries pass the previous incarnation's watchers), after the
        same per-pair delay the failure detector would impose — the
        membership service is assumed to be exactly as timely as crash
        detection.
        """
        targets = set(self._subscriptions.get(change.node, set())) | set(extra)
        if change.node in self.graph:
            targets |= self.graph.neighbours(change.node)
        for target in sorted(targets, key=repr):
            if target == change.node or target in self._crashed or target in self._departed:
                continue
            if not self._delivers_to(target):
                # A partition announces only to the targets it runs; the
                # other partitions replay the same membership event and
                # announce to theirs, so the union over partitions is
                # exactly this loop's sequential target set.
                continue
            delay = self.failure_detector.delay(target, change.node, self._rng)
            if delay < 0:
                raise SimulationError("failure detector produced a negative delay")
            incarnation = self._inc(target)
            self._schedule_event_after(
                delay,
                lambda t=target, i=incarnation: self._notify_membership(t, i, change),
                fanout=target,
            )

    def _notify_membership(
        self, subscriber: NodeId, incarnation: int, change: MembershipChange
    ) -> None:
        if subscriber in self._crashed or subscriber in self._departed:
            return
        if self._inc(subscriber) != incarnation or subscriber not in self._processes:
            return
        self.trace.emit(
            self.now,
            EventKind.MEMBERSHIP_NOTIFIED,
            node=subscriber,
            peer=change.node,
            payload=change.kind,
        )
        self._processes[subscriber].on_membership(self._contexts[subscriber], change)
