"""Failure detectors.

The protocol assumes a **perfect failure detector** (class P) exposed as a
subscription service (§3.1): a node subscribes to the crashes of a set of
nodes with ``monitorCrash | S`` and later receives ``crash | q`` events.
The detector guarantees:

* **Strong accuracy** — a ``crash | q`` event is only raised at ``p`` if
  ``q`` has really crashed and ``p`` subscribed to ``q``; and
* **Strong completeness** — if ``q`` crashes and ``p`` subscribed to ``q``
  (before or after the crash), ``p`` eventually receives ``crash | q``.

In the simulator the ground truth of who has crashed is known, so accuracy
is trivial; the interesting knob is *when* each subscriber learns about
each crash.  Three implementations are provided:

* :class:`PerfectFailureDetector` — a fixed detection delay, identical for
  everybody; the default.
* :class:`JitteredFailureDetector` — per-(subscriber, crashed) random
  delays drawn from a seeded range.  Still perfect, but subscribers learn
  about the same crash at different times, which is how divergent views
  (Fig. 1b) arise organically.
* :class:`ScriptedFailureDetector` — the experiment fixes the exact
  notification time of chosen (subscriber, crashed) pairs.  Used to
  reproduce the paper's figures precisely (e.g. "madrid is slow to detect
  paris' crash").
"""

from __future__ import annotations

import random
from typing import Optional, Protocol

from ..graph import NodeId


class FailureDetectorPolicy(Protocol):
    """Decides the notification delay for a (subscriber, crashed) pair.

    The simulator calls :meth:`delay` once per pair, at the moment both
    conditions hold (the target has crashed *and* the subscriber has
    subscribed); the returned value is added to the current simulated time.
    """

    def delay(
        self, subscriber: NodeId, crashed: NodeId, rng: random.Random
    ) -> float:
        ...


class PerfectFailureDetector:
    """Constant detection delay for every subscriber and every crash."""

    def __init__(self, detection_delay: float = 1.0) -> None:
        if detection_delay < 0:
            raise ValueError("detection delay must be non-negative")
        self.detection_delay = detection_delay

    def delay(self, subscriber: NodeId, crashed: NodeId, rng: random.Random) -> float:
        return self.detection_delay


class JitteredFailureDetector:
    """Uniformly random detection delay in ``[low, high]`` per pair.

    Because different border nodes of a growing crashed region learn of
    crashes in different orders, they naturally build *different* candidate
    views for a while — the self-defining-constituency situation the
    protocol is designed to resolve.
    """

    def __init__(self, low: float = 0.5, high: float = 3.0) -> None:
        if low < 0 or high < low:
            raise ValueError("need 0 <= low <= high")
        self.low = low
        self.high = high

    def delay(self, subscriber: NodeId, crashed: NodeId, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


class ScriptedFailureDetector:
    """Explicit per-pair detection delays with a default fallback.

    Parameters
    ----------
    delays:
        Mapping ``(subscriber, crashed) -> delay``.
    default_delay:
        Used for pairs not present in ``delays``.
    """

    def __init__(
        self,
        delays: Optional[dict[tuple[NodeId, NodeId], float]] = None,
        default_delay: float = 1.0,
    ) -> None:
        if default_delay < 0:
            raise ValueError("default delay must be non-negative")
        self._delays = dict(delays or {})
        for pair, value in self._delays.items():
            if value < 0:
                raise ValueError(f"negative delay for pair {pair!r}")
        self.default_delay = default_delay

    def set_delay(self, subscriber: NodeId, crashed: NodeId, delay: float) -> None:
        """Add or override the delay for one pair."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self._delays[(subscriber, crashed)] = delay

    @property
    def delays(self) -> dict[tuple[NodeId, NodeId], float]:
        """A copy of the scripted per-pair delays (spec serialization)."""
        return dict(self._delays)

    def delay(self, subscriber: NodeId, crashed: NodeId, rng: random.Random) -> float:
        return self._delays.get((subscriber, crashed), self.default_delay)
