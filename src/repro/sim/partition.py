"""Partitioned parallel event scheduling for one large simulation run.

The sweep engine (:mod:`repro.scale`) shards across *runs*; this module
shards *inside* a run.  The knowledge graph is split into locality-aware
shards (:func:`partition_graph`), each shard gets its own
:class:`PartitionSimulator` with a keyed event scheduler running on a
worker (an OS process, or inline in the calling process), and the workers
exchange partition-crossing messages (:class:`~repro.sim.events.PartitionEnvelope`)
at deterministic epoch barriers.  The merged trace is **bit-identical**
to the sequential :class:`~repro.sim.network.Simulator` run of the same
scenario — the canonical trace digest is the equivalence oracle, exactly
as it is for the sweep engine.

Determinism invariants
----------------------
The backend reproduces the sequential run, not merely "a" correct run:

* **Genealogical order keys.**  The sequential scheduler breaks timestamp
  ties by global insertion order, which no single partition can observe.
  Every scheduled event therefore carries a nested *order key* encoding
  where in the sequential run its scheduling action would have happened:
  ``(0, n)`` for the n-th pre-start setup action (schedule replay is
  replicated, so ``n`` agrees everywhere), ``(1, rank, i)`` for the i-th
  action of node ``rank``'s ``on_start`` (ranks are global sorted-by-repr
  positions), and ``(2, parent_time, parent_key, child)`` for actions
  taken while an event executes — ``child`` is ``(0, counter)`` for a
  handler's own actions and ``(1, repr(target))`` for replicated fan-outs
  (crash notifications, membership announcements), whose sequential tie
  order is "sorted by target repr".  Lexicographic order over these keys
  equals the sequential insertion order among equal-time events, by
  induction over the event genealogy.
* **Replicated control plane.**  Crashes, joins, recoveries and leaves
  are statically scheduled, so every partition replays *all* of them,
  keeping graph snapshots, incarnations, membership epochs and the seeded
  RNG in lockstep (attachment policies are the only RNG consumers; the
  latency and failure-detector models must be RNG-free, which is
  validated up front).  Handlers, subscriptions and trace emissions are
  filtered to each partition's owned nodes; the union over partitions is
  exactly the sequential run.
* **Conservative barriers.**  Only point-to-point messages cross
  partitions.  An epoch window ``[s, s + lookahead)`` with ``lookahead =``
  the minimum cross-partition latency guarantees every envelope sent in a
  window is delivered at or after the next barrier, so no partition ever
  simulates past an input it has not yet received.  Windows hop to the
  next globally pending timestamp, so idle stretches cost one barrier.
* **Deterministic merge.**  Each emission is annotated with a merge key
  (start-phase: ``(1, rank, i)``; runtime: ``(2, time, event_key, i)``);
  per-partition logs are already sorted, and a k-way merge reconstructs
  the sequential trace byte-for-byte.

The determinism suite (``tests/integration/test_partitioned_determinism``)
pins ``partitions=N`` digest-equality against the sequential simulator
for static, mid-epoch-crash and steady-churn workloads.
"""

from __future__ import annotations

import heapq
import math
import os
import pickle
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from ..api.result import DecisionResultMixin, json_safe
from ..graph import KnowledgeGraph, NodeId
from ..trace import (
    DIGEST_RETAINED_KINDS,
    EventColumns,
    StreamingRunMetrics,
    StreamingTraceDigest,
    TraceRecorder,
    combine_partials,
)
from .events import EventKind, PartitionEnvelope, TraceEvent
from .failure_detector import (
    FailureDetectorPolicy,
    PerfectFailureDetector,
    ScriptedFailureDetector,
)
from .faults import FaultModel, FaultsError, check_partition_safe
from .latency import ConstantLatency, LatencyModel, PerPairLatency
from .network import DEFAULT_MAX_EVENTS, SimulationError, Simulator
from .scheduler import KeyedEventScheduler


class PartitionError(SimulationError):
    """Raised on partitioned-backend misuse or contract violations."""


# ---------------------------------------------------------------------------
# Graph partitioning
# ---------------------------------------------------------------------------
def partition_graph(
    graph: KnowledgeGraph, count: int
) -> tuple[frozenset[NodeId], ...]:
    """Split ``graph`` into ``count`` balanced, locality-aware shards.

    Deterministic: seeds are chosen by farthest-point sampling (BFS
    distance, ties by ``repr``), then grown breadth-first with the
    smallest shard claiming next, so sizes stay within a few nodes of
    each other and shards are contiguous wherever the graph allows.
    Nodes unreachable from every seed (disconnected leftovers) are dealt
    round-robin to the smallest shards in ``repr`` order.
    """
    if count < 1:
        raise PartitionError(f"partition count must be >= 1, got {count}")
    nodes = sorted(graph.nodes, key=repr)
    if count > len(nodes):
        raise PartitionError(
            f"cannot split {len(nodes)} nodes into {count} partitions"
        )
    if count == 1:
        return (frozenset(nodes),)

    def bfs_distances(sources: list[NodeId]) -> dict[NodeId, int]:
        dist = {source: 0 for source in sources}
        frontier = deque(sources)
        while frontier:
            current = frontier.popleft()
            for neighbour in sorted(graph.neighbours(current), key=repr):
                if neighbour not in dist:
                    dist[neighbour] = dist[current] + 1
                    frontier.append(neighbour)
        return dist

    seeds = [nodes[0]]
    while len(seeds) < count:
        dist = bfs_distances(seeds)
        best = None
        best_distance = -1.0
        for node in nodes:
            if node in seeds:
                continue
            node_distance = dist.get(node, math.inf)
            if node_distance > best_distance:
                best = node
                best_distance = node_distance
        assert best is not None
        seeds.append(best)

    owner: dict[NodeId, int] = {seed: index for index, seed in enumerate(seeds)}
    frontiers = [deque([seed]) for seed in seeds]
    sizes = [1] * count
    remaining = len(nodes) - count
    while remaining:
        # The smallest shard claims next, so sizes stay within one node of
        # each other as long as the frontiers allow.
        claimed = False
        for index in sorted(range(count), key=lambda i: (sizes[i], i)):
            frontier = frontiers[index]
            while frontier:
                head = frontier[0]
                free = [
                    neighbour
                    for neighbour in graph.neighbours(head)
                    if neighbour not in owner
                ]
                if free:
                    claim = min(free, key=repr)
                    owner[claim] = index
                    frontier.append(claim)
                    sizes[index] += 1
                    remaining -= 1
                    claimed = True
                    break
                frontier.popleft()
            if claimed:
                break
        if not claimed:
            # Disconnected leftovers: deal them to the smallest shards.
            for node in nodes:
                if node not in owner:
                    smallest = min(range(count), key=lambda i: (sizes[i], i))
                    owner[node] = smallest
                    sizes[smallest] += 1
                    remaining -= 1
            break
    shards: list[set[NodeId]] = [set() for _ in range(count)]
    for node, index in owner.items():
        shards[index].add(node)
    return tuple(frozenset(shard) for shard in shards)


def _cross_lookahead(
    latency: LatencyModel, faults: Optional[FaultModel] = None
) -> float:
    """The guaranteed minimum delay of any partition-crossing message.

    Only RNG-free latency models are admissible: a random draw at a send
    site would consume the shared seeded stream in partition-dependent
    order and break the lockstep-RNG invariant (and a zero-lookahead
    model would break the barrier protocol).

    Fault models never *shrink* that bound: an injected fault only drops
    a message or adds a non-negative offset to its base delivery time
    (:mod:`repro.sim.faults`), so even with an arbitrary reorder window
    every envelope still satisfies ``delivery_time >= send_time +
    min_latency`` and the lookahead is the fault-free one.  The check
    below rejects fault models that cannot guarantee this (or whose
    decisions would consume shared randomness at send sites).
    """
    _check_faults(faults)
    if isinstance(latency, ConstantLatency):
        return latency.delay
    if isinstance(latency, PerPairLatency):
        return min([latency.default] + [delay for _, delay in latency.pairs])
    raise PartitionError(
        "partitioned runs need a deterministic latency model "
        f"(constant or per-pair), got {type(latency).__name__}"
    )


def _check_faults(faults: Optional[FaultModel]) -> None:
    """Reject fault models the partitioned backend cannot shard safely."""
    try:
        check_partition_safe(faults)
    except FaultsError as exc:
        raise PartitionError(str(exc)) from exc


def _check_failure_detector(policy: FailureDetectorPolicy) -> None:
    if isinstance(policy, (PerfectFailureDetector, ScriptedFailureDetector)):
        return
    raise PartitionError(
        "partitioned runs need a deterministic failure detector "
        f"(perfect or scripted), got {type(policy).__name__}"
    )


def _fork_context():
    """The ``fork`` multiprocessing context, or ``None`` where unsupported.

    Process workers must inherit the parent's hash seed: canonical
    container layout makes iteration order a function of (value, hash
    seed), and a ``spawn``/``forkserver`` child re-randomises the seed —
    string node ids would then fold borders and opinion vectors in a
    different observable order than the sequential run, breaking the
    digest contract.  ``fork`` children share the parent's seed.
    """
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


# ---------------------------------------------------------------------------
# The per-partition simulator
# ---------------------------------------------------------------------------
class _ColumnarTraceLog:
    """A worker's share of a full trace: merge keys + columnar rows.

    The finish payload ships one ``array`` buffer per column plus the key
    list, and the coordinator's k-way merge copies rows between column
    stores without ever constructing :class:`TraceEvent` objects for the
    crossing.
    """

    __slots__ = ("keys", "columns")

    def __init__(self) -> None:
        self.keys: list[tuple] = []
        self.columns = EventColumns()

    def add(self, key: tuple, event: TraceEvent) -> None:
        self.keys.append(key)
        self.columns.append(event)

    def payload(self) -> dict[str, Any]:
        return {"collection": "trace", "keys": self.keys, "columns": self.columns}


class _DigestTraceLog:
    """A worker's share of a digest-only run: folded state, no events.

    The finish payload is a single 32-byte partial digest sum, the
    streamed metrics accumulator, and the handful of retained
    outcome events (decisions, crashes) — zero trace bytes cross the
    process boundary.
    """

    __slots__ = ("digest", "metrics", "retained", "events", "end_time")

    def __init__(self) -> None:
        self.digest = StreamingTraceDigest()
        self.metrics = StreamingRunMetrics()
        self.retained: list[tuple[tuple, TraceEvent]] = []
        self.events = 0
        self.end_time = 0.0

    def add(self, key: tuple, event: TraceEvent) -> None:
        self.digest.update(event)
        self.metrics.observe(event)
        if event.kind in DIGEST_RETAINED_KINDS:
            self.retained.append((key, event))
        self.events += 1
        self.end_time = event.time

    def payload(self) -> dict[str, Any]:
        return {
            "collection": "digest",
            "digest_partial": self.digest.partial(),
            "metrics": self.metrics,
            "retained": self.retained,
            "events": self.events,
            "end_time": self.end_time,
        }


class _PartitionTraceRecorder(TraceRecorder):
    """Filters emissions to owned nodes and annotates them with merge keys.

    Events land only in the simulator's keyed trace log (columnar or
    digest-only, per the run's collection mode) — the coordinator merges
    the per-worker logs into the result trace, so the recorder's own
    event store is deliberately left empty (one append per event instead
    of two, on the hottest path of the run).
    """

    def __init__(self, sim: "PartitionSimulator") -> None:
        super().__init__()
        self._sim = sim

    def record(self, event: TraceEvent) -> None:
        key = self._sim._emit_key(event)
        if key is not None:
            self._sim._log.add(key, event)


class PartitionSimulator(Simulator):
    """One shard of a partitioned run.

    Replays the *whole* control plane (crashes, membership, graph
    snapshots) but installs processes, delivers events and records trace
    emissions only for its owned nodes.  Driven window-by-window by a
    coordinator (never via :meth:`run`), with cross-partition sends
    diverted into an envelope outbox.
    """

    # Simulator declares __slots__; the subclass adds its own state.
    __slots__ = (
        "_owned",
        "_owner_of",
        "_pid",
        "_setup_counter",
        "_ctx_key",
        "_ctx_time",
        "_ctx_children",
        "_ctx_emits",
        "_start_rank",
        "_start_actions",
        "_start_emits",
        "_outbox",
        "_log",
    )

    def __init__(
        self,
        graph: KnowledgeGraph,
        shards: tuple[frozenset[NodeId], ...],
        pid: int,
        latency: LatencyModel | None = None,
        failure_detector: FailureDetectorPolicy | None = None,
        seed: int = 0,
        collection: str = "trace",
        faults: FaultModel | None = None,
    ) -> None:
        super().__init__(
            graph,
            latency=latency,
            failure_detector=failure_detector,
            seed=seed,
            scheduler=KeyedEventScheduler(),
            faults=faults,
        )
        self._scheduler.context = self  # type: ignore[attr-defined]
        _check_failure_detector(self.failure_detector)
        _cross_lookahead(self.latency, self.faults)
        self._owned = frozenset(shards[pid])
        self._owner_of = {
            node: index for index, shard in enumerate(shards) for node in shard
        }
        if self.graph.nodes - self._owner_of.keys():
            raise PartitionError("shards must cover every graph node")
        self._pid = pid
        self._setup_counter = 0
        #: Order key of the currently executing event (None between events).
        self._ctx_key: Optional[tuple] = None
        self._ctx_time = 0.0
        self._ctx_children = 0
        self._ctx_emits = 0
        #: Global rank of the node whose on_start is running (start phase).
        self._start_rank: Optional[int] = None
        self._start_actions = 0
        self._start_emits = 0
        self._outbox: list[PartitionEnvelope] = []
        #: Keyed trace log, appended in execution order — already sorted,
        #: by construction of the merge keys.
        if collection not in TraceRecorder.COLLECTIONS:
            raise PartitionError(f"unknown collection mode {collection!r}")
        self._log = _ColumnarTraceLog() if collection == "trace" else _DigestTraceLog()
        self.trace = _PartitionTraceRecorder(self)

    # -- ownership -----------------------------------------------------
    @property
    def owned_nodes(self) -> frozenset[NodeId]:
        return self._owned

    def owner_of(self, node: NodeId) -> int:
        return self._owner_of[node]

    def _delivers_to(self, node: NodeId) -> bool:
        return node in self._owned

    # -- order keys ----------------------------------------------------
    def _mint_key(self, fanout: Any) -> tuple:
        if self._ctx_key is not None:
            if fanout is None:
                child = (0, self._ctx_children)
                self._ctx_children += 1
            else:
                child = (1, repr(fanout))
            return (2, self._ctx_time, self._ctx_key, child)
        if self._start_rank is not None:
            index = self._start_actions
            self._start_actions += 1
            return (1, self._start_rank, index)
        index = self._setup_counter
        self._setup_counter += 1
        return (0, index)

    def _emit_key(self, event: TraceEvent) -> Optional[tuple]:
        node = event.node
        if node is None:
            raise PartitionError(
                "partitioned runs cannot attribute a node-less trace event"
            )
        if node not in self._owned:
            return None
        if self._ctx_key is not None:
            index = self._ctx_emits
            self._ctx_emits += 1
            return (2, self._ctx_time, self._ctx_key, index)
        if self._start_rank is not None:
            index = self._start_emits
            self._start_emits += 1
            return (1, self._start_rank, index)
        raise PartitionError("trace emission outside any event context")

    def _schedule_keyed(self, time: float, key: tuple, callback) -> None:
        # The scheduler's run_window() installs (time, key) as this
        # simulator's event context before invoking the raw callback, so
        # no per-event wrapper closure is needed.
        self._scheduler.schedule_keyed(time, key, callback)  # type: ignore[attr-defined]

    # -- scheduling hooks ----------------------------------------------
    def _schedule_event_at(self, time, callback, fanout=None) -> None:
        self._schedule_keyed(time, self._mint_key(fanout), callback)

    def _schedule_event_after(self, delay, callback, fanout=None) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._schedule_event_at(self._scheduler.now + delay, callback, fanout)

    # -- configuration and start ---------------------------------------
    def populate(self, factory) -> None:
        """Install ``factory(node)`` on every *owned* node."""
        self._process_factory = factory
        for node in self.graph.nodes:
            if node in self._owned and node not in self._processes:
                self.add_process(node, factory(node))

    def start(self) -> None:
        """Deliver ``init`` to owned processes, in global rank order.

        Ranks are positions in the repr-sorted full node list, so the
        merged start-phase emissions interleave exactly as the sequential
        ``start()`` (which iterates all nodes in that order) produced them.
        """
        if self._started:
            raise SimulationError("start() called twice")
        missing = self._owned - self._processes.keys()
        if missing:
            raise SimulationError(
                f"{len(missing)} owned nodes have no process installed; "
                "call populate() before start()"
            )
        self._started = True
        for rank, node in enumerate(sorted(self.graph.nodes, key=repr)):
            if node not in self._owned:
                continue
            self._start_rank = rank
            self._start_actions = 0
            self._start_emits = 0
            self.trace.emit(self.now, EventKind.NODE_STARTED, node=node)
            self._processes[node].on_start(self._contexts[node])
        self._start_rank = None

    def run(self, until=None, max_events=DEFAULT_MAX_EVENTS):
        raise PartitionError(
            "a PartitionSimulator is driven window-by-window by its "
            "coordinator; use run_partitioned()"
        )

    def schedule_call(self, time, callback) -> None:
        raise PartitionError(
            "scripted scenario callbacks cannot be replicated across "
            "partitions; use the sequential simulator"
        )

    # -- membership hooks ----------------------------------------------
    def _admit(self, node: NodeId, neighbours: frozenset[NodeId]) -> None:
        # A joiner is owned by the partition owning its first (repr-order)
        # neighbour — every partition replays the join and computes the
        # same assignment.  Ownership must be claimed before the join's
        # NODE_JOINED emission, which only the owner records.
        if node not in self._owner_of:
            anchor = min(neighbours, key=repr)
            owner = self._owner_of[anchor]
            self._owner_of[node] = owner
            if owner == self._pid:
                self._owned = self._owned | {node}

    def _activate(self, node: NodeId) -> None:
        if node in self._owned:
            super()._activate(node)

    def _spawn_process(self, node: NodeId):
        if self._owner_of.get(node) != self._pid:
            raise PartitionError(f"cannot spawn a process for foreign node {node!r}")
        return super()._spawn_process(node)

    # -- the message hot path ------------------------------------------
    # The send path itself (latency sample, FIFO clamp, channel-clock
    # advance, fault decisions) is inherited verbatim from
    # Simulator._send — one implementation means faults and clocks cannot
    # diverge between backends.  Only the final act of scheduling a
    # delivered copy differs: it gets a genealogical key, and a foreign
    # target turns it into an outbox envelope carrying the (identically
    # computed, fault-offset-included) delivery time.
    def _schedule_delivery(
        self,
        delivery_time: float,
        source: NodeId,
        target: NodeId,
        message: Any,
        target_incarnation: int,
    ) -> None:
        key = self._mint_key(None)
        if self._owner_of[target] == self._pid:
            self._schedule_keyed(
                delivery_time,
                key,
                lambda: self._deliver(source, target, message, target_incarnation),
            )
        else:
            self._outbox.append(
                PartitionEnvelope(
                    delivery_time=delivery_time,
                    key=key,
                    source=source,
                    target=target,
                    payload=message,
                    target_incarnation=target_incarnation,
                )
            )

    # -- the barrier surface -------------------------------------------
    def inject(self, envelopes: Iterable[PartitionEnvelope]) -> None:
        """Schedule deliveries received from other partitions."""
        for envelope in envelopes:
            if self._owner_of.get(envelope.target) != self._pid:
                raise PartitionError(
                    f"envelope for foreign node {envelope.target!r} "
                    f"routed to partition {self._pid}"
                )
            self._schedule_keyed(
                envelope.delivery_time,
                envelope.key,
                lambda e=envelope: self._deliver(
                    e.source, e.target, e.payload, e.target_incarnation
                ),
            )

    def drain_outbox(self) -> dict[int, list[PartitionEnvelope]]:
        """Envelopes produced since the last barrier, grouped by owner."""
        routed: dict[int, list[PartitionEnvelope]] = {}
        for envelope in self._outbox:
            routed.setdefault(self._owner_of[envelope.target], []).append(envelope)
        self._outbox = []
        return routed

    def run_window(
        self, end: float, until: Optional[float], budget: int
    ) -> int:
        """Execute the window ``[now, end)`` (clamped inclusively at
        ``until``); returns the number of events executed."""
        scheduler = self._scheduler
        if until is not None and end > until:
            executed = scheduler.run_window(until, inclusive=True, max_events=budget)  # type: ignore[attr-defined]
        else:
            executed = scheduler.run_window(end, max_events=budget)  # type: ignore[attr-defined]
        if executed >= budget and not scheduler.is_idle():
            raise PartitionError(
                f"partition {self._pid} exceeded its max_events budget; "
                "partitioned runs must run to quiescence (or an explicit "
                "'until') to preserve the determinism contract"
            )
        return executed

    def next_event_time(self) -> Optional[float]:
        return self._scheduler.next_event_time()

    def trace_payload(self) -> dict[str, Any]:
        """The shard's trace contribution, shaped for the coordinator."""
        return self._log.payload()


# ---------------------------------------------------------------------------
# Workers
# ---------------------------------------------------------------------------
@dataclass
class _WorkerConfig:
    """Everything a worker needs to rebuild its shard (picklable)."""

    pid: int
    shards: tuple[frozenset[NodeId], ...]
    graph: KnowledgeGraph
    schedule: Any
    membership: Any
    latency: Optional[LatencyModel]
    failure_detector: Optional[FailureDetectorPolicy]
    seed: int
    arbitration_enabled: bool
    early_termination: bool
    max_events: int
    until: Optional[float]
    collection: str = "trace"
    faults: Optional[FaultModel] = None


def _build_partition(config: _WorkerConfig) -> PartitionSimulator:
    from ..core import CliffEdgeNode

    sim = PartitionSimulator(
        config.graph,
        config.shards,
        config.pid,
        latency=config.latency,
        failure_detector=config.failure_detector,
        seed=config.seed,
        collection=config.collection,
        faults=config.faults,
    )
    sim.populate(
        lambda node_id: CliffEdgeNode(
            node_id,
            arbitration_enabled=config.arbitration_enabled,
            early_termination=config.early_termination,
        )
    )
    if config.membership is None:
        config.schedule.applied_to(sim)
    else:
        config.membership.applied_to(sim, crashes=config.schedule)
    sim.start()
    return sim


def _finish_payload(
    sim: PartitionSimulator, executed: int, config: _WorkerConfig
) -> dict[str, Any]:
    """What a worker ships back when the run is over.

    The trace contribution depends on the collection mode (columnar rows
    vs folded digest state); the final graph rides along only for churn
    runs, which are the only consumers of it.
    """
    payload = sim.trace_payload()
    payload["idle"] = sim.is_quiescent()
    payload["processed"] = executed
    if config.membership is not None:
        payload["graph"] = sim.graph
    return payload


def _pack_result(payload: dict[str, Any]) -> bytes:
    """Encode a finish payload for the pipe: pickle + fast zlib.

    Trace payloads are highly repetitive (timestamp runs, shared key
    structure, interned ids), so even level-1 zlib cuts the bytes that
    actually cross the process boundary by several times for ~2 ms per
    worker.  Inline workers skip this — nothing crosses a boundary.
    """
    return zlib.compress(pickle.dumps(payload, pickle.HIGHEST_PROTOCOL), 1)


def _unpack_result(blob: bytes) -> dict[str, Any]:
    return pickle.loads(zlib.decompress(blob))


class _InlineWorker:
    """Runs a shard in the calling process (tests, single-CPU hosts)."""

    def __init__(self, config: _WorkerConfig) -> None:
        self._config = config
        self._sim = _build_partition(config)
        self._executed = 0
        self._reply: Any = None
        self.next_time = self._sim.next_event_time()

    def begin(self, end: float, envelopes: list[PartitionEnvelope]) -> None:
        self._sim.inject(envelopes)
        budget = self._config.max_events - self._executed
        self._executed += self._sim.run_window(end, self._config.until, budget)
        self._reply = (self._sim.drain_outbox(), self._sim.next_event_time())

    def collect(self) -> dict[int, list[PartitionEnvelope]]:
        outbox, self.next_time = self._reply
        return outbox

    def finish(self) -> dict[str, Any]:
        return _finish_payload(self._sim, self._executed, self._config)

    def close(self) -> None:
        pass


def _process_worker_main(connection, config: _WorkerConfig) -> None:
    """Entry point of a partition worker process."""
    try:
        sim = _build_partition(config)
        executed = 0
        connection.send(("ready", sim.next_event_time()))
        while True:
            message = connection.recv()
            if message[0] == "finish":
                connection.send(
                    ("result", _pack_result(_finish_payload(sim, executed, config)))
                )
                return
            _tag, end, envelopes = message
            sim.inject(envelopes)
            executed += sim.run_window(end, config.until, config.max_events - executed)
            connection.send(("barrier", sim.drain_outbox(), sim.next_event_time()))
    except BaseException:  # noqa: BLE001 - forwarded to the coordinator
        import traceback

        try:
            connection.send(("error", traceback.format_exc()))
        except OSError:
            pass
    finally:
        connection.close()


class _ProcessWorker:
    """Runs a shard in a child process, talking over a duplex pipe."""

    def __init__(self, config: _WorkerConfig, mp_context) -> None:
        self._parent_conn, child_conn = mp_context.Pipe(duplex=True)
        self._process = mp_context.Process(
            target=_process_worker_main,
            args=(child_conn, config),
            daemon=True,
            name=f"repro-partition-{config.pid}",
        )
        self._process.start()
        child_conn.close()
        self.next_time = self._recv("ready")

    def _recv(self, expected: str):
        try:
            message = self._parent_conn.recv()
        except EOFError:
            raise PartitionError(
                f"partition worker {self._process.name} died unexpectedly"
            ) from None
        if message[0] == "error":
            raise PartitionError(
                f"partition worker {self._process.name} failed:\n{message[1]}"
            )
        if message[0] != expected:
            raise PartitionError(
                f"unexpected {message[0]!r} reply from {self._process.name}"
            )
        return message[1:] if len(message) > 2 else message[1]

    def begin(self, end: float, envelopes: list[PartitionEnvelope]) -> None:
        self._parent_conn.send(("window", end, envelopes))

    def collect(self) -> dict[int, list[PartitionEnvelope]]:
        outbox, self.next_time = self._recv("barrier")
        return outbox

    def finish(self) -> dict[str, Any]:
        self._parent_conn.send(("finish",))
        return _unpack_result(self._recv("result"))

    def close(self) -> None:
        try:
            self._parent_conn.close()
        except OSError:
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)


# ---------------------------------------------------------------------------
# The coordinator
# ---------------------------------------------------------------------------
def _drive_barriers(
    workers: list, lookahead: float, until: Optional[float]
) -> tuple[int, bool]:
    """Run the epoch-barrier protocol to global quiescence (or ``until``).

    Returns ``(barrier_rounds, drained)``; ``drained`` is False when the
    loop stopped because every remaining event lies beyond ``until``.
    """
    pending: dict[int, list[PartitionEnvelope]] = {}
    rounds = 0
    while True:
        times = [w.next_time for w in workers if w.next_time is not None]
        times.extend(
            envelope.delivery_time
            for envelopes in pending.values()
            for envelope in envelopes
        )
        if not times:
            return rounds, True
        start = min(times)
        if until is not None and start > until:
            return rounds, False
        end = start + lookahead
        for index, worker in enumerate(workers):
            worker.begin(end, pending.pop(index, []))
        for worker in workers:
            for destination, envelopes in worker.collect().items():
                pending.setdefault(destination, []).extend(envelopes)
        rounds += 1


def _merge_columnar(results: list[dict[str, Any]]) -> TraceRecorder:
    """K-way merge of the per-partition columnar logs (already sorted).

    Operates row-wise on the columns: each merged row is copied between
    column stores (kind codes verbatim, node ids re-interned) without
    ever materialising a :class:`TraceEvent`.
    """

    def rows(result: dict[str, Any]):
        columns = result["columns"]
        for index, key in enumerate(result["keys"]):
            yield key, columns, index

    merged = EventColumns()
    for _key, columns, index in heapq.merge(
        *(rows(result) for result in results), key=lambda row: row[0]
    ):
        merged.append_row_from(columns, index)
    return TraceRecorder.from_columns(merged)


def _merge_digest(results: list[dict[str, Any]]) -> TraceRecorder:
    """Combine per-partition digest states (no event log anywhere).

    The partial digest sums add (node ownership is disjoint — see
    :func:`~repro.trace.digest.combine_partials`), the streamed metrics
    accumulators merge field-wise, and the few retained outcome events
    k-way merge on their keys exactly like full trace rows would.
    """
    partial = combine_partials(result["digest_partial"] for result in results)
    metrics = StreamingRunMetrics()
    for result in results:
        metrics.merge(result["metrics"])
    retained = [
        event
        for _key, event in heapq.merge(
            *(result["retained"] for result in results), key=lambda pair: pair[0]
        )
    ]
    return TraceRecorder.from_digest_state(
        partial=partial,
        events=sum(result["events"] for result in results),
        retained=retained,
        metrics=metrics,
        end_time=max(result["end_time"] for result in results),
    )


def _merge_traces(results: list[dict[str, Any]]) -> TraceRecorder:
    """Merge per-partition trace payloads into the run's recorder."""
    if results[0]["collection"] == "digest":
        return _merge_digest(results)
    return _merge_columnar(results)


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------
@dataclass
class PartitionedRunResult(DecisionResultMixin):
    """Outcome of a partitioned static run.

    Mirrors :class:`~repro.experiments.runner.RunResult` (same
    :class:`~repro.api.Result` surface, same trace digest as the
    sequential run) without holding a live simulator — the partitions ran
    on workers and are gone.
    """

    graph: KnowledgeGraph
    schedule: Any
    trace: TraceRecorder
    metrics: Any
    decisions: list
    partitions: int
    barrier_rounds: int
    quiescent: bool = True
    specification: Optional[Any] = None
    labels: dict[str, Any] = field(default_factory=dict)

    def check_specification(self, include_liveness: bool = True):
        from ..core.properties import check_all

        self.specification = check_all(
            self.graph,
            self.trace,
            faulty=self.schedule.nodes,
            include_liveness=include_liveness,
        )
        return self.specification

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "run",
            "nodes": len(self.graph),
            "edges": self.graph.edge_count,
            "crashed": json_safe(self.schedule.nodes),
            "quiescent": self.quiescent,
            "partitions": self.partitions,
            "barrier_rounds": self.barrier_rounds,
            "metrics": json_safe(self.metrics),
            "decisions": self._decisions_as_dicts(),
            "decided_views": json_safe(self.decided_views),
            "specification": self._specification_as_dict(),
            "digest": self.digest(),
            "labels": json_safe(self.labels),
        }

    def summary(self) -> str:
        lines = [
            f"nodes={len(self.graph)} edges={self.graph.edge_count} "
            f"crashed={len(self.schedule.nodes)} "
            f"partitions={self.partitions} barriers={self.barrier_rounds}",
            f"messages={self.metrics.messages_sent} "
            f"bytes={self.metrics.bytes_sent} "
            f"speaking_nodes={self.metrics.speaking_nodes}",
            f"decisions={self.metrics.decisions} "
            f"views={self.metrics.decided_views} "
            f"rejections={self.metrics.rejections} "
            f"failed_instances={self.metrics.failed_instances}",
        ]
        for view in sorted(self.decided_views, key=lambda v: sorted(map(repr, v.members))):
            deciders = sorted(repr(d.node) for d in self.decisions_on(view))
            members = sorted(map(repr, view.members))
            lines.append(f"view {members} decided by {deciders}")
        if self.specification is not None:
            status = "holds" if self.specification.holds else "VIOLATED"
            lines.append(f"specification CD1-CD7: {status}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------
def run_partitioned(
    graph: KnowledgeGraph,
    schedule,
    membership=None,
    *,
    partitions: int,
    latency: Optional[LatencyModel] = None,
    failure_detector: Optional[FailureDetectorPolicy] = None,
    seed: int = 0,
    arbitration_enabled: bool = True,
    early_termination: bool = False,
    check: bool = False,
    max_events: int = DEFAULT_MAX_EVENTS,
    until: Optional[float] = None,
    backend: str = "auto",
    collection: str = "trace",
    faults: Optional[FaultModel] = None,
):
    """Run one scenario on the partitioned backend.

    Digest-identical to :func:`~repro.experiments.runner.run_cliff_edge`
    (static) or :func:`~repro.churn.runner.run_churn` (with a
    ``membership`` schedule) for the same inputs, at any partition count.

    ``backend`` selects where shards run: ``"process"`` (one OS process
    per shard — the parallel path), ``"inline"`` (all shards in the
    calling process — no parallelism, but no multiprocessing overhead
    either; what the determinism tests use), or ``"auto"`` (processes
    when the host has more than one CPU and more than one shard).

    ``collection="digest"`` keeps no event log anywhere: workers fold
    digest + metrics as events fire and ship only that state back (zero
    trace bytes cross the process boundary).  The result's ``digest()``
    is bit-identical to a full-trace run.  Digest mode excludes
    ``check=True`` (CD1–CD7 walk the trace) and churn (epoch
    reconstruction walks the trace).
    """
    from ..trace import collect_metrics
    from ..core.properties import extract_decisions

    if backend not in ("auto", "inline", "process"):
        raise PartitionError(f"unknown partition backend {backend!r}")
    if collection not in TraceRecorder.COLLECTIONS:
        raise PartitionError(f"unknown collection mode {collection!r}")
    schedule.validate(graph)
    if membership is not None and membership.events:
        membership.validate(graph, schedule)
    else:
        membership = None
    if collection == "digest":
        if check:
            raise PartitionError(
                "collection='digest' keeps no event log, so the CD1-CD7 "
                "checkers cannot run; use check=False or collection='trace'"
            )
        if membership is not None:
            raise PartitionError(
                "collection='digest' keeps no event log, so churn epoch "
                "reconstruction cannot run; use collection='trace'"
            )
    shards = partition_graph(graph, partitions)
    effective_latency = latency if latency is not None else ConstantLatency(1.0)
    effective_detector = (
        failure_detector if failure_detector is not None else PerfectFailureDetector(1.0)
    )
    _check_failure_detector(effective_detector)
    lookahead = _cross_lookahead(effective_latency, faults)
    if backend == "auto":
        import multiprocessing

        # Stay inline inside any child process (a partitioned spec inside
        # a sweep's pool workers would otherwise fork partitions-per-task
        # extra processes and oversubscribe the host), on single-CPU
        # hosts, and where the fork start method is unavailable.  The
        # digests are backend-independent, so inline is always a safe
        # substitute.
        in_child = (
            multiprocessing.parent_process() is not None
            or multiprocessing.current_process().daemon
        )
        backend = (
            "process"
            if partitions > 1
            and not in_child
            and (os.cpu_count() or 1) > 1
            and _fork_context() is not None
            else "inline"
        )
    configs = [
        _WorkerConfig(
            pid=pid,
            shards=shards,
            graph=graph,
            schedule=schedule,
            membership=membership,
            latency=effective_latency,
            failure_detector=effective_detector,
            seed=seed,
            arbitration_enabled=arbitration_enabled,
            early_termination=early_termination,
            max_events=max_events,
            until=until,
            collection=collection,
            faults=faults,
        )
        for pid in range(partitions)
    ]
    workers: list = []
    try:
        if backend == "process":
            mp_context = _fork_context()
            if mp_context is None:
                raise PartitionError(
                    "the process backend needs the 'fork' start method "
                    "(workers must inherit the parent's hash seed); use "
                    "backend='inline' on this platform"
                )
            workers = [_ProcessWorker(config, mp_context) for config in configs]
        else:
            workers = [_InlineWorker(config) for config in configs]
        rounds, drained = _drive_barriers(workers, lookahead, until)
        results = [worker.finish() for worker in workers]
    finally:
        for worker in workers:
            worker.close()

    trace = _merge_traces(results)
    quiescent = drained and all(result["idle"] for result in results)
    labels = {"partitions": partitions, "partition_backend": backend}
    if collection != "trace":
        labels["collection"] = collection
    if membership is not None:
        from ..churn.epochs import build_epochs
        from ..churn.runner import ChurnRunResult

        result = ChurnRunResult(
            base_graph=graph,
            final_graph=results[0]["graph"],
            schedule=schedule,
            membership=membership,
            trace=trace,
            metrics=collect_metrics(trace),
            decisions=extract_decisions(trace),
            epochs=build_epochs(graph, trace),
            runtime="sim",
            quiescent=quiescent,
            labels=labels,
        )
        if check:
            result.check_specification(include_liveness=quiescent)
        return result
    run_result = PartitionedRunResult(
        graph=graph,
        schedule=schedule,
        trace=trace,
        metrics=collect_metrics(trace),
        decisions=extract_decisions(trace),
        partitions=partitions,
        barrier_rounds=rounds,
        quiescent=quiescent,
        labels=labels,
    )
    if check:
        run_result.check_specification(include_liveness=quiescent)
    return run_result


# ---------------------------------------------------------------------------
# Payload measurement
# ---------------------------------------------------------------------------
def measure_worker_payloads(
    graph: KnowledgeGraph,
    schedule,
    *,
    partitions: int,
    collection: str = "trace",
    latency: Optional[LatencyModel] = None,
    failure_detector: Optional[FailureDetectorPolicy] = None,
    seed: int = 0,
    max_events: int = DEFAULT_MAX_EVENTS,
    until: Optional[float] = None,
) -> dict[str, Any]:
    """Pickled sizes of the per-worker finish payloads for one scenario.

    Runs the scenario on inline workers and measures exactly what each
    worker would have shipped across a process boundary:
    ``payload_bytes`` is the packed wire blob (:func:`_pack_result` —
    what a process worker actually writes to the pipe),
    ``raw_payload_bytes`` the uncompressed pickle of the same payload.
    For ``collection="trace"`` the result also includes the object-trace
    baseline — the pre-columnar ``(key, event)`` object list, pickled
    uncompressed exactly as the old wire format shipped it — so the
    serialization-budget tests and the benchmark can report the trace
    tax against a fixed yardstick.
    """
    if collection not in TraceRecorder.COLLECTIONS:
        raise PartitionError(f"unknown collection mode {collection!r}")
    schedule.validate(graph)
    shards = partition_graph(graph, partitions)
    effective_latency = latency if latency is not None else ConstantLatency(1.0)
    effective_detector = (
        failure_detector if failure_detector is not None else PerfectFailureDetector(1.0)
    )
    _check_failure_detector(effective_detector)
    lookahead = _cross_lookahead(effective_latency)
    configs = [
        _WorkerConfig(
            pid=pid,
            shards=shards,
            graph=graph,
            schedule=schedule,
            membership=None,
            latency=effective_latency,
            failure_detector=effective_detector,
            seed=seed,
            arbitration_enabled=True,
            early_termination=False,
            max_events=max_events,
            until=until,
            collection=collection,
        )
        for pid in range(partitions)
    ]
    workers = [_InlineWorker(config) for config in configs]
    _drive_barriers(workers, lookahead, until)
    results = [worker.finish() for worker in workers]
    payload_bytes = [len(_pack_result(result)) for result in results]
    raw_payload_bytes = [
        len(pickle.dumps(result, pickle.HIGHEST_PROTOCOL)) for result in results
    ]
    measured: dict[str, Any] = {
        "collection": collection,
        "partitions": partitions,
        "payload_bytes": payload_bytes,
        "total_payload_bytes": sum(payload_bytes),
        "raw_payload_bytes": raw_payload_bytes,
        "total_raw_payload_bytes": sum(raw_payload_bytes),
    }
    if collection == "trace":
        baseline_bytes = []
        for result in results:
            columns = result["columns"]
            baseline = {
                key: value
                for key, value in result.items()
                if key not in ("keys", "columns")
            }
            baseline["annotated"] = list(zip(result["keys"], iter(columns)))
            baseline_bytes.append(
                len(pickle.dumps(baseline, pickle.HIGHEST_PROTOCOL))
            )
        measured["object_baseline_bytes"] = baseline_bytes
        measured["total_object_baseline_bytes"] = sum(baseline_bytes)
    return measured
