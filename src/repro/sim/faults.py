"""Deterministic link-fault models: loss, duplication, reordering.

The paper assumes reliable FIFO channels (§2.2).  This module is the
seam that *breaks* that assumption on purpose — and deterministically —
so fault sweeps are as reproducible as fault-free runs:

* :class:`LossyLinks` — drop each message independently with a per-link
  probability;
* :class:`DuplicatingLinks` — occasionally deliver a bounded number of
  extra copies of a message;
* :class:`ReorderingLinks` — delay individual messages by a bounded
  extra offset, letting later sends on the same channel overtake them
  (a bounded-delay permutation window);
* :func:`compose_faults` — chain any of the above into one model.

Determinism is the load-bearing property.  A fault decision must be a
pure function of the *message's identity*, never of execution order:

* the sequential simulator, the partitioned simulator (at any partition
  count) and the asyncio runtimes all consult the model at their send
  sites, so the decision for "the ``n``-th message on channel
  ``(source, target)``" has to come out identical everywhere;
* the simulator's shared seeded RNG (``Simulator._rng``) advances in
  *schedule order*, which differs between backends — drawing fault
  randomness from it would both fork the fault pattern across backends
  and desynchronise the latency/detector stream.

So every decision uses a dedicated :func:`message_rng`: a fresh
``random.Random`` seeded from a BLAKE2 hash of the canonical string
``seed|stage|repr(source)|repr(target)|sequence``.  Hashing text keeps
the stream independent of ``PYTHONHASHSEED`` and of which process asks;
keying by per-channel sequence number keeps it independent of global
interleaving (FIFO channels make per-channel send order itself
deterministic).

Fault models map the *base* delivery (the FIFO-clamped delivery time
the fault-free simulator would use) to a tuple of **extra delay
offsets**, one per delivered copy: ``()`` means the message is lost,
``(0.0,)`` is an undisturbed delivery, ``(0.0, 0.0)`` a duplicate, and
``(w,)`` a delivery delayed by ``w``.  Offsets are non-negative by
construction — faults only ever *delay* a message, never accelerate it
— which is what keeps the partitioned backend's conservative lookahead
(minimum cross-partition latency) valid under any reorder window; see
``repro.sim.partition._cross_lookahead``.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable


class FaultsError(ValueError):
    """Raised when a fault model is misconfigured."""


def message_rng(
    seed: int, stage: str, source: Any, target: Any, sequence: int
) -> random.Random:
    """A dedicated RNG for one (message, fault-stage) decision.

    Seeded from a BLAKE2 hash of a canonical text key, so the stream is
    a pure function of ``(seed, stage, source, target, sequence)`` —
    identical across processes, ``PYTHONHASHSEED`` values, partition
    counts and runtimes.
    """
    text = f"{seed}|{stage}|{source!r}|{target!r}|{sequence}"
    value = int.from_bytes(
        hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest(), "big"
    )
    return random.Random(value)


@runtime_checkable
class FaultModel(Protocol):
    """What a link-fault model must provide."""

    def deliveries(
        self, source: Any, target: Any, sequence: int, seed: int = 0
    ) -> tuple[float, ...]:
        """Extra-delay offsets of the delivered copies of one message.

        ``sequence`` is the 0-based send index on the FIFO channel
        ``(source, target)``; ``seed`` is the run's seed (combined with
        the model's own ``seed`` field).  An empty tuple drops the
        message; each returned offset is added to the base delivery
        time of one delivered copy.  All offsets are ``>= 0``.
        """
        ...

    def max_extra_delay(self) -> float:
        """Upper bound on any offset this model can return."""
        ...


class _SingleStage:
    """Mixin turning one ``apply(offsets, rng)`` stage into a model."""

    def deliveries(
        self, source: Any, target: Any, sequence: int, seed: int = 0
    ) -> tuple[float, ...]:
        rng = message_rng(
            seed + getattr(self, "seed", 0),
            type(self).__name__,
            source,
            target,
            sequence,
        )
        return self.apply((0.0,), rng)  # type: ignore[attr-defined]


def _check_probability(name: str, value: float, upper_inclusive: bool = True) -> None:
    limit_ok = value <= 1.0 if upper_inclusive else value < 1.0
    if not (isinstance(value, (int, float)) and 0.0 <= value and limit_ok):
        bound = "1" if upper_inclusive else "1 (exclusive)"
        raise FaultsError(f"{name} must be a probability in [0, {bound}], got {value!r}")


@dataclass(frozen=True)
class LossyLinks(_SingleStage):
    """Drop each message independently with probability ``rate``.

    ``rate`` must be ``< 1``: a channel that drops *everything* makes
    every liveness question vacuous and is almost always a configuration
    mistake.  The FIFO slot of a dropped message is still consumed (the
    loss happens in the network, after the send), so turning losses on
    never perturbs the delivery times of the surviving messages.
    """

    rate: float
    seed: int = 0

    def __post_init__(self) -> None:
        _check_probability("loss rate", self.rate, upper_inclusive=False)
        if not isinstance(self.seed, int):
            raise FaultsError(f"fault seed must be an int, got {self.seed!r}")

    def apply(self, offsets: tuple[float, ...], rng: random.Random) -> tuple[float, ...]:
        return tuple(offset for offset in offsets if rng.random() >= self.rate)

    def max_extra_delay(self) -> float:
        return 0.0


@dataclass(frozen=True)
class DuplicatingLinks(_SingleStage):
    """With probability ``rate``, deliver ``copies`` copies of a message.

    Copies share the original's delivery time (the scheduler's
    deterministic tie-break orders them), so duplication perturbs *what*
    arrives, never *when*.  ``copies`` bounds the blow-up: a duplicated
    message yields exactly ``copies`` deliveries, never more.
    """

    rate: float
    copies: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        _check_probability("duplication rate", self.rate)
        if not isinstance(self.copies, int) or self.copies < 2:
            raise FaultsError(f"copies must be an int >= 2, got {self.copies!r}")
        if not isinstance(self.seed, int):
            raise FaultsError(f"fault seed must be an int, got {self.seed!r}")

    def apply(self, offsets: tuple[float, ...], rng: random.Random) -> tuple[float, ...]:
        out: list[float] = []
        for offset in offsets:
            if rng.random() < self.rate:
                out.extend([offset] * self.copies)
            else:
                out.append(offset)
        return tuple(out)

    def max_extra_delay(self) -> float:
        return 0.0


@dataclass(frozen=True)
class ReorderingLinks(_SingleStage):
    """Delay each message by an extra ``uniform(0, window)`` with
    probability ``rate``, breaking FIFO order within a bounded window.

    The offset is *added* to the FIFO-clamped base delivery time and the
    channel's FIFO clock is advanced by the base time only, so a delayed
    message can be overtaken by at most ``window`` time units of later
    traffic — a bounded-delay permutation, not arbitrary reordering.
    Offsets are never negative, which keeps the partitioned backend's
    minimum-latency lookahead sound (see ``_cross_lookahead``).
    """

    window: float
    rate: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not (isinstance(self.window, (int, float)) and self.window > 0):
            raise FaultsError(f"reorder window must be > 0, got {self.window!r}")
        _check_probability("reorder rate", self.rate)
        if not isinstance(self.seed, int):
            raise FaultsError(f"fault seed must be an int, got {self.seed!r}")

    def apply(self, offsets: tuple[float, ...], rng: random.Random) -> tuple[float, ...]:
        return tuple(
            offset + rng.uniform(0.0, self.window) if rng.random() < self.rate else offset
            for offset in offsets
        )

    def max_extra_delay(self) -> float:
        return float(self.window)


@dataclass(frozen=True)
class ComposedFaults:
    """Several fault stages applied in order to each message.

    Every stage draws from its own :func:`message_rng` stream (keyed by
    stage position and class), so adding a stage never perturbs the
    decisions of the others — ``loss=0.1`` drops the same messages
    whether or not duplication is also enabled.
    """

    stages: tuple[Any, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise FaultsError("ComposedFaults needs at least one stage")
        for stage in self.stages:
            if not callable(getattr(stage, "apply", None)):
                raise FaultsError(f"{stage!r} is not a fault stage (no apply method)")
        object.__setattr__(self, "stages", tuple(self.stages))

    def deliveries(
        self, source: Any, target: Any, sequence: int, seed: int = 0
    ) -> tuple[float, ...]:
        offsets: tuple[float, ...] = (0.0,)
        for position, stage in enumerate(self.stages):
            if not offsets:
                break
            rng = message_rng(
                seed + getattr(stage, "seed", 0),
                f"{position}:{type(stage).__name__}",
                source,
                target,
                sequence,
            )
            offsets = stage.apply(offsets, rng)
        return offsets

    def max_extra_delay(self) -> float:
        return sum(stage.max_extra_delay() for stage in self.stages)


def compose_faults(*models: Any) -> Any:
    """Chain fault models into one (a single model passes through)."""
    if not models:
        raise FaultsError("compose_faults needs at least one model")
    if len(models) == 1:
        return models[0]
    stages: list[Any] = []
    for model in models:
        if isinstance(model, ComposedFaults):
            stages.extend(model.stages)
        else:
            stages.append(model)
    return ComposedFaults(tuple(stages))


#: Models the partitioned backend accepts: their decisions are pure
#: functions of message identity (no shared-RNG draws at send sites) and
#: their offsets are non-negative, so per-channel lockstep and the
#: minimum-latency lookahead both survive sharding.
_PARTITION_SAFE = (LossyLinks, DuplicatingLinks, ReorderingLinks, ComposedFaults)


def check_partition_safe(faults: Any) -> None:
    """Reject fault models the partitioned backend cannot shard.

    Raises :class:`FaultsError` unless ``faults`` (and, for a
    composition, every stage) is one of the built-in keyed-RNG models.
    A custom model could consume shared randomness at send sites or
    return negative offsets; either would silently fork the partitioned
    trace from the sequential one, so unknown models fail loudly.
    """
    if faults is None:
        return
    if isinstance(faults, ComposedFaults):
        for stage in faults.stages:
            if not isinstance(stage, _PARTITION_SAFE[:-1]):
                raise FaultsError(
                    f"fault stage {type(stage).__name__} is not supported by "
                    "the partitioned backend (needs keyed-RNG decisions and "
                    "non-negative offsets)"
                )
        return
    if not isinstance(faults, _PARTITION_SAFE[:-1]):
        raise FaultsError(
            f"fault model {type(faults).__name__} is not supported by the "
            "partitioned backend (needs keyed-RNG decisions and "
            "non-negative offsets)"
        )
