"""Deterministic discrete-event scheduler.

A tiny future-event-list scheduler: callbacks are executed in increasing
timestamp order, ties broken by insertion order, so a run is a pure
function of (topology, processes, crash schedule, latency model, seed).
Determinism is what makes the hypothesis-based property tests and the
EXPERIMENTS.md numbers reproducible.

Two throughput optimisations keep large runs (4096-node tori, high churn
rates) cheap without changing the observable order of callbacks:

* **lazy-deletion compaction** — cancelled entries are left in the heap
  (cancelling is O(1)) but counted; once they outnumber the live entries
  the heap is rebuilt without them, so a workload that cancels heavily
  (failure-detector churn) keeps the heap — and every push/pop — bounded
  by the number of *live* events;
* **batched same-timestamp dispatch** — :meth:`EventScheduler.run` drains
  every callback sharing one timestamp in a single inner loop with the
  heap operations bound to locals, skipping the per-event peek/bounds
  bookkeeping of the naive loop.  Callbacks scheduled *at the current
  timestamp* by a running callback join the tail of the same batch, which
  is exactly the order the unbatched loop would produce.

:class:`KeyedEventScheduler` is the partitioned-backend variant: it
replaces the insertion-order tie-break with caller-supplied total-order
keys, so shards of one run (:mod:`repro.sim.partition`) can reproduce the
sequential interleaving without observing global insertion order, and
its :meth:`~KeyedEventScheduler.run_window` runs one barrier window
``[now, end)`` at a time.  The virtual-time asyncio loop
(:mod:`repro.vtime.loop`) is the other keyed-scheduler client: it mints
the same genealogical keys for asyncio callbacks, which is what makes
the real runtime's wakeup order — and hence its trace digest —
deterministic.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class SchedulerError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


#: Below this heap size compaction is pointless (the rebuild costs more
#: than the dead entries ever will).
_COMPACTION_MIN_QUEUE = 64


class _ScheduledEntry:
    """One heap entry: ``(time, sequence)`` ordered, payload uncompared."""

    __slots__ = ("time", "sequence", "callback", "cancelled", "pending")

    def __init__(self, time: float, sequence: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.sequence = sequence
        self.callback = callback
        self.cancelled = False
        #: True while the entry sits unexecuted in the heap; cleared when
        #: it is popped for execution, so a late ``cancel()`` cannot
        #: corrupt the lazy-deletion counter.
        self.pending = True

    def __lt__(self, other: "_ScheduledEntry") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.sequence < other.sequence


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; supports cancel."""

    __slots__ = ("_entry", "_scheduler")

    def __init__(self, entry: _ScheduledEntry, scheduler: "EventScheduler") -> None:
        self._entry = entry
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent).

        Cancelling after the callback already executed is a no-op, as it
        was in the scan-based implementation — the entry is gone from the
        heap, so it must not count towards lazy deletion.
        """
        entry = self._entry
        if entry.pending and not entry.cancelled:
            entry.cancelled = True
            entry.callback = _CANCELLED_CALLBACK
            self._scheduler._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        return self._entry.time


def _CANCELLED_CALLBACK() -> None:  # pragma: no cover - never invoked
    raise SchedulerError("cancelled callback invoked")


class EventScheduler:
    """A future event list processed in timestamp order.

    Parameters
    ----------
    batch_dispatch:
        When True (the default), :meth:`run` uses the batched
        same-timestamp fast path.  The unbatched reference loop is kept
        behind ``batch_dispatch=False`` so the determinism regression
        suite can assert both produce identical traces.
    """

    __slots__ = ("_queue", "_next_sequence", "_now", "_processed", "_cancelled", "_batch_dispatch")

    def __init__(self, batch_dispatch: bool = True) -> None:
        self._queue: list[_ScheduledEntry] = []
        self._next_sequence = 0
        self._now = 0.0
        self._processed = 0
        #: Cancelled entries still sitting in the heap (lazy deletion).
        self._cancelled = 0
        self._batch_dispatch = batch_dispatch

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-executed, not-cancelled callbacks."""
        return len(self._queue) - self._cancelled

    @property
    def heap_size(self) -> int:
        """Raw heap length, cancelled entries included (observability)."""
        return len(self._queue)

    @property
    def batch_dispatch(self) -> bool:
        """Whether :meth:`run` uses the batched fast path."""
        return self._batch_dispatch

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule in the past (delay={delay})")
        return self._push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        return self._push(time, callback)

    def _push(self, time: float, callback: Callable[[], None]) -> EventHandle:
        entry = _ScheduledEntry(time, self._next_sequence, callback)
        self._next_sequence += 1
        heapq.heappush(self._queue, entry)
        return EventHandle(entry, self)

    # ------------------------------------------------------------------
    # Lazy-deletion bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        self._cancelled += 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Rebuild the heap once cancelled entries exceed the live ones.

        Rebuilding preserves the ``(time, sequence)`` order exactly —
        ``heapify`` over the surviving entries yields the same pop order —
        so compaction is invisible to the event stream.  The rebuild is
        done *in place* (slice assignment) because :meth:`run` holds a
        local reference to the queue list while callbacks — which may
        cancel events and trigger compaction — are executing.
        """
        queue = self._queue
        if len(queue) < _COMPACTION_MIN_QUEUE or self._cancelled * 2 <= len(queue):
            return
        queue[:] = [entry for entry in queue if not entry.cancelled]
        heapq.heapify(queue)
        self._cancelled = 0

    def step(self) -> bool:
        """Execute the next pending callback.  Returns False when empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if entry.cancelled:
                self._cancelled -= 1
                continue
            entry.pending = False
            self._now = entry.time
            self._processed += 1
            entry.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue drains, ``until`` is reached, or the budget ends.

        Returns the simulated time when the loop stopped.
        """
        if self._batch_dispatch:
            return self._run_batched(until, max_events)
        return self._run_sequential(until, max_events)

    def _run_batched(self, until: Optional[float], max_events: Optional[int]) -> float:
        """The fast path: drain same-timestamp batches with local bindings."""
        queue = self._queue
        pop = heapq.heappop
        executed = 0
        budget = max_events if max_events is not None else -1
        while queue:
            if budget >= 0 and executed >= budget:
                break
            head = queue[0]
            if head.cancelled:
                pop(queue)
                self._cancelled -= 1
                continue
            batch_time = head.time
            if until is not None and batch_time > until:
                self._now = until
                break
            self._now = batch_time
            # Drain the whole timestamp; callbacks scheduling at
            # ``batch_time`` append to this very batch (higher sequence).
            while queue and queue[0].time == batch_time:
                entry = pop(queue)
                if entry.cancelled:
                    self._cancelled -= 1
                    continue
                entry.pending = False
                self._processed += 1
                executed += 1
                entry.callback()
                if budget >= 0 and executed >= budget:
                    break
        return self._now

    def _run_sequential(self, until: Optional[float], max_events: Optional[int]) -> float:
        """The reference loop (one peek + one step per event)."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_entry = self._peek()
            if next_entry is None:
                break
            if until is not None and next_entry.time > until:
                self._now = until
                break
            if not self.step():
                break
            executed += 1
        return self._now

    def _peek(self) -> Optional[_ScheduledEntry]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled -= 1
        return self._queue[0] if self._queue else None

    def next_event_time(self) -> Optional[float]:
        """Timestamp of the next pending event, or ``None`` when idle."""
        entry = self._peek()
        return entry.time if entry is not None else None

    def is_idle(self) -> bool:
        """True when no non-cancelled events remain."""
        return self._peek() is None


class _KeyedEntry(_ScheduledEntry):
    """A heap entry ordered by ``(time, key)`` instead of insertion order."""

    __slots__ = ("key",)

    def __init__(
        self, time: float, sequence: int, callback: Callable[[], None], key: tuple
    ) -> None:
        super().__init__(time, sequence, callback)
        self.key = key

    def __lt__(self, other: "_ScheduledEntry") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.key < other.key  # type: ignore[attr-defined]


class KeyedEventScheduler(EventScheduler):
    """An event list tie-broken by explicit total-order keys.

    The sequential :class:`EventScheduler` breaks timestamp ties by
    insertion order — a *global* property no single partition of a
    partitioned run can observe.  This variant instead orders equal-time
    entries by a caller-supplied ``key``: the partitioned backend mints
    genealogical keys (see :mod:`repro.sim.partition`) that are
    order-isomorphic to the sequential run's insertion order, so events
    received from other partitions at a barrier interleave exactly where
    the sequential run would have placed them.

    The plain :meth:`schedule` / :meth:`schedule_at` entry points are
    disabled: mixing keyed and insertion-ordered entries in one heap would
    silently corrupt the total order, so an un-refactored call site fails
    loudly instead.

    ``context``, when set, is the owning partition simulator:
    :meth:`run_window` stores each entry's ``(time, key)`` into it before
    invoking the callback (resetting the per-event child/emit counters),
    which keeps the per-event cost to four attribute stores instead of a
    wrapper closure per scheduled event.
    """

    __slots__ = ("context",)

    def __init__(self, batch_dispatch: bool = True) -> None:
        super().__init__(batch_dispatch=batch_dispatch)
        self.context = None

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        raise SchedulerError("KeyedEventScheduler requires schedule_keyed()")

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        raise SchedulerError("KeyedEventScheduler requires schedule_keyed()")

    def schedule_keyed(
        self, time: float, key: tuple, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at absolute ``time``, tie-broken by ``key``."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        entry = _KeyedEntry(time, self._next_sequence, callback, key)
        self._next_sequence += 1
        heapq.heappush(self._queue, entry)
        return EventHandle(entry, self)

    def run_window(
        self,
        bound: float,
        inclusive: bool = False,
        max_events: Optional[int] = None,
    ) -> int:
        """Run one barrier window: events with ``time < bound`` (or
        ``<= bound`` when ``inclusive`` — the final, ``until``-clamped
        window).  Events at exactly the exclusive ``bound`` must wait,
        because a cross-partition envelope may still arrive for that
        timestamp at the barrier.  Unlike :meth:`run`, the clock is *not*
        advanced to the bound when the loop stops early — ``now`` stays at
        the last executed event, so a later window (or an injected
        envelope) can still schedule at any time ``>= now``.

        Returns the number of callbacks executed."""
        queue = self._queue
        pop = heapq.heappop
        ctx = self.context
        executed = 0
        budget = max_events if max_events is not None else -1
        try:
            while queue:
                head = queue[0]
                if head.cancelled:
                    pop(queue)
                    self._cancelled -= 1
                    continue
                time = head.time
                if (time > bound) if inclusive else (time >= bound):
                    break
                if budget >= 0 and executed >= budget:
                    break
                entry = pop(queue)
                entry.pending = False
                self._now = time
                self._processed += 1
                executed += 1
                if ctx is not None:
                    ctx._ctx_time = time
                    ctx._ctx_key = entry.key  # type: ignore[attr-defined]
                    ctx._ctx_children = 0
                    ctx._ctx_emits = 0
                entry.callback()
        finally:
            if ctx is not None:
                # Between windows (envelope injection, barrier idling) no
                # event is executing; minting and emission must see that.
                ctx._ctx_key = None
        return executed
