"""Deterministic discrete-event scheduler.

A tiny future-event-list scheduler: callbacks are executed in increasing
timestamp order, ties broken by insertion order, so a run is a pure
function of (topology, processes, crash schedule, latency model, seed).
Determinism is what makes the hypothesis-based property tests and the
EXPERIMENTS.md numbers reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional


class SchedulerError(RuntimeError):
    """Raised on scheduler misuse (e.g. scheduling in the past)."""


@dataclass(order=True)
class _ScheduledEntry:
    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by :meth:`EventScheduler.schedule`; supports cancel."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _ScheduledEntry) -> None:
        self._entry = entry

    def cancel(self) -> None:
        """Prevent the callback from running (idempotent)."""
        self._entry.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    @property
    def time(self) -> float:
        return self._entry.time


class EventScheduler:
    """A future event list processed in timestamp order."""

    def __init__(self) -> None:
        self._queue: list[_ScheduledEntry] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-yet-executed, not-cancelled callbacks."""
        return sum(1 for entry in self._queue if not entry.cancelled)

    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SchedulerError(f"cannot schedule in the past (delay={delay})")
        entry = _ScheduledEntry(self._now + delay, next(self._sequence), callback)
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time."""
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        entry = _ScheduledEntry(time, next(self._sequence), callback)
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def step(self) -> bool:
        """Execute the next pending callback.  Returns False when empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            if entry.cancelled:
                continue
            self._now = entry.time
            self._processed += 1
            entry.callback()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run until the queue drains, ``until`` is reached, or the budget ends.

        Returns the simulated time when the loop stopped.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            next_entry = self._peek()
            if next_entry is None:
                break
            if until is not None and next_entry.time > until:
                self._now = until
                break
            if not self.step():
                break
            executed += 1
        return self._now

    def _peek(self) -> Optional[_ScheduledEntry]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    def is_idle(self) -> bool:
        """True when no non-cancelled events remain."""
        return self._peek() is None
