"""Deterministic discrete-event simulation substrate."""

from .events import EventKind, TraceEvent, payload_size
from .failure_detector import (
    FailureDetectorPolicy,
    JitteredFailureDetector,
    PerfectFailureDetector,
    ScriptedFailureDetector,
)
from .latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    PerPairLatency,
    UniformLatency,
)
from .network import DEFAULT_MAX_EVENTS, SimulationError, Simulator
from .process import IdleProcess, Process, ProcessContext
from .scheduler import EventHandle, EventScheduler, SchedulerError

__all__ = [
    "EventKind",
    "TraceEvent",
    "payload_size",
    "FailureDetectorPolicy",
    "PerfectFailureDetector",
    "JitteredFailureDetector",
    "ScriptedFailureDetector",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "PerPairLatency",
    "Simulator",
    "SimulationError",
    "DEFAULT_MAX_EVENTS",
    "Process",
    "ProcessContext",
    "IdleProcess",
    "EventScheduler",
    "EventHandle",
    "SchedulerError",
]
