"""Deterministic discrete-event simulation substrate.

Determinism invariants (what every module in this package preserves):

* a run is a pure function of ``(topology, processes, schedules, latency
  model, failure-detector policy, seed)`` — all nondeterminism lives in
  the seeded RNG, and handlers are never invoked outside the event loop;
* events execute in ``(timestamp, insertion order)`` — the scheduler's
  batched fast path, lazy-deletion compaction, and the keyed scheduler
  of the partitioned backend are all invisible to that order;
* channels are reliable and FIFO per ordered node pair (the delivery
  clamp in :meth:`Simulator._send`), crashed nodes stop instantly, and
  the failure detector is perfect — unless a :mod:`repro.sim.faults`
  model is installed, which breaks the channel assumptions *on purpose*
  with decisions that are themselves a pure function of the seed and
  each message's identity;
* the partitioned backend (:mod:`repro.sim.partition`) splits one run
  across shard schedulers and merges a trace *bit-identical* to the
  sequential simulator's — see that module's docstring for how.
"""

from .events import EventKind, PartitionEnvelope, TraceEvent, payload_size
from .failure_detector import (
    FailureDetectorPolicy,
    JitteredFailureDetector,
    PerfectFailureDetector,
    ScriptedFailureDetector,
)
from .faults import (
    ComposedFaults,
    DuplicatingLinks,
    FaultModel,
    FaultsError,
    LossyLinks,
    ReorderingLinks,
    compose_faults,
)
from .latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    PerPairLatency,
    UniformLatency,
)
from .network import DEFAULT_MAX_EVENTS, SimulationError, Simulator
from .process import IdleProcess, Process, ProcessContext
from .scheduler import (
    EventHandle,
    EventScheduler,
    KeyedEventScheduler,
    SchedulerError,
)

__all__ = [
    "EventKind",
    "TraceEvent",
    "PartitionEnvelope",
    "payload_size",
    "FailureDetectorPolicy",
    "PerfectFailureDetector",
    "JitteredFailureDetector",
    "ScriptedFailureDetector",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "PerPairLatency",
    "FaultModel",
    "FaultsError",
    "LossyLinks",
    "DuplicatingLinks",
    "ReorderingLinks",
    "ComposedFaults",
    "compose_faults",
    "Simulator",
    "SimulationError",
    "DEFAULT_MAX_EVENTS",
    "Process",
    "ProcessContext",
    "IdleProcess",
    "EventScheduler",
    "KeyedEventScheduler",
    "EventHandle",
    "SchedulerError",
]
