"""Event records shared by the simulator and the trace machinery.

Every observable action of a run — a message being sent or delivered, a
node crashing, a failure-detector notification, a proposal, a rejection, a
decision — is recorded as a :class:`TraceEvent`.  The offline property
checkers (:mod:`repro.core.properties`) and the experiment metrics
(:mod:`repro.trace.metrics`) work exclusively on these records, so they are
independent of which runtime (simulator or asyncio) produced them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from ..graph import NodeId


class EventKind(enum.Enum):
    """The kinds of events a run can produce."""

    #: A node started executing the protocol (the paper's ``init`` event).
    NODE_STARTED = "node_started"
    #: A node crashed (fault injection).
    NODE_CRASHED = "node_crashed"
    #: A previously crashed node recovered and rejoined (churn).
    NODE_RECOVERED = "node_recovered"
    #: A brand-new node joined the system (churn).
    NODE_JOINED = "node_joined"
    #: A node left the system gracefully (churn).
    NODE_LEFT = "node_left"
    #: The membership service notified a subscriber of a join/recover/leave.
    MEMBERSHIP_NOTIFIED = "membership_notified"
    #: A failure detector notified a subscriber of a crash.
    CRASH_NOTIFIED = "crash_notified"
    #: A node subscribed to crash notifications for a set of targets.
    CRASH_MONITORED = "crash_monitored"
    #: A point-to-point message was handed to the network.
    MESSAGE_SENT = "message_sent"
    #: A point-to-point message was delivered to its destination.
    MESSAGE_DELIVERED = "message_delivered"
    #: A message was dropped (destination crashed before delivery).
    MESSAGE_DROPPED = "message_dropped"
    #: A node proposed a view (started a consensus instance).
    VIEW_PROPOSED = "view_proposed"
    #: A node rejected a lower-ranked view.
    VIEW_REJECTED = "view_rejected"
    #: A node completed a round of a consensus instance.
    ROUND_COMPLETED = "round_completed"
    #: A consensus attempt failed and the node reset (line 37).
    INSTANCE_FAILED = "instance_failed"
    #: A node decided on a view (the ``decide`` output event).
    DECIDED = "decided"
    #: Free-form application or baseline event.
    CUSTOM = "custom"
    # New kinds are appended after CUSTOM: columnar trace storage encodes
    # kinds by enum-definition position (see repro.trace.columns), so
    # inserting one mid-list would silently re-code every pickled trace.
    #: An injected link fault dropped a message (repro.sim.faults).
    MESSAGE_LOST = "message_lost"
    #: An injected link fault delivered extra copies of a message.
    MESSAGE_DUPLICATED = "message_duplicated"


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event of a run.

    Attributes
    ----------
    time:
        Simulated time (or wall-clock offset for the asyncio runtime).
    kind:
        The :class:`EventKind`.
    node:
        The node at which the event happened (``None`` for global events).
    peer:
        The other endpoint for message / notification events.
    payload:
        Event-specific data: the message for send/deliver, the view for
        proposals and decisions, the decision value for DECIDED, …
    detail:
        Optional free-form metadata (round numbers, byte sizes, labels).
    """

    time: float
    kind: EventKind
    node: Optional[NodeId] = None
    peer: Optional[NodeId] = None
    payload: Any = None
    detail: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        """A one-line human-readable description (used by example scripts)."""
        parts = [f"t={self.time:.3f}", self.kind.value]
        if self.node is not None:
            parts.append(f"node={self.node!r}")
        if self.peer is not None:
            parts.append(f"peer={self.peer!r}")
        if self.payload is not None:
            parts.append(f"payload={self.payload!r}")
        if self.detail:
            parts.append(f"detail={self.detail!r}")
        return " ".join(parts)


@dataclass(frozen=True)
class PartitionEnvelope:
    """A partition-crossing message of the partitioned simulator backend.

    When a node owned by one partition sends to a node owned by another,
    the sending partition computes the delivery exactly as the sequential
    simulator would — same latency sample, same per-channel FIFO clamp,
    same capture of the target's incarnation at send time — and wraps the
    result in one of these instead of scheduling it locally.  Envelopes
    are exchanged at the deterministic epoch barriers of
    :mod:`repro.sim.partition` and injected into the destination
    partition's keyed scheduler, where ``key`` (the genealogical order key
    minted at the send site) slots the delivery into exactly the position
    the sequential run's insertion order would have given it.

    Envelopes must pickle: under the process backend they cross a real
    process boundary.  Payloads are the protocol's own (frozen, value
    semantic) message dataclasses, so a pickle round-trip preserves both
    behaviour and the canonical trace encoding.
    """

    #: Absolute simulated delivery time (computed by the *sender*).
    delivery_time: float
    #: Genealogical order key of the delivery event (see partition.py).
    key: tuple
    #: Sending node (owned by the emitting partition).
    source: NodeId
    #: Destination node (owned by the receiving partition).
    target: NodeId
    #: The message object itself.
    payload: Any
    #: The target's incarnation as known at send time; the destination
    #: drops the delivery if the target has since re-incarnated, exactly
    #: like the sequential simulator's in-flight-message guard.
    target_incarnation: int = 0


def payload_size(payload: Any) -> int:
    """A deterministic byte-size estimate of a message payload.

    The simulator does not serialise messages; for bandwidth metrics we
    charge the length of a canonical ``repr``.  This is crude but stable,
    monotone in the amount of information carried (opinion vectors grow
    with the border size), and identical across runtimes, which is all the
    locality experiments need.
    """
    if payload is None:
        return 0
    sizer = getattr(payload, "wire_size", None)
    if callable(sizer):
        return int(sizer())
    return len(repr(payload))
