"""Transport-agnostic process model.

The paper specifies the protocol in a mono-threaded event-based model
(§2.3): a node reacts to ``init``, ``crash`` and message-delivery events,
and triggers ``multicast`` / ``monitorCrash`` / ``decide`` events of its
own.  We mirror that model with two small abstractions:

* :class:`Process` — the behaviour of a node: three event handlers.
* :class:`ProcessContext` — the services a runtime offers a process while
  it handles an event (send, multicast, subscribe to crashes, read the
  clock, record protocol-level trace events).

The same :class:`Process` subclass (e.g.
:class:`repro.core.protocol.CliffEdgeNode`) runs unchanged on the
deterministic simulator (:mod:`repro.sim.network`) and on the asyncio
runtime (:mod:`repro.runtime`).
"""

from __future__ import annotations

import abc
from collections.abc import Iterable
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

from ..graph import KnowledgeGraph, NodeId
from .events import EventKind


@dataclass(frozen=True)
class MembershipChange:
    """A membership event as announced to a live process.

    The churn runtimes (:mod:`repro.sim.network`, :mod:`repro.runtime`)
    deliver one of these through :meth:`Process.on_membership` whenever a
    node the process is connected to joins, recovers or leaves.  The
    announcement plays the role of the underlying membership service the
    paper's topology-service assumption implies; like crash notifications
    it arrives after a detector-dependent delay.
    """

    #: One of ``"join"``, ``"recover"``, ``"leave"``.
    kind: str
    #: The node that joined / recovered / left.
    node: NodeId
    #: The node's neighbours in the *new* membership epoch (empty for leave).
    neighbours: frozenset[NodeId] = frozenset()
    #: The node's incarnation number in the new epoch (0 = initial life).
    #: Protocol-level epoch fencing (``CliffEdgeNode``'s instance
    #: generations) uses it to tell state involving the node's *previous*
    #: life from state the fresh incarnation itself created.
    incarnation: int = 0

    @property
    def alive(self) -> bool:
        """True when the change (re)introduces a live node."""
        return self.kind in ("join", "recover")


def resolve_attachment(
    node: NodeId,
    attachment: Any,
    *,
    current: KnowledgeGraph,
    base: KnowledgeGraph,
    crashed: frozenset[NodeId],
    rng: Any,
    error_cls: type[Exception] = ValueError,
) -> frozenset[NodeId]:
    """Resolve a join/recover attachment into a concrete neighbour set.

    Shared by both runtimes so their semantics cannot drift:
    ``attachment`` is ``None`` (keep the node's current edges — only
    meaningful for recoveries), an attachment policy (any object with a
    ``neighbours_for`` method, see :mod:`repro.churn.attachment`), or an
    explicit iterable of neighbour ids.
    """
    if attachment is None:
        if node in current:
            return current.neighbours(node)
        raise error_cls(
            f"joining node {node!r} needs an attachment policy or edge list"
        )
    if hasattr(attachment, "neighbours_for"):
        resolved = attachment.neighbours_for(
            node, current=current, base=base, crashed=crashed, rng=rng
        )
    else:
        resolved = attachment
    return frozenset(resolved)


@runtime_checkable
class ProcessContext(Protocol):
    """Runtime services available to a process while handling an event."""

    node_id: NodeId
    graph: KnowledgeGraph

    def now(self) -> float:
        """Current (simulated or wall-clock) time."""
        ...

    def send(self, target: NodeId, message: Any) -> None:
        """Send a point-to-point message over a reliable FIFO channel."""
        ...

    def multicast(self, targets: Iterable[NodeId], message: Any) -> None:
        """Best-effort multicast: a plain loop of point-to-point sends."""
        ...

    def monitor_crash(self, targets: Iterable[NodeId]) -> None:
        """Subscribe to crash notifications for ``targets`` (the paper's
        ``monitorCrash`` event)."""
        ...

    def set_timer(self, delay: float, tag: Any = None) -> None:
        """Ask the runtime to call ``on_timer(ctx, tag)`` after ``delay``.

        The cliff-edge protocol itself never needs timers (it is purely
        event driven); they exist for baselines and applications built on
        the same substrate (e.g. the global-consensus baseline collects
        crash reports for a fixed window before starting).
        """
        ...

    def record(
        self,
        kind: EventKind,
        payload: Any = None,
        peer: NodeId | None = None,
        **detail: Any,
    ) -> None:
        """Record a protocol-level trace event attributed to this node."""
        ...


class Process(abc.ABC):
    """Behaviour of one node, written against :class:`ProcessContext`.

    Handlers must be deterministic functions of the process state and the
    event; all nondeterminism (scheduling, latencies, crash timing) lives
    in the runtime, which keeps simulator runs reproducible.
    """

    @abc.abstractmethod
    def on_start(self, ctx: ProcessContext) -> None:
        """Handle the ``init`` event (protocol start-up)."""

    @abc.abstractmethod
    def on_crash(self, ctx: ProcessContext, crashed: NodeId) -> None:
        """Handle a ``crash | q`` notification from the failure detector."""

    @abc.abstractmethod
    def on_message(self, ctx: ProcessContext, sender: NodeId, message: Any) -> None:
        """Handle delivery of a point-to-point message."""

    def on_timer(self, ctx: ProcessContext, tag: Any) -> None:
        """Handle a timer set earlier with ``ctx.set_timer`` (default no-op)."""

    def on_membership(self, ctx: ProcessContext, change: MembershipChange) -> None:
        """Handle a membership announcement (default no-op).

        Only runs under churn workloads (:mod:`repro.churn`); processes
        written against the static crash-only model never see one.
        """

    def on_stop(self, ctx: ProcessContext) -> None:
        """Optional hook invoked when the runtime shuts the process down."""


class IdleProcess(Process):
    """A process that does nothing — useful as filler in large topologies.

    Nodes far away from any crashed region never participate in the
    protocol (that is the point of CD3); runs over big graphs can
    instantiate the protocol only on nodes that could possibly border a
    crashed region and use :class:`IdleProcess` elsewhere, or simply use
    the protocol everywhere and rely on it staying silent.
    """

    def __init__(self, node_id: NodeId | None = None) -> None:
        # The node id is accepted (and ignored) so the class can be passed
        # directly as a ``populate()`` factory.
        self.node_id = node_id

    def on_start(self, ctx: ProcessContext) -> None:  # pragma: no cover - trivial
        return None

    def on_crash(self, ctx: ProcessContext, crashed: NodeId) -> None:
        return None

    def on_message(self, ctx: ProcessContext, sender: NodeId, message: Any) -> None:
        return None
