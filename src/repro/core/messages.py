"""Protocol messages.

The only message of Algorithm 1 is the round message
``[r, V, border(V), op]`` (lines 17, 31 and 40): the round number, the
proposed view, the view's border (the instance's participant set) and an
opinion vector.  Rejections reuse the same shape with a vector carrying a
single ``reject`` entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..graph import NodeId, Region
from .opinions import Opinion, is_accept, is_reject


@dataclass(frozen=True)
class RoundMessage:
    """One round message of a cliff-edge consensus instance.

    Attributes
    ----------
    round:
        The round this message belongs to (1-based, as in the paper).
    view:
        The proposed view ``V`` (a crashed region).
    border:
        ``border(V)`` — the participant set of the instance.
    opinions:
        The sender's opinion vector for round ``round - 1`` (or its own
        initial opinion for round 1), as a plain mapping.
    attempt:
        The sender's instance *generation* for this view (churn
        extension; always 0 in the static model).  Membership-epoch
        purges bump it, letting receivers discard stale in-flight
        messages from a closed attempt and adopt restarts they have not
        seen announced yet (see ``CliffEdgeNode.on_message``).
    """

    round: int
    view: Region
    border: frozenset[NodeId]
    opinions: Mapping[NodeId, Opinion] = field(default_factory=dict)
    attempt: int = 0

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ValueError("round numbers are 1-based")
        # Canonical container layout: the border is rebuilt by inserting
        # its elements in repr order and the vector keeps repr key order,
        # so every process sharing the hash seed — including one that
        # received the message through a pickle round trip (the
        # partitioned backend's cross-shard envelopes, whose workers
        # fork) — iterates them identically.  Receivers
        # fold these containers into instance state whose iteration order
        # is observable (multicast fan-out, catch-up reply loops);
        # layout-canonical messages keep that behaviour a pure function of
        # the message *value*.
        object.__setattr__(
            self, "border", frozenset(sorted(self.border, key=repr))
        )
        # Freeze the mapping into a plain dict copy (canonical key order)
        # so the message is genuinely immutable from the recipient's
        # point of view.
        object.__setattr__(
            self,
            "opinions",
            {
                node: opinion
                for node, opinion in sorted(
                    self.opinions.items(), key=lambda item: repr(item[0])
                )
            },
        )

    def __reduce__(self):
        # Unpickle through __init__ so __post_init__ restores the
        # canonical layout (the default dataclass pickling would restore
        # the containers with an arbitrary hash-table layout).
        return (
            type(self),
            (self.round, self.view, self.border, self.opinions, self.attempt),
        )

    def is_rejection(self) -> bool:
        """True when the message carries at least one ``reject`` opinion."""
        return any(is_reject(op) for op in self.opinions.values())

    def known_entries(self) -> int:
        """Number of non-``⊥`` entries carried."""
        return sum(1 for op in self.opinions.values() if op is not None)

    def wire_size(self) -> int:
        """Deterministic byte estimate used by the bandwidth metrics.

        We charge 8 bytes per node identifier referenced (view members,
        border members, vector keys) plus 16 bytes per non-``⊥`` opinion
        (tag + value) plus a fixed 16-byte header.  The constants are
        arbitrary but fixed, so comparisons across runs are meaningful.
        """
        identifier_count = len(self.view.members) + len(self.border) + len(self.opinions)
        known = self.known_entries()
        return 16 + 8 * identifier_count + 16 * known

    def describe(self) -> str:
        """Short human-readable summary used by example scripts."""
        kind = "reject" if self.is_rejection() and self.round == 1 else "round"
        accepts = sum(1 for op in self.opinions.values() if is_accept(op))
        rejects = sum(1 for op in self.opinions.values() if is_reject(op))
        return (
            f"{kind} r={self.round} view={sorted(map(repr, self.view.members))} "
            f"(|border|={len(self.border)}, accepts={accepts}, rejects={rejects})"
        )


@dataclass(frozen=True)
class ApplicationMessage:
    """Envelope for non-protocol payloads (used by baselines and the repair
    application when they piggyback on the same simulator)."""

    topic: str
    body: Any = None

    def wire_size(self) -> int:
        return 16 + len(repr(self.body))
