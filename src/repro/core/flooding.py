"""Flooding uniform consensus over a *fixed* participant set.

The cliff-edge protocol is described by the paper as "primarily a
superposition of flooding uniform consensus instances [8, 13] between the
border nodes of proposed views".  This module provides that classical
building block in isolation:

* a fixed, globally known participant set;
* a perfect failure detector on the participants;
* in round ``r`` every participant multicasts everything it knows (a
  vector of proposals) and waits for a message from every participant it
  does not know to have crashed;
* after ``|participants| - 1`` rounds (or earlier with the classical
  "nothing new learned by anybody" optimisation) every correct participant
  holds the same vector and decides ``pick(vector)``.

The class is used directly by unit tests (as a reference implementation of
the substrate), and by :mod:`repro.baselines.global_consensus`, the
whole-network baseline against which the locality experiments compare.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from ..graph import NodeId
from ..sim.events import EventKind
from ..sim.process import Process, ProcessContext


@dataclass(frozen=True)
class FloodMessage:
    """One round message of the flooding consensus."""

    round: int
    values: Mapping[NodeId, Any] = field(default_factory=dict)
    #: True when the sender asserts it learned nothing new in the previous
    #: round (used by the early-termination optimisation).
    stable: bool = False

    def __post_init__(self) -> None:
        if self.round < 1:
            raise ValueError("round numbers are 1-based")
        object.__setattr__(self, "values", dict(self.values))

    def wire_size(self) -> int:
        return 16 + sum(8 + len(repr(value)) for value in self.values.values())


def pick_minimum(values: Mapping[NodeId, Any]) -> Any:
    """Default decision function: smallest value by ``repr`` (deterministic)."""
    if not values:
        raise ValueError("cannot decide on an empty value vector")
    return min(values.values(), key=repr)


def merge_sets(values: Mapping[NodeId, Any]) -> frozenset:
    """Decision function unioning set-valued proposals (crash-map baseline)."""
    merged: set = set()
    for value in values.values():
        merged.update(value)
    return frozenset(merged)


class FloodingConsensusNode(Process):
    """One participant of a flooding uniform consensus.

    Parameters
    ----------
    node_id:
        This participant's identifier.
    participants:
        The full, fixed participant set (must contain ``node_id``).
    initial_value:
        The value proposed by this participant.
    pick:
        Deterministic decision function applied to the final vector.
    auto_start:
        When True the node starts round 1 in ``on_start``; otherwise the
        caller triggers :meth:`begin` (directly or from a timer).
    early_termination:
        Enable the classical optimisation: once a full exchange adds no new
        information anywhere, decide without running all ``n - 1`` rounds.
    """

    def __init__(
        self,
        node_id: NodeId,
        participants: frozenset[NodeId],
        initial_value: Any,
        pick: Callable[[Mapping[NodeId, Any]], Any] = pick_minimum,
        auto_start: bool = True,
        early_termination: bool = True,
    ) -> None:
        if node_id not in participants:
            raise ValueError("node must belong to the participant set")
        if len(participants) < 1:
            raise ValueError("participant set must not be empty")
        self.node_id = node_id
        self.participants = frozenset(participants)
        self.initial_value = initial_value
        self.pick = pick
        self.auto_start = auto_start
        self.early_termination = early_termination

        self.known: dict[NodeId, Any] = {node_id: initial_value}
        self.round = 0
        self.started = False
        self.decided: Optional[Any] = None
        self.crashed_participants: set[NodeId] = set()
        #: participants heard from, per round.
        self._heard: dict[int, set[NodeId]] = {}
        #: per-round buffered values from the future rounds of fast peers.
        self._pending: dict[int, list[FloodMessage]] = {}
        #: whether anything new was learned in the current round.
        self._learned_something = True
        #: peers that declared stability in the previous round.
        self._stable_peers: dict[int, set[NodeId]] = {}

    # ------------------------------------------------------------------
    @property
    def total_rounds(self) -> int:
        return max(1, len(self.participants) - 1)

    def on_start(self, ctx: ProcessContext) -> None:
        others = self.participants - {self.node_id}
        if others:
            ctx.monitor_crash(others)
        if self.auto_start:
            self.begin(ctx)

    def begin(self, ctx: ProcessContext) -> None:
        """Start round 1 (idempotent)."""
        if self.started or self.decided is not None:
            return
        self.started = True
        self.round = 1
        self._broadcast(ctx)
        self._check_round(ctx)

    def on_crash(self, ctx: ProcessContext, crashed: NodeId) -> None:
        if crashed in self.participants:
            self.crashed_participants.add(crashed)
            if self.started and self.decided is None:
                self._check_round(ctx)

    def on_message(self, ctx: ProcessContext, sender: NodeId, message: Any) -> None:
        if not isinstance(message, FloodMessage):
            return
        if self.decided is not None:
            return
        before = len(self.known)
        for node, value in message.values.items():
            self.known.setdefault(node, value)
        if len(self.known) > before:
            self._learned_something = True
        self._heard.setdefault(message.round, set()).add(sender)
        if message.stable:
            self._stable_peers.setdefault(message.round, set()).add(sender)
        if self.started:
            self._check_round(ctx)

    # ------------------------------------------------------------------
    def _broadcast(self, ctx: ProcessContext) -> None:
        stable = not self._learned_something
        message = FloodMessage(self.round, dict(self.known), stable=stable)
        ctx.multicast(sorted(self.participants, key=repr), message)
        self._learned_something = False

    def _check_round(self, ctx: ProcessContext) -> None:
        while self.decided is None and self.started:
            heard = self._heard.get(self.round, set())
            expected = self.participants - self.crashed_participants
            if expected - heard - {self.node_id} and self.node_id not in heard:
                # Our own round message has not even come back yet.
                return
            if expected - heard:
                return
            everyone_stable = self.early_termination and (
                expected <= self._stable_peers.get(self.round, set())
            )
            if self.round >= self.total_rounds or everyone_stable:
                self.decided = self.pick(dict(self.known))
                ctx.record(
                    EventKind.DECIDED,
                    payload=frozenset(self.known),
                    decision=self.decided,
                    rounds=self.round,
                )
                return
            self.round += 1
            self._broadcast(ctx)

    @property
    def has_decided(self) -> bool:
        return self.decided is not None
