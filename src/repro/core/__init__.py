"""The paper's core contribution: cliff-edge consensus and its checkers."""

from .decisions import (
    DEFAULT_DECISION_POLICY,
    CallbackPolicy,
    ConstantValuePolicy,
    CoordinatorElectionPolicy,
    DecisionPolicy,
    ProposedRepair,
)
from .flooding import (
    FloodMessage,
    FloodingConsensusNode,
    merge_sets,
    pick_minimum,
)
from .messages import ApplicationMessage, RoundMessage
from .opinions import REJECT, Accept, Opinion, OpinionVector, is_accept, is_bottom, is_reject
from .properties import (
    Decision,
    PropertyReport,
    SpecificationReport,
    assert_specification,
    check_all,
    check_border_termination,
    check_integrity,
    check_locality,
    check_progress,
    check_uniform_border_agreement,
    check_view_accuracy,
    check_view_convergence,
    extract_decisions,
)
from .protocol import CliffEdgeNode, ProtocolError

__all__ = [
    "CliffEdgeNode",
    "ProtocolError",
    "RoundMessage",
    "ApplicationMessage",
    "Accept",
    "REJECT",
    "Opinion",
    "OpinionVector",
    "is_accept",
    "is_reject",
    "is_bottom",
    "DecisionPolicy",
    "CoordinatorElectionPolicy",
    "ConstantValuePolicy",
    "CallbackPolicy",
    "ProposedRepair",
    "DEFAULT_DECISION_POLICY",
    "FloodingConsensusNode",
    "FloodMessage",
    "pick_minimum",
    "merge_sets",
    "Decision",
    "PropertyReport",
    "SpecificationReport",
    "check_all",
    "assert_specification",
    "check_integrity",
    "check_view_accuracy",
    "check_locality",
    "check_border_termination",
    "check_uniform_border_agreement",
    "check_view_convergence",
    "check_progress",
    "extract_decisions",
]
