"""The cliff-edge consensus protocol (Algorithm 1 of the paper).

:class:`CliffEdgeNode` is a line-by-line implementation of the paper's
*convergent detection of crashed regions*.  Its structure mirrors the
pseudocode:

====================  =====================================================
Paper                  Here
====================  =====================================================
``init`` (l. 1-4)      :meth:`CliffEdgeNode.on_start`
``crash | q`` (l. 5)   :meth:`CliffEdgeNode.on_crash` (view construction)
l. 12-17               :meth:`_maybe_start_instance` (new consensus instance)
``mDeliver`` (l. 18)   :meth:`CliffEdgeNode.on_message` (updating opinions)
l. 26-31               :meth:`_maybe_reject` / :meth:`_reject`
l. 32-40               :meth:`_maybe_complete_round` (round / decision)
====================  =====================================================

The three ``upon event`` guards over local state (lines 12, 26, 32) are
re-evaluated to a fixpoint after every external event, which matches the
paper's mono-threaded event-based semantics.

Two deliberate, documented deviations from the raw pseudocode:

* **Single-node borders.**  The pseudocode's round bookkeeping implicitly
  assumes ``|border(V)| >= 2`` (it runs ``|border(V)| - 1`` rounds).  When a
  proposed view has exactly one border node, that node is the only
  participant; we run a single round and let it decide as soon as its own
  round-1 message is (self-)delivered.
* **Guard of line 32.**  The paper's guard does not mention ``proposed``;
  taken literally it would keep firing after an instance failed.  Because
  the round counter ``r`` belongs to the node's *active* proposal, we
  additionally require an active proposal (``proposed != ⊥``), which is the
  only reading under which the pseudocode terminates.

Both points are covered by dedicated unit tests.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..graph import (
    DEFAULT_RANKING,
    KnowledgeGraph,
    NodeId,
    Region,
    RegionRanking,
)
from ..sim.events import EventKind
from ..sim.process import MembershipChange, Process, ProcessContext
from .decisions import DEFAULT_DECISION_POLICY, DecisionPolicy
from .messages import RoundMessage
from .opinions import REJECT, Accept, OpinionVector, is_accept, is_reject


class ProtocolError(RuntimeError):
    """Raised when the protocol observes an impossible state (a bug)."""


class CliffEdgeNode(Process):
    """One node of the convergent-detection-of-crashed-regions protocol.

    Parameters
    ----------
    node_id:
        This node's identifier in the knowledge graph.
    decision_policy:
        Provides ``selectValueForView`` and ``deterministicPick``.
    ranking:
        The strict total order ``≺`` on regions; defaults to the paper's
        canonical ranking.
    arbitration_enabled:
        When False the node never rejects lower-ranked views (line 26 is
        disabled).  Only used by the EXP-A1 ablation; the protocol is not
        live without arbitration.
    early_termination:
        Enable the optimisation of the paper's footnote 6: an instance can
        terminate "once a node sees that all nodes in its border set know
        everything (i.e. no ⊥), i.e. after two rounds, in the best case".
        Concretely the node decides at the end of round ``r >= 2`` when the
        round vector is unanimously ``accept`` *and* every border node sent
        a round-``r`` message whose carried vector had no ``⊥`` entry
        (evidence that everybody already knows the full vector, so later
        rounds cannot change anybody's outcome).  Off by default to stay
        faithful to Algorithm 1 as written; EXP-A3 measures the savings.
    on_decide:
        Optional callback ``(view, decision) -> None`` fired when the node
        decides, in addition to the DECIDED trace event.
    """

    def __init__(
        self,
        node_id: NodeId,
        decision_policy: DecisionPolicy = DEFAULT_DECISION_POLICY,
        ranking: RegionRanking = DEFAULT_RANKING,
        arbitration_enabled: bool = True,
        early_termination: bool = False,
        on_decide: Optional[Callable[[Region, Any], None]] = None,
    ) -> None:
        self.node_id = node_id
        self.decision_policy = decision_policy
        self.ranking = ranking
        self.arbitration_enabled = arbitration_enabled
        self.early_termination = early_termination
        self.on_decide = on_decide

        # --- Algorithm 1 state (lines 1-3) --------------------------------
        #: Decision value once decided, else None (the paper's ``decided``).
        self.decided: Optional[Any] = None
        #: The view decided upon (not in the pseudocode, kept for callers).
        self.decided_view: Optional[Region] = None
        #: Value proposed for the current instance, else None (``proposed``).
        self.proposed: Optional[Any] = None
        #: Crashes this node has been notified of (``locallyCrashed``).
        #: Under churn, graceful leaves are announced through the same
        #: channel and land here too: an announced shutdown is fail-stop
        #: by choice, and the border must agree on it all the same.
        self.locally_crashed: set[NodeId] = set()
        #: Highest-ranked crashed region known so far (``maxView``).
        self.max_view: Optional[Region] = None
        #: View waiting to be proposed (``candidateView``; None = empty).
        self.candidate_view: Optional[Region] = None
        #: View of the node's own current/last instance (``Vp``).
        self.current_view: Optional[Region] = None
        #: Views for which opinion state is tracked (``received``).
        self.received: set[Region] = set()
        #: Views this node has rejected (``rejected``).
        self.rejected: set[Region] = set()
        #: ``opinions[V][r]`` — one OpinionVector per view and round.
        self.opinions: dict[Region, dict[int, OpinionVector]] = {}
        #: ``waiting[V][r]`` — border nodes not yet heard from in round r.
        self.waiting: dict[Region, dict[int, set[NodeId]]] = {}
        #: Border of each tracked view, as carried by its round messages.
        self.instance_border: dict[Region, frozenset[NodeId]] = {}
        #: ``complete_senders[V][r]`` — border nodes whose round-``r``
        #: message carried a vector without any ``⊥`` entry (only tracked
        #: when ``early_termination`` is enabled).
        self.complete_senders: dict[Region, dict[int, set[NodeId]]] = {}
        #: Current round of the node's own active instance (``r``).
        self.round: int = 0
        #: Number of instances this node started (for metrics/tests).
        self.instances_started: int = 0
        #: Number of own instances that failed and were reset.
        self.instances_failed: int = 0

    # ------------------------------------------------------------------
    # Event handlers (Process interface)
    # ------------------------------------------------------------------
    def on_start(self, ctx: ProcessContext) -> None:
        """Line 1-4: initialise and monitor the node's own border."""
        ctx.monitor_crash(ctx.graph.neighbours(self.node_id))

    def on_crash(self, ctx: ProcessContext, crashed: NodeId) -> None:
        """Lines 5-11: view construction upon a crash notification."""
        if crashed == self.node_id:
            raise ProtocolError("a node cannot be notified of its own crash")
        if crashed in self.locally_crashed:
            # The perfect failure detector notifies at most once per pair;
            # seeing a duplicate would indicate a runtime bug.
            return
        self.locally_crashed.add(crashed)
        # Line 7: extend monitoring to the border of the newly crashed node,
        # so the locally known crashed region can keep growing.
        to_monitor = ctx.graph.neighbours(crashed) - self.locally_crashed - {self.node_id}
        if to_monitor:
            ctx.monitor_crash(to_monitor)
        # Lines 8-11: recompute the highest-ranked locally crashed region.
        components = ctx.graph.connected_components(self.locally_crashed)
        regions = [Region(component) for component in components]
        best = self.ranking.max_ranked(ctx.graph, regions)  # type: ignore[attr-defined]
        if self.max_view is None or self.ranking.precedes(ctx.graph, self.max_view, best):
            self.max_view = best
            # In the static model this node always borders ``best`` (each
            # notified crash is adjacent to a known one or to the node
            # itself), so the guard is a no-op there.  Under churn, stale
            # cross-epoch detector state can notify crashes out of
            # adjacency order; a node that does not (yet) border the
            # region must not propose it.
            if self.node_id in ctx.graph.border(best.members):
                self.candidate_view = best
        self._evaluate_guards(ctx)

    def on_message(self, ctx: ProcessContext, sender: NodeId, message: Any) -> None:
        """Lines 18-25: updating opinions for a (possibly conflicting) view."""
        if not isinstance(message, RoundMessage):
            raise ProtocolError(f"unexpected message type {type(message).__name__}")
        view = message.view
        if view in self.rejected:
            # Guard of line 18: messages about rejected views are ignored.
            return
        if view not in self.received:
            self._initialise_instance_state(view, message.border)
        elif message.border != self.instance_border[view]:
            # Churn extension: the same view proposed with two different
            # borders can only happen across membership epochs (within an
            # epoch the border is a function of the static graph).  Decide
            # which side is stale by asking the current graph.
            current_border = frozenset(ctx.graph.border(view.members))
            if message.border != current_border or view == self.decided_view:
                # The *message* is the leftover of a closed epoch (or we
                # already decided on this view); ignore it.
                return
            # Our *local instance* is the leftover: restart it against the
            # current border, re-arming our own proposal so the usual
            # lines 12-17 machinery re-enters the fresh instance.
            self._drop_instance_state(view)
            if self.current_view == view:
                self.proposed = None
                self.current_view = None
                self.round = 0
                if self.decided is None and self.node_id in current_border:
                    self.candidate_view = view
            self._initialise_instance_state(view, message.border)
        round_vector = self.opinions[view].get(message.round)
        if round_vector is None:
            raise ProtocolError(
                f"round {message.round} out of range for view with border "
                f"{sorted(map(repr, message.border))}"
            )
        round_vector.merge(message.opinions)
        rejectors = {
            node for node, opinion in message.opinions.items() if is_reject(opinion)
        }
        self.waiting[view][message.round] -= {sender}
        if rejectors:
            # A rejector has permanently left this instance (line 31): it
            # will never send a message for *any* round of this view, so
            # no round may wait for it.  Removing it only from the current
            # round can livelock a proposer whose later-round waiting sets
            # still name the rejector while every potential relayer has
            # already discarded the view.
            for waiting_round in self.waiting[view].values():
                waiting_round -= rejectors
        if self.early_termination:
            border = self.instance_border[view]
            carried_complete = border <= {
                node
                for node, opinion in message.opinions.items()
                if opinion is not None
            }
            if carried_complete:
                self.complete_senders.setdefault(view, {}).setdefault(
                    message.round, set()
                ).add(sender)
        self._evaluate_guards(ctx)

    def on_membership(self, ctx: ProcessContext, change: MembershipChange) -> None:
        """Churn extension: fold a membership announcement into local state.

        Not part of Algorithm 1 (the paper's model is crash-only; see
        :mod:`repro.churn`).  A join or recovery makes ``change.node``
        live, so every piece of state about a view containing it belongs
        to a closed membership epoch and is discarded — including a
        *decision* on such a view, which re-arms the node so it can decide
        again should the region re-crash (the epoch-quotiented CD1 of
        :mod:`repro.churn.properties` permits exactly this).

        Graceful leaves normally reach the protocol as ordinary crash
        notifications (an announced shutdown is fail-stop by choice, and
        the border must agree on the departed region all the same); a
        leave arriving here — a custom runtime delivering it directly —
        is folded in the same way.
        """
        node = change.node
        if not change.alive:
            if node not in self.locally_crashed:
                self.on_crash(ctx, node)
            return
        self.locally_crashed.discard(node)
        self._purge_views_containing(ctx, node)
        # Re-read the neighbourhood: edges may have changed with the epoch,
        # and a recovered neighbour must be monitored afresh so a re-crash
        # is detected (subscriptions are per-incarnation).
        to_monitor = (
            ctx.graph.neighbours(self.node_id) - self.locally_crashed - {self.node_id}
        )
        if to_monitor:
            ctx.monitor_crash(to_monitor)
        self._recompute_candidate(ctx)
        self._evaluate_guards(ctx)

    def _drop_instance_state(self, view: Region) -> None:
        """Forget all per-instance bookkeeping for ``view``."""
        self.received.discard(view)
        self.rejected.discard(view)
        self.opinions.pop(view, None)
        self.waiting.pop(view, None)
        self.instance_border.pop(view, None)
        self.complete_senders.pop(view, None)

    def _purge_views_containing(self, ctx: ProcessContext, node: NodeId) -> None:
        """Drop every tracked view containing ``node`` (now live again)."""
        stale = {
            view
            for view in set(self.received) | set(self.rejected) | set(self.opinions)
            if node in view.members
        }
        for view in stale:
            self._drop_instance_state(view)
        if self.candidate_view is not None and node in self.candidate_view.members:
            self.candidate_view = None
        if self.decided_view is not None and node in self.decided_view.members:
            # The decision concerned a region of a closed epoch; it stays
            # in the trace, but this node may participate (and decide)
            # again in the new epoch.
            self.decided = None
            self.decided_view = None
            self.proposed = None
            self.current_view = None
            self.round = 0
        elif self.current_view is not None and node in self.current_view.members:
            # The in-flight instance is about a region that no longer
            # exists; abandon it without counting a protocol failure.
            self.proposed = None
            self.current_view = None
            self.round = 0

    def _recompute_candidate(self, ctx: ProcessContext) -> None:
        """Re-derive ``maxView``/``candidateView`` after an epoch change."""
        self.locally_crashed = {
            crashed for crashed in self.locally_crashed if crashed in ctx.graph
        }
        if self.locally_crashed:
            components = ctx.graph.connected_components(self.locally_crashed)
            regions = [Region(component) for component in components]
            best = self.ranking.max_ranked(ctx.graph, regions)  # type: ignore[attr-defined]
            self.max_view = best
            if (
                self.decided is None
                and self.proposed is None
                and best != self.current_view
                and self.node_id in ctx.graph.border(best.members)
            ):
                self.candidate_view = best
        else:
            self.max_view = None

    # ------------------------------------------------------------------
    # Guards (lines 12, 26, 32) — evaluated to a fixpoint
    # ------------------------------------------------------------------
    def _evaluate_guards(self, ctx: ProcessContext) -> None:
        progress = True
        while progress:
            progress = (
                self._maybe_reject(ctx)
                or self._maybe_start_instance(ctx)
                or self._maybe_complete_round(ctx)
            )

    def _maybe_start_instance(self, ctx: ProcessContext) -> bool:
        """Lines 12-17: start a new consensus instance."""
        if self.proposed is not None or self.candidate_view is None:
            return False
        if self.decided is not None:
            # A decided node never proposes again (its ``proposed`` is never
            # reset after the deciding instance), so this is unreachable in
            # the unmodified protocol; keep it as a safety net.
            return False
        view = self.candidate_view
        self.current_view = view
        self.candidate_view = None
        self.proposed = self.decision_policy.select_value(ctx.graph, view, self.node_id)
        border = ctx.graph.border(view.members)
        if self.node_id not in border:
            raise ProtocolError(
                f"{self.node_id!r} proposed a view it does not border: {view!r}"
            )
        self.round = 1
        self.instances_started += 1
        initial = {node: None for node in border}
        initial[self.node_id] = Accept(self.proposed)
        ctx.record(
            EventKind.VIEW_PROPOSED,
            payload=view,
            value=self.proposed,
            border_size=len(border),
        )
        ctx.multicast(border, RoundMessage(1, view, frozenset(border), initial))
        return True

    def _maybe_reject(self, ctx: ProcessContext) -> bool:
        """Line 26: reject a received view ranked strictly below ``Vp``."""
        if not self.arbitration_enabled or self.current_view is None:
            return False
        for view in sorted(self.received, key=lambda v: self.ranking.key(ctx.graph, v)):  # type: ignore[attr-defined]
            if view != self.current_view and self.ranking.precedes(
                ctx.graph, view, self.current_view
            ):
                self._reject(ctx, view)
                return True
        return False

    def _reject(self, ctx: ProcessContext, view: Region) -> None:
        """Lines 28-31: multicast a reject vector for ``view``."""
        border = self.instance_border.get(view, ctx.graph.border(view.members))
        vector: dict[NodeId, Any] = {node: None for node in border}
        vector[self.node_id] = REJECT
        self.received.discard(view)
        self.rejected.add(view)
        ctx.record(EventKind.VIEW_REJECTED, payload=view, border_size=len(border))
        ctx.multicast(border, RoundMessage(1, view, frozenset(border), vector))

    def _maybe_complete_round(self, ctx: ProcessContext) -> bool:
        """Lines 32-40: complete a round of the node's own instance."""
        if self.proposed is None or self.decided is not None:
            return False
        view = self.current_view
        if view is None or view not in self.received:
            return False
        pending = self.waiting[view][self.round] - self.locally_crashed
        if pending:
            return False
        border = self.instance_border[view]
        total_rounds = max(1, len(border) - 1)
        ctx.record(
            EventKind.ROUND_COMPLETED,
            payload=view,
            round=self.round,
            total_rounds=total_rounds,
        )
        if self.round == total_rounds or self._can_terminate_early(view):
            final_vector = self.opinions[view][self.round]
            if all(is_accept(final_vector.get(node)) for node in border):
                values = final_vector.accepted_values()
                self.decided = self.decision_policy.pick(ctx.graph, view, values)
                self.decided_view = view
                ctx.record(
                    EventKind.DECIDED,
                    payload=view,
                    decision=self.decided,
                    rounds=self.round,
                )
                if self.on_decide is not None:
                    self.on_decide(view, self.decided)
            else:
                # Line 37: the attempt failed (a reject or a crash made a
                # unanimous accept impossible); reset and wait for view
                # construction to produce a higher-ranked candidate.
                self.proposed = None
                self.instances_failed += 1
                ctx.record(
                    EventKind.INSTANCE_FAILED,
                    payload=view,
                    rejectors=tuple(sorted(map(repr, final_vector.rejectors()))),
                )
        else:
            # Lines 38-40: advance to the next round, relaying everything
            # known from the round that just completed.
            previous = self.opinions[view][self.round]
            self.round += 1
            ctx.multicast(
                border,
                RoundMessage(self.round, view, border, previous.as_mapping()),
            )
        return True

    def _can_terminate_early(self, view: Region) -> bool:
        """Footnote-6 optimisation: everybody provably knows everything.

        True when early termination is enabled, the current round's vector
        is unanimously ``accept``, and every border node's round-``r``
        message carried a complete (no-``⊥``) vector.  Under those
        conditions no later round can change any node's final vector, so
        terminating now preserves CD4/CD5.
        """
        if not self.early_termination or self.round < 2:
            return False
        border = self.instance_border[view]
        vector = self.opinions[view][self.round]
        if not all(is_accept(vector.get(node)) for node in border):
            return False
        complete = self.complete_senders.get(view, {}).get(self.round, set())
        return border <= complete

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _initialise_instance_state(self, view: Region, border: frozenset[NodeId]) -> None:
        """Lines 19-22: allocate opinion/waiting rows for a new view."""
        self.received.add(view)
        self.instance_border[view] = frozenset(border)
        total_rounds = max(1, len(border) - 1)
        self.opinions[view] = {
            round_number: OpinionVector(border)
            for round_number in range(1, total_rounds + 1)
        }
        self.waiting[view] = {
            round_number: set(border) for round_number in range(1, total_rounds + 1)
        }

    # -- Introspection used by tests, experiments and examples ------------
    @property
    def has_decided(self) -> bool:
        """True once the node has raised its ``decide`` event."""
        return self.decided is not None

    def known_crashed_region(self) -> frozenset[NodeId]:
        """The set of nodes this node currently knows to have crashed."""
        return frozenset(self.locally_crashed)

    def describe_state(self) -> str:
        """One-line state summary (used by the quickstart example)."""
        status = "decided" if self.has_decided else (
            "proposing" if self.proposed is not None else "idle"
        )
        view = self.decided_view or self.current_view
        view_text = (
            "{" + ", ".join(map(repr, view.sorted_members())) + "}" if view else "-"
        )
        return (
            f"{self.node_id!r}: {status}, view={view_text}, "
            f"known_crashed={sorted(map(repr, self.locally_crashed))}"
        )
