"""The cliff-edge consensus protocol (Algorithm 1 of the paper).

:class:`CliffEdgeNode` is a line-by-line implementation of the paper's
*convergent detection of crashed regions*.  Its structure mirrors the
pseudocode:

====================  =====================================================
Paper                  Here
====================  =====================================================
``init`` (l. 1-4)      :meth:`CliffEdgeNode.on_start`
``crash | q`` (l. 5)   :meth:`CliffEdgeNode.on_crash` (view construction)
l. 12-17               :meth:`_maybe_start_instance` (new consensus instance)
``mDeliver`` (l. 18)   :meth:`CliffEdgeNode.on_message` (updating opinions)
l. 26-31               :meth:`_maybe_reject` / :meth:`_reject`
l. 32-40               :meth:`_maybe_complete_round` (round / decision)
====================  =====================================================

The three ``upon event`` guards over local state (lines 12, 26, 32) are
re-evaluated to a fixpoint after every external event, which matches the
paper's mono-threaded event-based semantics.

Two deliberate, documented deviations from the raw pseudocode:

* **Single-node borders.**  The pseudocode's round bookkeeping implicitly
  assumes ``|border(V)| >= 2`` (it runs ``|border(V)| - 1`` rounds).  When a
  proposed view has exactly one border node, that node is the only
  participant; we run a single round and let it decide as soon as its own
  round-1 message is (self-)delivered.
* **Guard of line 32.**  The paper's guard does not mention ``proposed``;
  taken literally it would keep firing after an instance failed.  Because
  the round counter ``r`` belongs to the node's *active* proposal, we
  additionally require an active proposal (``proposed != ⊥``), which is the
  only reading under which the pseudocode terminates.

Both points are covered by dedicated unit tests.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..graph import (
    DEFAULT_RANKING,
    KnowledgeGraph,
    NodeId,
    Region,
    RegionRanking,
)
from ..sim.events import EventKind
from ..sim.process import MembershipChange, Process, ProcessContext
from .decisions import DEFAULT_DECISION_POLICY, DecisionPolicy
from .messages import RoundMessage
from .opinions import REJECT, Accept, OpinionVector, is_accept, is_reject


class ProtocolError(RuntimeError):
    """Raised when the protocol observes an impossible state (a bug)."""


class CliffEdgeNode(Process):
    """One node of the convergent-detection-of-crashed-regions protocol.

    Parameters
    ----------
    node_id:
        This node's identifier in the knowledge graph.
    decision_policy:
        Provides ``selectValueForView`` and ``deterministicPick``.
    ranking:
        The strict total order ``≺`` on regions; defaults to the paper's
        canonical ranking.
    arbitration_enabled:
        When False the node never rejects lower-ranked views (line 26 is
        disabled).  Only used by the EXP-A1 ablation; the protocol is not
        live without arbitration.
    early_termination:
        Enable the optimisation of the paper's footnote 6: an instance can
        terminate "once a node sees that all nodes in its border set know
        everything (i.e. no ⊥), i.e. after two rounds, in the best case".
        Concretely the node decides at the end of round ``r >= 2`` when the
        round vector is unanimously ``accept`` *and* every border node sent
        a round-``r`` message whose carried vector had no ``⊥`` entry
        (evidence that everybody already knows the full vector, so later
        rounds cannot change anybody's outcome).  Off by default to stay
        faithful to Algorithm 1 as written; EXP-A3 measures the savings.
    on_decide:
        Optional callback ``(view, decision) -> None`` fired when the node
        decides, in addition to the DECIDED trace event.
    """

    def __init__(
        self,
        node_id: NodeId,
        decision_policy: DecisionPolicy = DEFAULT_DECISION_POLICY,
        ranking: RegionRanking = DEFAULT_RANKING,
        arbitration_enabled: bool = True,
        early_termination: bool = False,
        on_decide: Optional[Callable[[Region, Any], None]] = None,
    ) -> None:
        self.node_id = node_id
        self.decision_policy = decision_policy
        self.ranking = ranking
        self.arbitration_enabled = arbitration_enabled
        self.early_termination = early_termination
        self.on_decide = on_decide

        # --- Algorithm 1 state (lines 1-3) --------------------------------
        #: Decision value once decided, else None (the paper's ``decided``).
        self.decided: Optional[Any] = None
        #: The view decided upon (not in the pseudocode, kept for callers).
        self.decided_view: Optional[Region] = None
        #: Value proposed for the current instance, else None (``proposed``).
        self.proposed: Optional[Any] = None
        #: Crashes this node has been notified of (``locallyCrashed``).
        #: Under churn, graceful leaves are announced through the same
        #: channel and land here too: an announced shutdown is fail-stop
        #: by choice, and the border must agree on it all the same.
        self.locally_crashed: set[NodeId] = set()
        #: Highest-ranked crashed region known so far (``maxView``).
        self.max_view: Optional[Region] = None
        #: View waiting to be proposed (``candidateView``; None = empty).
        self.candidate_view: Optional[Region] = None
        #: View of the node's own current/last instance (``Vp``).
        self.current_view: Optional[Region] = None
        #: Views for which opinion state is tracked (``received``).
        self.received: set[Region] = set()
        #: Views this node has rejected (``rejected``).
        self.rejected: set[Region] = set()
        #: ``opinions[V][r]`` — one OpinionVector per view and round.
        self.opinions: dict[Region, dict[int, OpinionVector]] = {}
        #: ``waiting[V][r]`` — border nodes not yet heard from in round r.
        self.waiting: dict[Region, dict[int, set[NodeId]]] = {}
        #: Border of each tracked view, as carried by its round messages.
        self.instance_border: dict[Region, frozenset[NodeId]] = {}
        #: ``complete_senders[V][r]`` — border nodes whose round-``r``
        #: message carried a vector without any ``⊥`` entry (only tracked
        #: when ``early_termination`` is enabled).
        self.complete_senders: dict[Region, dict[int, set[NodeId]]] = {}
        #: Current round of the node's own active instance (``r``).
        self.round: int = 0
        #: Number of instances this node started (for metrics/tests).
        self.instances_started: int = 0
        #: Number of own instances that failed and were reset.
        self.instances_failed: int = 0
        #: Churn extension: per-view instance *generation*.  Always 0 in
        #: the static model.  A membership-epoch purge of a view's
        #: instance state bumps it, and round messages carry it, so stale
        #: in-flight messages from a closed attempt are discarded instead
        #: of poisoning the restarted instance (deliberately *not*
        #: cleared by :meth:`_drop_instance_state`).
        self.instance_attempt: dict[Region, int] = {}
        #: Churn extension: True once a join/recovery announcement has
        #: been folded in.  Gates the after-failure candidate recompute so
        #: the static model's behaviour stays byte-identical.
        self.epoch_changed: bool = False
        #: Churn extension: floor for attempts this node mints.  The
        #: runtime seeds it with ``incarnation << 20`` at (re)spawn (see
        #: :meth:`set_incarnation`), so a reincarnated node's instance
        #: generations can never collide with — and always supersede —
        #: the generations of its previous life.  0 in the static model.
        self.attempt_base: int = 0

    def set_incarnation(self, incarnation: int) -> None:
        """Called by the runtimes when spawning this process (churn).

        ``incarnation`` counts the node's lives (0 for the initial
        population).  Shifting it into the attempt floor keeps instance
        generations globally monotone across reincarnations; the shift
        leaves room for far more per-life epoch purges than any run can
        produce.
        """
        self.attempt_base = incarnation << 20

    def _attempt_of(self, view: Region) -> int:
        """The current instance generation of ``view`` at this node."""
        return self.instance_attempt.get(view, self.attempt_base)

    # ------------------------------------------------------------------
    # Event handlers (Process interface)
    # ------------------------------------------------------------------
    def on_start(self, ctx: ProcessContext) -> None:
        """Line 1-4: initialise and monitor the node's own border."""
        ctx.monitor_crash(ctx.graph.neighbours(self.node_id))

    def on_crash(self, ctx: ProcessContext, crashed: NodeId) -> None:
        """Lines 5-11: view construction upon a crash notification."""
        if crashed == self.node_id:
            raise ProtocolError("a node cannot be notified of its own crash")
        if crashed in self.locally_crashed:
            # The perfect failure detector notifies at most once per pair;
            # seeing a duplicate would indicate a runtime bug.
            return
        self.locally_crashed.add(crashed)
        # Line 7: extend monitoring to the border of the newly crashed node,
        # so the locally known crashed region can keep growing.
        to_monitor = ctx.graph.neighbours(crashed) - self.locally_crashed - {self.node_id}
        if to_monitor:
            ctx.monitor_crash(to_monitor)
        # Lines 8-11: recompute the highest-ranked locally crashed region.
        components = ctx.graph.connected_components(self.locally_crashed)
        regions = [Region(component) for component in components]
        best = self.ranking.max_ranked(ctx.graph, regions)  # type: ignore[attr-defined]
        if self.max_view is None or self.ranking.precedes(ctx.graph, self.max_view, best):
            self.max_view = best
            # In the static model this node borders *every* component of
            # its locally crashed set (knowledge only spreads along chains
            # of crashed nodes starting at its own neighbours), so taking
            # the best *bordered* component is exactly ``best`` there.
            # Under churn, recoveries can fragment the knowledge — or
            # stale cross-epoch detector state can notify crashes out of
            # adjacency order — leaving the globally best component
            # without this node on its border; proposing it would be
            # wrong, and staying silent would starve the component the
            # node *does* border (a CD7 deadlock found by the adversarial
            # churn sweep).
            bordered_best = self._best_bordered(ctx, regions)
            if bordered_best is not None:
                self.candidate_view = bordered_best
        self._evaluate_guards(ctx)

    def _best_bordered(self, ctx: ProcessContext, regions: list[Region]) -> Optional[Region]:
        """The highest-ranked region this node borders (None when none)."""
        bordered = [
            region
            for region in regions
            if self.node_id in ctx.graph.border(region.members)
        ]
        if not bordered:
            return None
        return self.ranking.max_ranked(ctx.graph, bordered)  # type: ignore[attr-defined]

    def on_message(self, ctx: ProcessContext, sender: NodeId, message: Any) -> None:
        """Lines 18-25: updating opinions for a (possibly conflicting) view."""
        if not isinstance(message, RoundMessage):
            raise ProtocolError(f"unexpected message type {type(message).__name__}")
        view = message.view
        # Churn extension: instance-generation gate (no-op statically,
        # where every attempt is 0).  A message from a closed attempt is
        # stale — processing it would poison the restarted instance with
        # opinions (e.g. rejections) given in a previous membership
        # epoch.  A message from a *newer* attempt means a peer already
        # processed an epoch change this node has not seen announced yet:
        # adopt the restart now, so none of the fresh instance's messages
        # are lost to stale local state.
        local_attempt = self._attempt_of(view)
        if message.attempt < local_attempt:
            # The sender is behind — typically a freshly reincarnated
            # border node whose attempt counters restarted at 0.  Its
            # message must not touch current state, but a live proposer
            # cannot be left hanging either (a silent drop deadlocks its
            # instance, and with it every instance waiting on the
            # sender).  Answer every stale-attempt message that carries
            # the sender's own live accept — a round-1 proposal or a
            # mid-instance relay, both meaning the sender is still
            # driving the doomed attempt:
            #
            # * if the view is this node's own current instance at the
            #   newer attempt, catch the sender up by re-sending our
            #   round-1 vector — the original multicast went to the
            #   sender's previous incarnation;
            # * otherwise reject at the sender's attempt (statelessly):
            #   either arbitration would reject it anyway, or the attempt
            #   itself was closed by a membership epoch this node has
            #   processed — in both cases the sender's doomed instance
            #   must fail so view construction can move it on.
            if is_accept(message.opinions.get(sender)):
                if (
                    view == self.current_view
                    and self.proposed is not None
                    and view in self.received
                ):
                    ctx.send(
                        sender,
                        RoundMessage(
                            1,
                            view,
                            self.instance_border[view],
                            self.opinions[view][1].as_mapping(),
                            attempt=local_attempt,
                        ),
                    )
                elif self.arbitration_enabled:
                    border = message.border
                    vector: dict[NodeId, Any] = {node: None for node in border}
                    vector[self.node_id] = REJECT
                    ctx.send(
                        sender,
                        RoundMessage(1, view, border, vector, attempt=message.attempt),
                    )
            return
        if message.attempt > local_attempt:
            if view == self.decided_view:
                # The decision stands (the region itself did not change);
                # record the newer attempt so its messages keep being
                # ignored without re-processing this branch.
                self.instance_attempt[view] = message.attempt
                return
            # Answer live proposers of the dying attempt before adopting
            # the newer one (their round-1 was merged into the state that
            # is about to vanish, and they are waiting on us).
            self._farewell_rejects(ctx, view, exclude=sender)
            self.instance_attempt[view] = message.attempt
            self._drop_instance_state(view)
            if self.current_view == view:
                self.proposed = None
                self.current_view = None
                self.round = 0
            if (
                self.decided is None
                and self.proposed is None
                and self.candidate_view is None
                and self.node_id in message.border
                and view.members <= frozenset(self.locally_crashed)
            ):
                # Re-arm so this node re-enters the fresh attempt; a
                # pending candidate (picked by view construction, which
                # knows more than this message) is never overwritten, and
                # a node only ever proposes from its *own* crash
                # evidence — a fresh incarnation mid-announcement-wave
                # must not start proposing regions on hearsay.
                self.candidate_view = view
        if view in self.rejected:
            # Guard of line 18: messages about rejected views are ignored.
            # One refinement for churn: a *freshly reincarnated* border
            # node proposing this view has never seen the reject this
            # node multicast to its previous incarnation — swallowing the
            # proposal silently would hang its instance forever.  Re-send
            # the stance directly to the proposer; for a same-epoch
            # proposer this is a duplicate whose entries merge to nothing
            # (first-writer-wins), so the static protocol is unaffected
            # beyond the one extra message.
            if (
                self.arbitration_enabled
                and message.round == 1
                and is_accept(message.opinions.get(sender))
            ):
                border = self.instance_border.get(view, message.border)
                vector: dict[NodeId, Any] = {node: None for node in border}
                vector[self.node_id] = REJECT
                ctx.send(
                    sender,
                    RoundMessage(
                        1, view, frozenset(border), vector, attempt=message.attempt
                    ),
                )
            return
        if view not in self.received:
            self._initialise_instance_state(view, message.border)
        elif message.border != self.instance_border[view]:
            # Churn extension: the same view proposed with two different
            # borders can only happen across membership epochs (within an
            # epoch the border is a function of the static graph).  Decide
            # which side is stale by asking the current graph.
            current_border = frozenset(ctx.graph.border(view.members))
            if message.border != current_border or view == self.decided_view:
                # The *message* is the leftover of a closed epoch (or we
                # already decided on this view); ignore it.
                return
            # Our *local instance* is the leftover: restart it against the
            # current border, re-arming our own proposal so the usual
            # lines 12-17 machinery re-enters the fresh instance.
            self._drop_instance_state(view)
            if self.current_view == view:
                self.proposed = None
                self.current_view = None
                self.round = 0
                if self.decided is None and self.node_id in current_border:
                    self.candidate_view = view
            self._initialise_instance_state(view, message.border)
        round_vector = self.opinions[view].get(message.round)
        if round_vector is None:
            raise ProtocolError(
                f"round {message.round} out of range for view with border "
                f"{sorted(map(repr, message.border))}"
            )
        round_vector.merge(message.opinions)
        rejectors = {
            node for node, opinion in message.opinions.items() if is_reject(opinion)
        }
        self.waiting[view][message.round] -= {sender}
        if message.round > 1:
            # A round-r message proves the sender sent every earlier round
            # of this instance.  With FIFO channels those messages already
            # arrived — unless this node's instance state was rebuilt by a
            # membership-epoch purge after they were consumed (churn).  A
            # node's own opinion never changes within an instance, so
            # backfilling just the sender's entry and un-waiting it for
            # earlier rounds is a no-op statically and unblocks the
            # restarted instance under churn.
            sender_opinion = message.opinions.get(sender)
            for earlier_round in range(1, message.round):
                earlier_vector = self.opinions[view].get(earlier_round)
                if earlier_vector is None:
                    continue
                if sender_opinion is not None and earlier_vector.get(sender) is None:
                    earlier_vector.set(sender, sender_opinion)
                self.waiting[view][earlier_round] -= {sender}
        if (
            self.epoch_changed
            and view == self.current_view
            and self.proposed is not None
            and self.decided is None
            and message.round < self.round
            and is_accept(message.opinions.get(sender))
        ):
            # Churn catch-up (never triggers statically: the gate requires
            # a processed membership epoch).  The sender is an active
            # participant rounds behind our own instance — typically a
            # reincarnated node whose copies of the earlier rounds were
            # delivered to its previous life and dropped.  Nobody resends
            # rounds in the static protocol, so without help the sender
            # waits forever and the whole border deadlocks behind it.
            # Re-sending our newest round vector lets its backfill (above)
            # un-wait us for every earlier round and absorb our cumulative
            # knowledge; each ahead participant answers for itself.
            newest = self.opinions[view].get(self.round)
            if newest is not None:
                ctx.send(
                    sender,
                    RoundMessage(
                        self.round,
                        view,
                        self.instance_border[view],
                        newest.as_mapping(),
                        attempt=local_attempt,
                    ),
                )
        if rejectors:
            # A rejector has permanently left this instance (line 31): it
            # will never send a message for *any* round of this view, so
            # no round may wait for it.  Removing it only from the current
            # round can livelock a proposer whose later-round waiting sets
            # still name the rejector while every potential relayer has
            # already discarded the view.
            for waiting_round in self.waiting[view].values():
                waiting_round -= rejectors
        if self.early_termination:
            border = self.instance_border[view]
            carried_complete = border <= {
                node
                for node, opinion in message.opinions.items()
                if opinion is not None
            }
            if carried_complete:
                self.complete_senders.setdefault(view, {}).setdefault(
                    message.round, set()
                ).add(sender)
        self._evaluate_guards(ctx)

    def on_membership(self, ctx: ProcessContext, change: MembershipChange) -> None:
        """Churn extension: fold a membership announcement into local state.

        Not part of Algorithm 1 (the paper's model is crash-only; see
        :mod:`repro.churn`).  A join or recovery makes ``change.node``
        live, so every piece of state about a view containing it belongs
        to a closed membership epoch and is discarded — including a
        *decision* on such a view, which re-arms the node so it can decide
        again should the region re-crash (the epoch-quotiented CD1 of
        :mod:`repro.churn.properties` permits exactly this).

        Graceful leaves normally reach the protocol as ordinary crash
        notifications (an announced shutdown is fail-stop by choice, and
        the border must agree on the departed region all the same); a
        leave arriving here — a custom runtime delivering it directly —
        is folded in the same way.
        """
        node = change.node
        if not change.alive:
            if node not in self.locally_crashed:
                self.on_crash(ctx, node)
            return
        self.epoch_changed = True
        self.locally_crashed.discard(node)
        self._purge_views_containing(ctx, node, incarnation=change.incarnation)
        current = self.current_view
        if (
            current is not None
            and self.proposed is not None
            and self.decided is None
            and current in self.received
            and node in self.instance_border.get(current, frozenset())
            and node in self.waiting[current].get(1, set())
        ):
            # Our active instance survived the purge, yet the announced
            # node is a participant that never answered round 1: our
            # round-1 multicast was delivered to its previous incarnation
            # and dropped.  Re-send the round-1 vector to the fresh
            # incarnation — without this the instance (and every instance
            # waiting on us) is stranded; incarnation floors alone cannot
            # catch it because different nodes' floors coincide.
            ctx.send(
                node,
                RoundMessage(
                    1,
                    current,
                    self.instance_border[current],
                    self.opinions[current][1].as_mapping(),
                    attempt=self._attempt_of(current),
                ),
            )
        # Re-read the neighbourhood: edges may have changed with the epoch,
        # and a recovered neighbour must be monitored afresh so a re-crash
        # is detected (subscriptions are per-incarnation).
        to_monitor = (
            ctx.graph.neighbours(self.node_id) - self.locally_crashed - {self.node_id}
        )
        if to_monitor:
            ctx.monitor_crash(to_monitor)
        self._recompute_candidate(ctx)
        self._evaluate_guards(ctx)

    def _drop_instance_state(self, view: Region) -> None:
        """Forget all per-instance bookkeeping for ``view``."""
        self.received.discard(view)
        self.rejected.discard(view)
        self.opinions.pop(view, None)
        self.waiting.pop(view, None)
        self.instance_border.pop(view, None)
        self.complete_senders.pop(view, None)

    def _farewell_rejects(
        self,
        ctx: ProcessContext,
        view: Region,
        exclude: NodeId,
    ) -> None:
        """Answer live proposers before their instance state is dropped.

        Called (only under churn) just before an epoch purge or an
        attempt adoption discards ``view``'s instance state.  Any live
        participant whose ``accept`` sits in the round-1 vector has
        already multicast its round-1 and is waiting for this node's
        answer; dropping the state silently would leave that proposer —
        and every instance waiting on *it* — stranded forever.  A
        stateless reject at the dying attempt makes its instance fail, so
        view construction moves it on.  Receivers that already moved past
        this attempt ignore the message (attempt gate), so a redundant
        farewell is harmless.
        """
        vector_by_round = self.opinions.get(view)
        if not vector_by_round:
            return
        round_one = vector_by_round.get(1)
        if round_one is None:
            return
        border = self.instance_border.get(view)
        if border is None:
            return
        attempt = self._attempt_of(view)
        reply: dict[NodeId, Any] = {member: None for member in border}
        reply[self.node_id] = REJECT
        farewell = RoundMessage(1, view, border, reply, attempt=attempt)
        for sender, opinion in round_one.as_mapping().items():
            if (
                sender != self.node_id
                and sender != exclude
                and sender not in self.locally_crashed
                and is_accept(opinion)
            ):
                ctx.send(sender, farewell)

    def _purge_views_containing(
        self, ctx: ProcessContext, node: NodeId, incarnation: int = 0
    ) -> None:
        """Drop every tracked view made stale by ``node`` becoming live.

        ``incarnation`` is the node's life count in the new epoch; the
        *floor* ``incarnation << 20`` is the lowest instance generation
        the fresh incarnation itself can mint (see
        :meth:`set_incarnation`).

        Two kinds of staleness:

        * views *containing* ``node`` — the region no longer exists, so
          instance state, rejections and even decisions about it belong
          to the closed epoch;
        * views whose *participant set* contains ``node``, at a
          generation *below the floor* — the instance was running among a
          border that included the node's previous incarnation.  Its
          round vectors (and any rejection this node issued while a
          since-purged higher-ranked view was in flight) can never
          complete: the old incarnation will not speak again, and a stale
          ``reject`` entry would poison every later attempt, deadlocking
          the border at quiescence with no decision (a CD7 violation
          surfaced by the adversarial churn sweep).  Dropping the state
          re-arms a clean same-view instance among the new epoch's
          incarnations.  An instance already *at or above* the floor was
          started by the fresh incarnation itself (its proposal can race
          its own recovery announcement) and must be left alone.  A
          *decision* on such a view survives either way: the region
          itself did not change, and the epoch-quotiented CD1 forbids
          re-deciding it without a member-level epoch change.
        """
        floor = incarnation << 20

        def border_stale_for(view: Region) -> bool:
            """Participant-set staleness: ``node``'s previous life was in
            the instance's border and the generation predates its new
            incarnation's floor."""
            if view == self.decided_view or self._attempt_of(view) >= floor:
                return False
            border = self.instance_border.get(view)
            if border is None:
                border = ctx.graph.border(view.members)
            return node in border

        def abandon_if_current(view: Region) -> None:
            """Abandon the in-flight attempt; _recompute_candidate re-arms
            it against the new epoch's participant set."""
            if self.current_view == view:
                self.proposed = None
                self.current_view = None
                self.round = 0

        def bump_generation(view: Region) -> None:
            """Open a new instance generation, converging on the
            reincarnated node's floor (rather than local+1) so its own
            fresh proposals land at an equal generation everywhere."""
            self.instance_attempt[view] = max(self._attempt_of(view) + 1, floor)

        tracked = set(self.received) | set(self.rejected) | set(self.opinions)
        member_stale = {view for view in tracked if node in view.members}
        border_stale: set[Region] = set()
        for view in tracked - member_stale:
            if border_stale_for(view):
                border_stale.add(view)
                abandon_if_current(view)
        stale = member_stale | border_stale
        for view in stale:
            if view in border_stale:
                # Live proposers of a border-stale view do not hear this
                # announcement-driven abandonment through their own
                # purges reliably (they abandon member-stale views
                # themselves, but a border-stale instance can be theirs
                # alone); answer them before the state vanishes.
                self._farewell_rejects(ctx, view, exclude=node)
            self._drop_instance_state(view)
            # Messages of the purged attempt still in flight must not
            # contaminate a restart.
            bump_generation(view)
        # A just-proposed current view may not be tracked yet (its state
        # is lazily created by the first round message, which is still in
        # flight).  Its generation must advance all the same — whether
        # ``node`` is a member *or* a border participant — or those
        # in-flight messages would assemble a ghost instance of the
        # closed epoch; worse, an untracked current instance whose
        # round-1 was delivered to the node's previous incarnation would
        # keep waiting for an answer that can never come.
        for held in (self.current_view, self.candidate_view):
            if held is None or held in stale:
                continue
            if node in held.members:
                # Member-staleness is unconditional: the region changed.
                bump_generation(held)
            elif border_stale_for(held):
                bump_generation(held)
                abandon_if_current(held)
        if self.candidate_view is not None and node in self.candidate_view.members:
            self.candidate_view = None
        if self.decided_view is not None and node in self.decided_view.members:
            # The decision concerned a region of a closed epoch; it stays
            # in the trace, but this node may participate (and decide)
            # again in the new epoch.
            self.decided = None
            self.decided_view = None
            self.proposed = None
            self.current_view = None
            self.round = 0
        elif self.current_view is not None and node in self.current_view.members:
            # The in-flight instance is about a region that no longer
            # exists; abandon it without counting a protocol failure.
            self.proposed = None
            self.current_view = None
            self.round = 0

    def _recompute_candidate(self, ctx: ProcessContext) -> None:
        """Re-derive ``maxView``/``candidateView`` after an epoch change."""
        self.locally_crashed = {
            crashed for crashed in self.locally_crashed if crashed in ctx.graph
        }
        if self.locally_crashed:
            components = ctx.graph.connected_components(self.locally_crashed)
            regions = [Region(component) for component in components]
            self.max_view = self.ranking.max_ranked(ctx.graph, regions)  # type: ignore[attr-defined]
            # As in on_crash: the proposable candidate is the best region
            # this node *borders* — after recoveries fragment the local
            # knowledge, the globally best component may belong to some
            # other border entirely.
            bordered_best = self._best_bordered(ctx, regions)
            if (
                self.decided is None
                and self.proposed is None
                and bordered_best is not None
                and bordered_best != self.current_view
            ):
                self.candidate_view = bordered_best
        else:
            self.max_view = None

    # ------------------------------------------------------------------
    # Guards (lines 12, 26, 32) — evaluated to a fixpoint
    # ------------------------------------------------------------------
    def _evaluate_guards(self, ctx: ProcessContext) -> None:
        progress = True
        while progress:
            progress = (
                self._maybe_reject(ctx)
                or self._maybe_start_instance(ctx)
                or self._maybe_complete_round(ctx)
            )

    def _maybe_start_instance(self, ctx: ProcessContext) -> bool:
        """Lines 12-17: start a new consensus instance."""
        if self.proposed is not None or self.candidate_view is None:
            return False
        if self.decided is not None:
            # A decided node never proposes again (its ``proposed`` is never
            # reset after the deciding instance), so this is unreachable in
            # the unmodified protocol; keep it as a safety net.
            return False
        view = self.candidate_view
        if view in self.rejected:
            # Statically unreachable: once a node rejects a view its own
            # candidates only ever rank higher.  Under churn, the
            # higher-ranked view that justified the stance can be purged
            # by an epoch change, after which view construction
            # legitimately re-picks the rejected view.  The stance (and
            # the instance state poisoned by our own multicast reject) is
            # stale: reopen a clean generation so peers restart with us.
            self._drop_instance_state(view)
            self.instance_attempt[view] = self._attempt_of(view) + 1
        self.current_view = view
        self.candidate_view = None
        self.proposed = self.decision_policy.select_value(ctx.graph, view, self.node_id)
        border = ctx.graph.border(view.members)
        if self.node_id not in border:
            raise ProtocolError(
                f"{self.node_id!r} proposed a view it does not border: {view!r}"
            )
        self.round = 1
        self.instances_started += 1
        initial = {node: None for node in border}
        initial[self.node_id] = Accept(self.proposed)
        ctx.record(
            EventKind.VIEW_PROPOSED,
            payload=view,
            value=self.proposed,
            border_size=len(border),
        )
        ctx.multicast(
            border,
            RoundMessage(
                1,
                view,
                frozenset(border),
                initial,
                attempt=self._attempt_of(view),
            ),
        )
        return True

    def _maybe_reject(self, ctx: ProcessContext) -> bool:
        """Line 26: reject a received view ranked strictly below ``Vp``."""
        if not self.arbitration_enabled or self.current_view is None:
            return False
        for view in sorted(self.received, key=lambda v: self.ranking.key(ctx.graph, v)):  # type: ignore[attr-defined]
            if view != self.current_view and self.ranking.precedes(
                ctx.graph, view, self.current_view
            ):
                self._reject(ctx, view)
                return True
        return False

    def _reject(self, ctx: ProcessContext, view: Region) -> None:
        """Lines 28-31: multicast a reject vector for ``view``."""
        border = self.instance_border.get(view, ctx.graph.border(view.members))
        vector: dict[NodeId, Any] = {node: None for node in border}
        vector[self.node_id] = REJECT
        self.received.discard(view)
        self.rejected.add(view)
        ctx.record(EventKind.VIEW_REJECTED, payload=view, border_size=len(border))
        ctx.multicast(
            border,
            RoundMessage(
                1,
                view,
                frozenset(border),
                vector,
                attempt=self._attempt_of(view),
            ),
        )

    def _maybe_complete_round(self, ctx: ProcessContext) -> bool:
        """Lines 32-40: complete a round of the node's own instance."""
        if self.proposed is None or self.decided is not None:
            return False
        view = self.current_view
        if view is None or view not in self.received:
            return False
        pending = self.waiting[view][self.round] - self.locally_crashed
        if pending:
            return False
        border = self.instance_border[view]
        total_rounds = max(1, len(border) - 1)
        ctx.record(
            EventKind.ROUND_COMPLETED,
            payload=view,
            round=self.round,
            total_rounds=total_rounds,
        )
        if self.round == total_rounds or self._can_terminate_early(view):
            final_vector = self.opinions[view][self.round]
            if all(is_accept(final_vector.get(node)) for node in border):
                values = final_vector.accepted_values()
                self.decided = self.decision_policy.pick(ctx.graph, view, values)
                self.decided_view = view
                ctx.record(
                    EventKind.DECIDED,
                    payload=view,
                    decision=self.decided,
                    rounds=self.round,
                )
                if self.on_decide is not None:
                    self.on_decide(view, self.decided)
            else:
                # Line 37: the attempt failed (a reject or a crash made a
                # unanimous accept impossible); reset and wait for view
                # construction to produce a higher-ranked candidate.
                self.proposed = None
                self.instances_failed += 1
                ctx.record(
                    EventKind.INSTANCE_FAILED,
                    payload=view,
                    rejectors=tuple(sorted(map(repr, final_vector.rejectors()))),
                )
                # Statically the better candidate is already pending (set
                # by the crash notification that caused the rejection) and
                # line 37 just waits for it.  Under churn a membership
                # purge may have wiped that pending candidate while this
                # instance was in flight; without recomputation the node
                # would idle forever even though its local knowledge
                # already names the view it should propose (a CD7
                # deadlock found by the adversarial churn sweep).  Gated
                # on ``epoch_changed`` so static executions — including
                # the EXP-A2 weak-ranking liveness-loss demonstration —
                # are untouched.
                if self.epoch_changed:
                    self._recompute_candidate(ctx)
        else:
            # Lines 38-40: advance to the next round, relaying everything
            # known from the round that just completed.
            previous = self.opinions[view][self.round]
            self.round += 1
            ctx.multicast(
                border,
                RoundMessage(
                    self.round,
                    view,
                    border,
                    previous.as_mapping(),
                    attempt=self._attempt_of(view),
                ),
            )
        return True

    def _can_terminate_early(self, view: Region) -> bool:
        """Footnote-6 optimisation: everybody provably knows everything.

        True when early termination is enabled, the current round's vector
        is unanimously ``accept``, and every border node's round-``r``
        message carried a complete (no-``⊥``) vector.  Under those
        conditions no later round can change any node's final vector, so
        terminating now preserves CD4/CD5.
        """
        if not self.early_termination or self.round < 2:
            return False
        border = self.instance_border[view]
        vector = self.opinions[view][self.round]
        if not all(is_accept(vector.get(node)) for node in border):
            return False
        complete = self.complete_senders.get(view, {}).get(self.round, set())
        return border <= complete

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _initialise_instance_state(self, view: Region, border: frozenset[NodeId]) -> None:
        """Lines 19-22: allocate opinion/waiting rows for a new view."""
        self.received.add(view)
        self.instance_border[view] = frozenset(border)
        total_rounds = max(1, len(border) - 1)
        self.opinions[view] = {
            round_number: OpinionVector(border)
            for round_number in range(1, total_rounds + 1)
        }
        self.waiting[view] = {
            round_number: set(border) for round_number in range(1, total_rounds + 1)
        }

    # -- Introspection used by tests, experiments and examples ------------
    @property
    def has_decided(self) -> bool:
        """True once the node has raised its ``decide`` event."""
        return self.decided is not None

    def known_crashed_region(self) -> frozenset[NodeId]:
        """The set of nodes this node currently knows to have crashed."""
        return frozenset(self.locally_crashed)

    def describe_state(self) -> str:
        """One-line state summary (used by the quickstart example)."""
        status = "decided" if self.has_decided else (
            "proposing" if self.proposed is not None else "idle"
        )
        view = self.decided_view or self.current_view
        view_text = (
            "{" + ", ".join(map(repr, view.sorted_members())) + "}" if view else "-"
        )
        return (
            f"{self.node_id!r}: {status}, view={view_text}, "
            f"known_crashed={sorted(map(repr, self.locally_crashed))}"
        )
