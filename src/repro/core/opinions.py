"""Opinion values and opinion vectors.

Algorithm 1 exchanges *opinion vectors*: for a proposed view ``V`` and a
round ``r``, each border node of ``V`` holds a vector indexed by the border
nodes of ``V``, where every entry is one of:

* ``⊥`` — nothing known yet about that node's stance (here: ``None``);
* ``(accept, v)`` — the node accepted the view and proposed the decision
  value ``v`` (here: :class:`Accept`);
* ``reject`` — the node rejected the view because it was proposing a
  higher-ranked one (here: the :data:`REJECT` sentinel).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Any, Optional, Union

from ..graph import NodeId


@dataclass(frozen=True)
class Accept:
    """An ``(accept, value)`` opinion: the node joined the instance."""

    value: Any

    def __repr__(self) -> str:
        return f"Accept({self.value!r})"


class _Reject:
    """Singleton sentinel for the ``reject`` opinion."""

    _instance: Optional["_Reject"] = None

    def __new__(cls) -> "_Reject":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "REJECT"

    def __reduce__(self):
        return (_Reject, ())


#: The unique ``reject`` opinion value.
REJECT = _Reject()

#: Type of a single opinion entry.  ``None`` is the paper's ``⊥``.
Opinion = Union[Accept, _Reject, None]


def is_accept(opinion: Opinion) -> bool:
    """True for ``(accept, v)`` opinions."""
    return isinstance(opinion, Accept)


def is_reject(opinion: Opinion) -> bool:
    """True for the ``reject`` opinion."""
    return opinion is REJECT


def is_bottom(opinion: Opinion) -> bool:
    """True for the unknown opinion ``⊥``."""
    return opinion is None


class OpinionVector:
    """A mutable opinion vector indexed by border nodes.

    Mirrors the paper's ``opinions[V][r][·]`` rows: entries start at ``⊥``
    and may be overwritten exactly once (line 24 of Algorithm 1 only fills
    ``⊥`` slots), which :meth:`merge` enforces.
    """

    __slots__ = ("_entries",)

    def __init__(self, members: Iterable[NodeId]) -> None:
        self._entries: dict[NodeId, Opinion] = {node: None for node in members}

    @classmethod
    def from_mapping(cls, mapping: Mapping[NodeId, Opinion]) -> "OpinionVector":
        vector = cls(mapping.keys())
        for node, opinion in mapping.items():
            if opinion is not None:
                vector.set(node, opinion)
        return vector

    @property
    def members(self) -> frozenset[NodeId]:
        return frozenset(self._entries)

    def get(self, node: NodeId) -> Opinion:
        return self._entries[node]

    def __getitem__(self, node: NodeId) -> Opinion:
        return self._entries[node]

    def __contains__(self, node: NodeId) -> bool:
        return node in self._entries

    def set(self, node: NodeId, opinion: Opinion) -> None:
        """Fill one entry; only ``⊥`` entries may be overwritten."""
        if node not in self._entries:
            raise KeyError(f"{node!r} is not indexed by this opinion vector")
        if opinion is None:
            raise ValueError("cannot explicitly set an entry to bottom")
        if self._entries[node] is not None:
            # Line 24 of Algorithm 1 never overwrites a known opinion; the
            # FIFO argument of Lemma 3 relies on first-writer-wins.
            return
        self._entries[node] = opinion

    def merge(self, other: Mapping[NodeId, Opinion]) -> list[NodeId]:
        """Fill every ``⊥`` entry for which ``other`` has information.

        Returns the list of nodes whose entry was updated.
        """
        updated = []
        for node, opinion in other.items():
            if node in self._entries and self._entries[node] is None and opinion is not None:
                self._entries[node] = opinion
                updated.append(node)
        return updated

    def as_mapping(self) -> dict[NodeId, Opinion]:
        """A copy of the raw entries (used to build round messages)."""
        return dict(self._entries)

    def rejectors(self) -> frozenset[NodeId]:
        """Nodes whose entry is ``reject``."""
        return frozenset(node for node, op in self._entries.items() if is_reject(op))

    def accepters(self) -> frozenset[NodeId]:
        """Nodes whose entry is an ``accept``."""
        return frozenset(node for node, op in self._entries.items() if is_accept(op))

    def unknown(self) -> frozenset[NodeId]:
        """Nodes whose entry is still ``⊥``."""
        return frozenset(node for node, op in self._entries.items() if op is None)

    def all_accept(self) -> bool:
        """True when every entry is an ``accept`` (decision condition, line 34)."""
        return all(is_accept(op) for op in self._entries.values())

    def accepted_values(self) -> dict[NodeId, Any]:
        """The proposal values carried by the ``accept`` entries."""
        return {
            node: op.value
            for node, op in self._entries.items()
            if isinstance(op, Accept)
        }

    def __eq__(self, other: object) -> bool:
        if isinstance(other, OpinionVector):
            return self._entries == other._entries
        if isinstance(other, Mapping):
            return self._entries == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{node!r}: {op!r}"
            for node, op in sorted(self._entries.items(), key=lambda item: repr(item[0]))
        )
        return f"OpinionVector({{{inner}}})"
