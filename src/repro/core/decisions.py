"""Decision values: ``selectValueForView`` and ``deterministicPick``.

Algorithm 1 leaves two application hooks open:

* ``selectValueForView(V)`` (line 14) — the value a node proposes for a
  view it is trying to agree on (e.g. a repair plan);
* ``deterministicPick({v_pi})`` (line 35) — how the final decision value is
  chosen among the accepted proposals.  It must be a deterministic function
  of the full opinion vector so every decider picks the same value (used in
  the proof of CD5).

A :class:`DecisionPolicy` bundles the two.  The default policy proposes a
small descriptive record and picks the proposal of the smallest border node
(by ``repr``), which is deterministic and independent of arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Protocol

from ..graph import KnowledgeGraph, NodeId, Region


class DecisionPolicy(Protocol):
    """Application hook deciding what gets proposed and what gets picked."""

    def select_value(self, graph: KnowledgeGraph, view: Region, node: NodeId) -> Any:
        """The paper's ``selectValueForView`` executed at ``node``."""
        ...

    def pick(self, graph: KnowledgeGraph, view: Region, values: Mapping[NodeId, Any]) -> Any:
        """The paper's ``deterministicPick`` over accepted values."""
        ...


@dataclass(frozen=True)
class ProposedRepair:
    """The default proposal: ``coordinator`` volunteers to lead recovery of
    ``view`` on behalf of its border."""

    coordinator: NodeId
    view: Region

    def describe(self) -> str:
        members = ", ".join(repr(node) for node in self.view.sorted_members())
        return f"{self.coordinator!r} coordinates recovery of {{{members}}}"


class CoordinatorElectionPolicy:
    """Default policy: each border node volunteers itself as coordinator and
    the pick elects the volunteer with the smallest identifier.

    The decision is then literally a (coordinator, region) pair — a minimal
    "unified recovery action" in the sense of the paper's introduction.
    """

    def select_value(self, graph: KnowledgeGraph, view: Region, node: NodeId) -> Any:
        return ProposedRepair(coordinator=node, view=view)

    def pick(self, graph: KnowledgeGraph, view: Region, values: Mapping[NodeId, Any]) -> Any:
        if not values:
            raise ValueError("deterministicPick needs at least one accepted value")
        smallest_proposer = min(values, key=repr)
        return values[smallest_proposer]


class ConstantValuePolicy:
    """Every node proposes the same constant; handy in unit tests."""

    def __init__(self, value: Any = "ok") -> None:
        self.value = value

    def select_value(self, graph: KnowledgeGraph, view: Region, node: NodeId) -> Any:
        return self.value

    def pick(self, graph: KnowledgeGraph, view: Region, values: Mapping[NodeId, Any]) -> Any:
        if not values:
            raise ValueError("deterministicPick needs at least one accepted value")
        return min((repr(v), v) for v in values.values())[1]


class CallbackPolicy:
    """Adapter turning two plain callables into a :class:`DecisionPolicy`."""

    def __init__(self, select_value, pick) -> None:
        self._select_value = select_value
        self._pick = pick

    def select_value(self, graph: KnowledgeGraph, view: Region, node: NodeId) -> Any:
        return self._select_value(graph, view, node)

    def pick(self, graph: KnowledgeGraph, view: Region, values: Mapping[NodeId, Any]) -> Any:
        return self._pick(graph, view, values)


#: Policy used when the caller does not provide one.
DEFAULT_DECISION_POLICY = CoordinatorElectionPolicy()
