"""Offline checkers for the CD1–CD7 specification properties.

Each checker inspects a finished run — the knowledge graph, the recorded
trace, and the ground-truth crash information — and reports violations.
The checkers implement the properties exactly as specified in §2.3 of the
paper; they are used by the integration tests, the property-based tests and
the EXP-C1 benchmark sweep.

Liveness-flavoured properties (CD4 Border Termination, CD7 Progress) are
only meaningful on *quiescent* runs (the simulator's event queue drained),
because "eventually" has no deadline; callers should only enable them in
that situation, which :func:`check_all` does by default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..graph import (
    KnowledgeGraph,
    NodeId,
    Region,
    cluster_border,
    faulty_clusters,
    faulty_domains,
)
from ..sim.events import EventKind, TraceEvent
from ..trace import TraceRecorder


@dataclass(frozen=True)
class Decision:
    """A single decision extracted from the trace."""

    time: float
    node: NodeId
    view: Region
    value: object

    @classmethod
    def from_event(cls, event: TraceEvent) -> "Decision":
        if event.kind is not EventKind.DECIDED:
            raise ValueError("not a DECIDED event")
        return cls(
            time=event.time,
            node=event.node,
            view=event.payload,
            value=event.detail.get("decision"),
        )


@dataclass
class PropertyReport:
    """Outcome of checking one property."""

    name: str
    holds: bool = True
    violations: list[str] = field(default_factory=list)

    def fail(self, message: str) -> None:
        self.holds = False
        self.violations.append(message)

    def __bool__(self) -> bool:
        return self.holds


@dataclass
class SpecificationReport:
    """Outcome of checking the full CD1–CD7 specification on a run."""

    reports: dict[str, PropertyReport] = field(default_factory=dict)

    def add(self, report: PropertyReport) -> None:
        self.reports[report.name] = report

    @property
    def holds(self) -> bool:
        return all(report.holds for report in self.reports.values())

    def violations(self) -> list[str]:
        out: list[str] = []
        for report in self.reports.values():
            out.extend(f"{report.name}: {violation}" for violation in report.violations)
        return out

    def summary(self) -> str:
        lines = []
        for name, report in sorted(self.reports.items()):
            status = "OK " if report.holds else "FAIL"
            lines.append(f"[{status}] {name}")
            lines.extend(f"    {violation}" for violation in report.violations)
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------
def extract_decisions(trace: TraceRecorder) -> list[Decision]:
    """All decisions of a run, in timestamp order."""
    return [Decision.from_event(event) for event in trace.decisions()]


def _crash_times(trace: TraceRecorder) -> dict[NodeId, float]:
    return {
        event.node: event.time
        for event in trace.crashes()
        if event.node is not None
    }


# ---------------------------------------------------------------------------
# Individual properties
# ---------------------------------------------------------------------------
def check_integrity(trace: TraceRecorder) -> PropertyReport:
    """CD1: no node decides twice on the same region."""
    report = PropertyReport("CD1 Integrity")
    seen: set[tuple[NodeId, Region]] = set()
    for decision in extract_decisions(trace):
        key = (decision.node, decision.view)
        if key in seen:
            report.fail(
                f"node {decision.node!r} decided twice on view "
                f"{sorted(map(repr, decision.view.members))}"
            )
        seen.add(key)
    return report


def check_view_accuracy(graph: KnowledgeGraph, trace: TraceRecorder) -> PropertyReport:
    """CD2: decided views are crashed regions bordered by the decider."""
    report = PropertyReport("CD2 View Accuracy")
    crash_times = _crash_times(trace)
    for decision in extract_decisions(trace):
        view = decision.view
        if not graph.is_connected_subset(view.members):
            report.fail(
                f"decided view {sorted(map(repr, view.members))} is not connected"
            )
        if decision.node not in graph.border(view.members):
            report.fail(
                f"decider {decision.node!r} is not on the border of its view "
                f"{sorted(map(repr, view.members))}"
            )
        for member in view.members:
            crashed_at = crash_times.get(member)
            if crashed_at is None:
                report.fail(
                    f"decided view contains {member!r} which never crashed"
                )
            elif crashed_at > decision.time:
                report.fail(
                    f"decided view contains {member!r} which crashed at "
                    f"{crashed_at} after the decision at {decision.time}"
                )
    return report


def check_locality(
    graph: KnowledgeGraph,
    trace: TraceRecorder,
    faulty: Optional[frozenset[NodeId]] = None,
) -> PropertyReport:
    """CD3: messages only flow within faulty domains and their borders.

    ``faulty`` defaults to the set of nodes that crashed during the run
    (the faulty nodes of the execution).
    """
    report = PropertyReport("CD3 Locality")
    faulty_set = faulty if faulty is not None else trace.crashed_nodes()
    domains = faulty_domains(graph, faulty_set)
    scopes = [domain.closed_neighbourhood(graph) for domain in domains]
    for event in trace.of_kind(EventKind.MESSAGE_SENT):
        sender, receiver = event.node, event.peer
        if sender is None or receiver is None:
            continue
        if sender == receiver:
            continue
        if not any(sender in scope and receiver in scope for scope in scopes):
            report.fail(
                f"message from {sender!r} to {receiver!r} leaves every "
                f"faulty-domain scope"
            )
    return report


def check_uniform_border_agreement(
    graph: KnowledgeGraph, trace: TraceRecorder
) -> PropertyReport:
    """CD5: deciders on the border of a decided view decide the same pair."""
    report = PropertyReport("CD5 Uniform Border Agreement")
    decisions = extract_decisions(trace)
    by_node: dict[NodeId, list[Decision]] = {}
    for decision in decisions:
        by_node.setdefault(decision.node, []).append(decision)
    for decision in decisions:
        border = graph.border(decision.view.members)
        for other_node, other_decisions in by_node.items():
            if other_node not in border:
                continue
            for other in other_decisions:
                if other.view != decision.view or repr(other.value) != repr(decision.value):
                    report.fail(
                        f"{decision.node!r} decided "
                        f"({sorted(map(repr, decision.view.members))}, {decision.value!r}) "
                        f"but border node {other_node!r} decided "
                        f"({sorted(map(repr, other.view.members))}, {other.value!r})"
                    )
    return report


def check_border_termination(
    graph: KnowledgeGraph, trace: TraceRecorder
) -> PropertyReport:
    """CD4: if someone decides (V, d), every correct border(V) node decides.

    Only sound on quiescent runs ("eventually" must have run its course).
    """
    report = PropertyReport("CD4 Border Termination")
    crashed = trace.crashed_nodes()
    deciders = {decision.node for decision in extract_decisions(trace)}
    for decision in extract_decisions(trace):
        for border_node in graph.border(decision.view.members):
            if border_node in crashed:
                continue
            if border_node not in deciders:
                report.fail(
                    f"{decision.node!r} decided on "
                    f"{sorted(map(repr, decision.view.members))} but correct border "
                    f"node {border_node!r} never decided"
                )
    return report


def check_view_convergence(trace: TraceRecorder) -> PropertyReport:
    """CD6: decided views of correct nodes are equal or disjoint."""
    report = PropertyReport("CD6 View Convergence")
    crashed = trace.crashed_nodes()
    decisions = [
        decision
        for decision in extract_decisions(trace)
        if decision.node not in crashed
    ]
    for index, first in enumerate(decisions):
        for second in decisions[index + 1 :]:
            if first.view.overlaps(second.view) and first.view != second.view:
                report.fail(
                    f"overlapping but different views decided by "
                    f"{first.node!r} ({sorted(map(repr, first.view.members))}) and "
                    f"{second.node!r} ({sorted(map(repr, second.view.members))})"
                )
    return report


def check_progress(
    graph: KnowledgeGraph,
    trace: TraceRecorder,
    faulty: Optional[frozenset[NodeId]] = None,
) -> PropertyReport:
    """CD7: every faulty cluster has at least one correct deciding border node.

    Only sound on quiescent runs.  Clusters whose border is entirely faulty
    are skipped (the property quantifies over correct border nodes, and a
    cluster without any cannot have one decide).
    """
    report = PropertyReport("CD7 Progress")
    faulty_set = faulty if faulty is not None else trace.crashed_nodes()
    if not faulty_set:
        return report
    crashed = trace.crashed_nodes()
    deciders = {
        decision.node
        for decision in extract_decisions(trace)
        if decision.node not in crashed
    }
    for cluster in faulty_clusters(graph, faulty_set):
        border = cluster_border(graph, cluster)
        correct_border = border - crashed
        if not correct_border:
            continue
        if not (correct_border & deciders):
            domains_text = [
                sorted(map(repr, domain.members)) for domain in cluster
            ]
            report.fail(
                f"no correct border node of faulty cluster {domains_text} decided"
            )
    return report


# ---------------------------------------------------------------------------
# Whole-specification check
# ---------------------------------------------------------------------------
def check_all(
    graph: KnowledgeGraph,
    trace: TraceRecorder,
    faulty: Optional[frozenset[NodeId]] = None,
    include_liveness: bool = True,
) -> SpecificationReport:
    """Check every CD property on a finished run.

    Parameters
    ----------
    graph:
        The knowledge graph of the run.
    trace:
        The recorded trace.
    faulty:
        Ground-truth faulty set; defaults to the nodes that crashed in the
        trace (correct for quiescent runs).
    include_liveness:
        Include CD4 and CD7, which are only sound on quiescent runs.
    """
    report = SpecificationReport()
    report.add(check_integrity(trace))
    report.add(check_view_accuracy(graph, trace))
    report.add(check_locality(graph, trace, faulty))
    report.add(check_uniform_border_agreement(graph, trace))
    report.add(check_view_convergence(trace))
    if include_liveness:
        report.add(check_border_termination(graph, trace))
        report.add(check_progress(graph, trace, faulty))
    return report


def assert_specification(
    graph: KnowledgeGraph,
    trace: TraceRecorder,
    faulty: Optional[frozenset[NodeId]] = None,
    include_liveness: bool = True,
) -> SpecificationReport:
    """Like :func:`check_all` but raises ``AssertionError`` on violations."""
    report = check_all(graph, trace, faulty, include_liveness)
    if not report.holds:
        raise AssertionError("specification violated:\n" + report.summary())
    return report
