"""Struct-of-arrays storage for trace events.

A full object trace holds one :class:`~repro.sim.events.TraceEvent`
dataclass per event — six attribute slots, a detail dict, and a payload
reference each.  At partition-worker scale that representation is the
dominant cost of a run: every worker pickles tens of thousands of event
objects back to the coordinator, and the parent holds them all live.

:class:`EventColumns` stores the same information column-wise instead:

* ``times`` — one ``array('d')`` of timestamps (8 bytes/event);
* ``kinds`` — one ``array('B')`` of :class:`~repro.sim.events.EventKind`
  codes in enum *definition* order (stable across processes, unlike
  anything hash-derived);
* ``nodes`` / ``peers`` — ``array('i')`` indices into an interned id
  table (``-1`` encodes ``None``), so a node id is stored once no matter
  how many events mention it;
* ``payloads`` / ``details`` — plain object lists (payloads are shared
  references; an empty detail dict is stored as ``None``).

Pickling is then one buffer per numeric column plus the two object
lists, and :class:`~repro.trace.recorder.TraceRecorder` reconstructs
:class:`~repro.sim.events.TraceEvent` objects lazily — equal (dataclass
equality) to the originals — only when a caller actually iterates.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Iterator, Optional

from ..sim.events import EventKind, TraceEvent

#: Kind codes are positions in enum definition order — deterministic and
#: identical in every interpreter, which pickled columns rely on.
_KINDS: tuple[EventKind, ...] = tuple(EventKind)
_KIND_INDEX: dict[EventKind, int] = {kind: index for index, kind in enumerate(_KINDS)}


class EventColumns:
    """Columnar (struct-of-arrays) backing store for a trace."""

    __slots__ = (
        "_times",
        "_kinds",
        "_nodes",
        "_peers",
        "_payloads",
        "_details",
        "_ids",
        "_id_index",
    )

    def __init__(self) -> None:
        self._times = array("d")
        self._kinds = array("B")
        self._nodes = array("i")
        self._peers = array("i")
        self._payloads: list[Any] = []
        self._details: list[Optional[dict]] = []
        #: Interned node-id objects; ``_id_index`` maps id -> position and
        #: is rebuilt (not shipped) on unpickle.
        self._ids: list[Any] = []
        self._id_index: dict[Any, int] = {}

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def _intern(self, identity: Any) -> int:
        if identity is None:
            return -1
        index = self._id_index.get(identity)
        if index is None:
            index = len(self._ids)
            self._ids.append(identity)
            self._id_index[identity] = index
        return index

    def append(self, event: TraceEvent) -> None:
        """Append one event's fields (the event object is not retained)."""
        self._times.append(event.time)
        self._kinds.append(_KIND_INDEX[event.kind])
        self._nodes.append(self._intern(event.node))
        self._peers.append(self._intern(event.peer))
        self._payloads.append(event.payload)
        self._details.append(event.detail if event.detail else None)

    def append_row_from(self, other: "EventColumns", index: int) -> None:
        """Copy row ``index`` of ``other`` without building an event.

        This is the k-way merge hot path: kind codes copy verbatim (the
        code table is a module constant), node ids re-intern through the
        destination table, payload/detail move as references.
        """
        self._times.append(other._times[index])
        self._kinds.append(other._kinds[index])
        node = other._nodes[index]
        self._nodes.append(self._intern(other._ids[node]) if node >= 0 else -1)
        peer = other._peers[index]
        self._peers.append(self._intern(other._ids[peer]) if peer >= 0 else -1)
        self._payloads.append(other._payloads[index])
        self._details.append(other._details[index])

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._times)

    def event(self, index: int) -> TraceEvent:
        """Reconstruct row ``index`` as a :class:`TraceEvent`."""
        node = self._nodes[index]
        peer = self._peers[index]
        detail = self._details[index]
        return TraceEvent(
            time=self._times[index],
            kind=_KINDS[self._kinds[index]],
            node=self._ids[node] if node >= 0 else None,
            peer=self._ids[peer] if peer >= 0 else None,
            payload=self._payloads[index],
            detail=detail if detail is not None else {},
        )

    def __iter__(self) -> Iterator[TraceEvent]:
        for index in range(len(self._times)):
            yield self.event(index)

    def events_of_kinds(self, kinds: Iterable[EventKind]) -> list[TraceEvent]:
        """Rows whose kind is in ``kinds`` — filters on the raw kind
        column, so non-matching rows are never reconstructed."""
        wanted = {_KIND_INDEX[kind] for kind in kinds}
        return [
            self.event(index)
            for index, code in enumerate(self._kinds)
            if code in wanted
        ]

    def events_at_node(self, node: Any) -> list[TraceEvent]:
        """Rows attributed to ``node`` (one interned-id comparison each)."""
        wanted = self._id_index.get(node)
        if wanted is None:
            return []
        return [
            self.event(index)
            for index, code in enumerate(self._nodes)
            if code == wanted
        ]

    def first_of(self, kind: EventKind) -> Optional[TraceEvent]:
        wanted = _KIND_INDEX[kind]
        for index, code in enumerate(self._kinds):
            if code == wanted:
                return self.event(index)
        return None

    def last_of(self, kind: EventKind) -> Optional[TraceEvent]:
        wanted = _KIND_INDEX[kind]
        for index in range(len(self._kinds) - 1, -1, -1):
            if self._kinds[index] == wanted:
                return self.event(index)
        return None

    def end_time(self) -> float:
        return self._times[-1] if self._times else 0.0

    # ------------------------------------------------------------------
    # Pickling: one buffer per column; the id index is derived state.
    # ------------------------------------------------------------------
    def __getstate__(self):
        return (
            self._times,
            self._kinds,
            self._nodes,
            self._peers,
            self._payloads,
            self._details,
            self._ids,
        )

    def __setstate__(self, state) -> None:
        (
            self._times,
            self._kinds,
            self._nodes,
            self._peers,
            self._payloads,
            self._details,
            self._ids,
        ) = state
        self._id_index = {identity: index for index, identity in enumerate(self._ids)}
