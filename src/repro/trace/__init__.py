"""Trace recording, canonical digests and metrics extraction."""

from .columns import EventColumns
from .digest import (
    StreamingTraceDigest,
    canonical_text,
    combine_digests,
    combine_partials,
    event_line,
    hex_of_partial,
    trace_digest,
)
from .metrics import (
    RunMetrics,
    StreamingRunMetrics,
    collect_metrics,
    communicating_nodes,
    message_pairs,
)
from .recorder import DIGEST_RETAINED_KINDS, TraceRecorder, TraceUnavailableError

__all__ = [
    "TraceRecorder",
    "TraceUnavailableError",
    "DIGEST_RETAINED_KINDS",
    "EventColumns",
    "RunMetrics",
    "StreamingRunMetrics",
    "StreamingTraceDigest",
    "collect_metrics",
    "communicating_nodes",
    "message_pairs",
    "canonical_text",
    "combine_digests",
    "combine_partials",
    "hex_of_partial",
    "event_line",
    "trace_digest",
]
