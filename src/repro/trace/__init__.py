"""Trace recording, canonical digests and metrics extraction."""

from .digest import canonical_text, combine_digests, event_line, trace_digest
from .metrics import RunMetrics, collect_metrics, communicating_nodes, message_pairs
from .recorder import TraceRecorder

__all__ = [
    "TraceRecorder",
    "RunMetrics",
    "collect_metrics",
    "communicating_nodes",
    "message_pairs",
    "canonical_text",
    "combine_digests",
    "event_line",
    "trace_digest",
]
