"""Trace recording and metrics extraction."""

from .metrics import RunMetrics, collect_metrics, communicating_nodes, message_pairs
from .recorder import TraceRecorder

__all__ = [
    "TraceRecorder",
    "RunMetrics",
    "collect_metrics",
    "communicating_nodes",
    "message_pairs",
]
