"""Canonical, hash-seed-independent trace digests.

The sharded sweep engine (:mod:`repro.scale`) and the partitioned
backend (:mod:`repro.sim.partition`) prove determinism by comparing
digests of traces produced in *different* worker processes.  A naive
``repr``-based digest would not survive that: ``frozenset`` and ``dict``
iteration order depends on ``PYTHONHASHSEED``, which differs between
independently started interpreters (e.g. under the ``spawn`` or
``forkserver`` multiprocessing start methods).

:func:`canonical_text` therefore encodes every value through a recursive
canonical form — collections are emitted in sorted order, dataclasses in
field order — so two structurally equal traces always produce the same
digest, no matter which process (or machine) recorded them.

The digest construction (node-composed)
---------------------------------------
The canonical trace digest is **composed per node**:

1. each node's ordered subsequence of events is folded into its own
   SHA-256 (one ``event_line`` + newline per event);
2. each finished per-node hash is bound to its node through one more
   SHA-256 leaf, ``sha256(b"node" 1F key 1F node_digest)`` where ``key``
   is :func:`canonical_text` of the node id;
3. the trace digest is the sum of all leaf values mod ``2**256``
   (rendered as 64 hex digits).

Stage 3 is commutative and associative, so the digest *composes*: a
worker that owns a disjoint subset of nodes can fold its events as they
fire (:class:`StreamingTraceDigest`), ship a single 32-byte partial sum
across the process boundary, and the coordinator adds the partials —
bit-identical to digesting the fully merged trace, with zero trace bytes
in flight.  This is exactly the partition-worker contract: each node's
events live entirely inside the partition that owns it, and the ordered
merge preserves every per-node subsequence.

The trade-off is explicit: the digest pins every node's event
*subsequence* (content and per-node order) but not the cross-node
interleaving of the merged trace.  The interleaving is pinned separately
by the determinism suite's full event-list equality assertions
(``tests/integration/test_partitioned_determinism.py``), and any
single-node reordering, dropped event, or changed payload still flips
the digest.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from collections.abc import Iterable, Mapping, Set
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (recorder imports us)
    from ..sim.events import EventKind, TraceEvent


def canonical_text(value: Any) -> str:
    """A deterministic textual encoding of ``value``.

    The encoding is injective enough for digesting: primitives render via
    ``repr``, sets and mappings are sorted by their elements' canonical
    text, sequences keep their order, dataclasses render as
    ``ClassName(field=..., ...)`` in declaration order, and anything else
    falls back to ``repr`` (which must itself be deterministic — every
    payload type in this repository either is a handled shape or defines
    a canonical ``__repr__``).
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ", ".join(
            f"{field.name}={canonical_text(getattr(value, field.name))}"
            for field in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    if isinstance(value, Mapping):
        items = sorted(
            (canonical_text(key), canonical_text(item)) for key, item in value.items()
        )
        inner = ", ".join(f"{key}: {item}" for key, item in items)
        return f"{{{inner}}}"
    if isinstance(value, (Set, frozenset, set)):
        inner = ", ".join(sorted(canonical_text(item) for item in value))
        return f"{{{inner}}}"
    if isinstance(value, (tuple, list)):
        inner = ", ".join(canonical_text(item) for item in value)
        return f"({inner})"
    return repr(value)


def event_line(event: "TraceEvent") -> str:
    """The canonical one-line encoding of a single trace event."""
    return canonical_text(event)


#: Domain separator of the per-node leaf hashes.
_LEAF_PREFIX = b"node\x1f"
#: The partial-sum group: addition mod 2**256.
_SUM_MASK = (1 << 256) - 1


def _leaf_value(key_bytes: bytes, node_digest: bytes) -> int:
    leaf = hashlib.sha256(_LEAF_PREFIX + key_bytes + b"\x1f" + node_digest).digest()
    return int.from_bytes(leaf, "big")


def hex_of_partial(partial: int) -> str:
    """Render a (combined) partial sum as the canonical 64-hex digest."""
    return format(partial & _SUM_MASK, "064x")


def combine_partials(partials: Iterable[int]) -> int:
    """Fold per-worker partial sums into one (order-independent).

    Sound only when the workers' node sets are disjoint — which the
    partitioned backend guarantees by construction (every node is owned
    by exactly one shard, joiners included).
    """
    total = 0
    for partial in partials:
        total = (total + partial) & _SUM_MASK
    return total


class StreamingTraceDigest:
    """Fold the canonical trace digest incrementally, event by event.

    Feed events with :meth:`update` in emission order; :meth:`partial`
    yields the composable integer state (what partition workers ship),
    :meth:`hexdigest` the finished digest.  Both are non-destructive, so
    a digest can be inspected mid-stream.

    ``kinds`` restricts the fold to those event kinds, mirroring
    ``TraceRecorder.digest(*kinds)``.
    """

    __slots__ = ("_wanted", "_hashers", "_payload_cache")

    def __init__(self, kinds: Optional[Iterable["EventKind"]] = None) -> None:
        self._wanted = frozenset(kinds) if kinds is not None else None
        #: node id -> (canonical key bytes, running SHA-256 of its events)
        self._hashers: dict[Any, tuple[bytes, Any]] = {}
        #: id(payload) -> (payload, canonical text).  Payload rendering
        #: dominates the digest cost and payload objects are heavily
        #: shared (a multicast reuses one message for every target, and
        #: each SENT/DELIVERED pair shares one), so rendering each object
        #: once is a multiple-times win.  The cached reference keeps the
        #: object alive, so its id cannot be reused while cached.
        self._payload_cache: dict[int, tuple[Any, str]] = {}

    def _payload_text(self, payload: Any) -> str:
        if payload is None:
            return "None"
        key = id(payload)
        hit = self._payload_cache.get(key)
        if hit is not None and hit[0] is payload:
            return hit[1]
        text = canonical_text(payload)
        self._payload_cache[key] = (payload, text)
        return text

    def _line(self, event: "TraceEvent") -> str:
        # Equal to event_line(event) — canonical_text renders a dataclass
        # as ClassName(field=..., ...) in declaration order — but with the
        # payload rendering cached by identity.  The equivalence is pinned
        # by the trace-equivalence property suite.
        return (
            "TraceEvent("
            f"time={event.time!r}, "
            f"kind=EventKind.{event.kind.name}, "
            f"node={canonical_text(event.node)}, "
            f"peer={canonical_text(event.peer)}, "
            f"payload={self._payload_text(event.payload)}, "
            f"detail={canonical_text(event.detail)})"
        )

    def update(self, event: "TraceEvent") -> None:
        """Fold one event (a no-op if its kind is filtered out)."""
        if self._wanted is not None and event.kind not in self._wanted:
            return
        entry = self._hashers.get(event.node)
        if entry is None:
            entry = (
                canonical_text(event.node).encode("utf-8"),
                hashlib.sha256(),
            )
            self._hashers[event.node] = entry
        hasher = entry[1]
        hasher.update(self._line(event).encode("utf-8"))
        hasher.update(b"\n")

    def partial(self) -> int:
        """The composable partial sum over the nodes folded so far."""
        total = 0
        for key_bytes, hasher in self._hashers.values():
            total = (total + _leaf_value(key_bytes, hasher.digest())) & _SUM_MASK
        return total

    def hexdigest(self) -> str:
        """The canonical digest of everything folded so far."""
        return hex_of_partial(self.partial())


def trace_digest(
    events: Iterable["TraceEvent"],
    kinds: Optional[Iterable["EventKind"]] = None,
) -> str:
    """The canonical digest of ``events`` (hex string).

    With ``kinds`` given, only events of those kinds contribute — e.g.
    digesting only ``DECIDED`` events compares outcomes while tolerating
    runtime-specific message interleavings.  Equal to streaming the same
    events through :class:`StreamingTraceDigest` (the property suite
    pins this).
    """
    stream = StreamingTraceDigest(kinds=kinds)
    for event in events:
        stream.update(event)
    return stream.hexdigest()


def combine_digests(digests: Iterable[str]) -> str:
    """Fold per-run digests into one order-sensitive aggregate digest.

    The sharded sweep runner digests each run in its worker and combines
    them *in submission order* in the parent, so the aggregate is equal
    iff every run's trace is equal and the merge order is stable.
    """
    hasher = hashlib.sha256()
    for digest in digests:
        hasher.update(digest.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()
