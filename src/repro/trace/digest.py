"""Canonical, hash-seed-independent trace digests.

The sharded sweep engine (:mod:`repro.scale`) proves determinism by
comparing digests of traces produced in *different* worker processes.  A
naive ``repr``-based digest would not survive that: ``frozenset`` and
``dict`` iteration order depends on ``PYTHONHASHSEED``, which differs
between independently started interpreters (e.g. under the ``spawn`` or
``forkserver`` multiprocessing start methods).

:func:`canonical_text` therefore encodes every value through a recursive
canonical form — collections are emitted in sorted order, dataclasses in
field order — so two structurally equal traces always produce the same
digest, no matter which process (or machine) recorded them.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
from collections.abc import Iterable, Mapping, Set
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (recorder imports us)
    from ..sim.events import EventKind, TraceEvent
    from .recorder import TraceRecorder


def canonical_text(value: Any) -> str:
    """A deterministic textual encoding of ``value``.

    The encoding is injective enough for digesting: primitives render via
    ``repr``, sets and mappings are sorted by their elements' canonical
    text, sequences keep their order, dataclasses render as
    ``ClassName(field=..., ...)`` in declaration order, and anything else
    falls back to ``repr`` (which must itself be deterministic — every
    payload type in this repository either is a handled shape or defines
    a canonical ``__repr__``).
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return repr(value)
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ", ".join(
            f"{field.name}={canonical_text(getattr(value, field.name))}"
            for field in dataclasses.fields(value)
        )
        return f"{type(value).__name__}({fields})"
    if isinstance(value, Mapping):
        items = sorted(
            (canonical_text(key), canonical_text(item)) for key, item in value.items()
        )
        inner = ", ".join(f"{key}: {item}" for key, item in items)
        return f"{{{inner}}}"
    if isinstance(value, (Set, frozenset, set)):
        inner = ", ".join(sorted(canonical_text(item) for item in value))
        return f"{{{inner}}}"
    if isinstance(value, (tuple, list)):
        inner = ", ".join(canonical_text(item) for item in value)
        return f"({inner})"
    return repr(value)


def event_line(event: "TraceEvent") -> str:
    """The canonical one-line encoding of a single trace event."""
    return canonical_text(event)


def trace_digest(
    events: Iterable["TraceEvent"],
    kinds: Optional[Iterable["EventKind"]] = None,
) -> str:
    """SHA-256 over the canonical encoding of ``events`` (hex digest).

    With ``kinds`` given, only events of those kinds contribute — e.g.
    digesting only ``DECIDED`` events compares outcomes while tolerating
    runtime-specific message interleavings.
    """
    wanted = frozenset(kinds) if kinds is not None else None
    hasher = hashlib.sha256()
    for event in events:
        if wanted is not None and event.kind not in wanted:
            continue
        hasher.update(event_line(event).encode("utf-8"))
        hasher.update(b"\n")
    return hasher.hexdigest()


def combine_digests(digests: Iterable[str]) -> str:
    """Fold per-run digests into one order-sensitive aggregate digest.

    The sharded sweep runner digests each run in its worker and combines
    them *in submission order* in the parent, so the aggregate is equal
    iff every run's trace is equal and the merge order is stable.
    """
    hasher = hashlib.sha256()
    for digest in digests:
        hasher.update(digest.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()
