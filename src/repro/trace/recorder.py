"""Trace recording.

A :class:`TraceRecorder` accumulates the :class:`~repro.sim.events.TraceEvent`
records produced by a run.  Both runtimes (the discrete-event simulator and
the asyncio runtime) write into the same structure, so property checkers
and metrics never need to know where a trace came from.

Collection modes
----------------
``collection="trace"`` (the default) keeps the full trace — stored
columnar (:class:`~repro.trace.columns.EventColumns`, one array per
field with interned node ids) behind the unchanged query API; events are
reconstructed lazily on iteration and compare equal to what was
recorded.

``collection="digest"`` keeps **no event log**.  The recorder folds the
canonical digest (:class:`~repro.trace.digest.StreamingTraceDigest`) and
the run metrics (:class:`~repro.trace.metrics.StreamingRunMetrics`)
incrementally as events fire, and retains only the handful of
outcome-bearing events (``DECIDED``, ``NODE_CRASHED``) that result
objects need.  ``digest()``, ``len()``, ``end_time()``, ``decisions()``,
``crashes()`` and kind filters over the retained kinds keep working;
anything that needs the full log raises :class:`TraceUnavailableError`
with a pointer back to ``collection="trace"``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from typing import TYPE_CHECKING, Any, Optional

from ..graph import NodeId
from ..sim.events import EventKind, TraceEvent
from .columns import EventColumns

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics import RunMetrics, StreamingRunMetrics


class TraceUnavailableError(RuntimeError):
    """A query needed the full event log of a digest-only recorder."""


#: Event kinds a digest-only recorder still retains as objects: the
#: outcome surface (decisions, ground-truth crash set) that result
#: objects expose even when the trace itself is not kept.
DIGEST_RETAINED_KINDS = frozenset({EventKind.DECIDED, EventKind.NODE_CRASHED})


class TraceRecorder:
    """An append-only log of trace events with simple query helpers."""

    COLLECTIONS = ("trace", "digest")

    def __init__(self, collection: str = "trace") -> None:
        if collection not in self.COLLECTIONS:
            raise ValueError(
                f"unknown collection mode {collection!r}; "
                f"known: {', '.join(self.COLLECTIONS)}"
            )
        self._collection = collection
        self._listeners: list[Callable[[TraceEvent], None]] = []
        self._columns: Optional[EventColumns] = None
        self._digest_stream = None
        self._metrics_stream: Optional["StreamingRunMetrics"] = None
        self._retained: list[TraceEvent] = []
        self._count = 0
        self._end_time = 0.0
        #: Set when this recorder was rebuilt from merged worker state
        #: (the per-node hashers are gone, so recording is closed).
        self._sealed_digest: Optional[str] = None
        self._sealed_partial: Optional[int] = None
        if collection == "trace":
            self._columns = EventColumns()
        else:
            from .digest import StreamingTraceDigest
            from .metrics import StreamingRunMetrics

            self._digest_stream = StreamingTraceDigest()
            self._metrics_stream = StreamingRunMetrics()

    @property
    def collection(self) -> str:
        """The collection mode: ``"trace"`` or ``"digest"``."""
        return self._collection

    @classmethod
    def from_columns(cls, columns: EventColumns) -> "TraceRecorder":
        """A full-trace recorder over an existing columnar store (the
        partitioned backend's merge constructs traces this way)."""
        recorder = cls()
        recorder._columns = columns
        return recorder

    @classmethod
    def from_digest_state(
        cls,
        *,
        partial: int,
        events: int,
        retained: Iterable[TraceEvent],
        metrics: "StreamingRunMetrics",
        end_time: float,
    ) -> "TraceRecorder":
        """A digest-only recorder rebuilt from merged worker state.

        ``partial`` is the combined node-composed digest sum (see
        :func:`~repro.trace.digest.combine_partials`); the recorder is
        sealed — further :meth:`record` calls raise.
        """
        from .digest import hex_of_partial

        recorder = cls(collection="digest")
        recorder._sealed_digest = hex_of_partial(partial)
        recorder._sealed_partial = partial
        recorder._count = events
        recorder._retained = list(retained)
        recorder._metrics_stream = metrics
        recorder._end_time = end_time
        return recorder

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, event: TraceEvent) -> None:
        """Append one event and notify listeners."""
        columns = self._columns
        if columns is not None:
            columns.append(event)
        else:
            if self._sealed_digest is not None:
                raise TraceUnavailableError(
                    "this recorder was rebuilt from merged digest state "
                    "and is read-only"
                )
            self._digest_stream.update(event)
            self._metrics_stream.observe(event)
            if event.kind in DIGEST_RETAINED_KINDS:
                self._retained.append(event)
            self._count += 1
            self._end_time = event.time
        for listener in self._listeners:
            listener(event)

    def emit(
        self,
        time: float,
        kind: EventKind,
        node: Optional[NodeId] = None,
        peer: Optional[NodeId] = None,
        payload: Any = None,
        **detail: Any,
    ) -> TraceEvent:
        """Build and record an event in one call; returns the event."""
        event = TraceEvent(
            time=time, kind=kind, node=node, peer=peer, payload=payload, detail=detail
        )
        self.record(event)
        return event

    def add_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked on every future event (live metrics)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Digest-mode guards and accessors
    # ------------------------------------------------------------------
    def _require_log(self, what: str) -> EventColumns:
        columns = self._columns
        if columns is None:
            raise TraceUnavailableError(
                f"collection='digest' keeps no event log, so {what} is "
                "unavailable; run with collection='trace' to keep the "
                "full trace"
            )
        return columns

    def digest_partial(self) -> Optional[int]:
        """The composable mod-2\\ :sup:`256` digest partial, when known.

        Digest-only recorders carry their node-composed partial sum — the
        32-byte state partition workers and the experiment service ship
        instead of a trace (``hex_of_partial(digest_partial())`` equals
        :meth:`digest`).  Full-trace recorders return ``None``: their
        digest is recomputed from the event log on demand and no partial
        is maintained.
        """
        if self._sealed_partial is not None:
            return self._sealed_partial
        if self._digest_stream is not None:
            return self._digest_stream.partial()
        return None

    def streamed_metrics(self) -> "RunMetrics":
        """The metrics folded so far (digest-only recorders)."""
        if self._metrics_stream is None:
            raise TraceUnavailableError(
                "streamed_metrics() is the digest-mode accessor; full "
                "traces compute metrics with collect_metrics(trace)"
            )
        return self._metrics_stream.finalize()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """All events recorded so far, in order."""
        return tuple(self._require_log("the event list"))

    def __len__(self) -> int:
        columns = self._columns
        return len(columns) if columns is not None else self._count

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._require_log("iteration"))

    def of_kind(self, *kinds: EventKind) -> list[TraceEvent]:
        """Events whose kind is one of ``kinds``.

        Digest-only recorders answer this for the retained outcome kinds
        (``DECIDED``, ``NODE_CRASHED``) and raise otherwise.
        """
        columns = self._columns
        if columns is not None:
            return columns.events_of_kinds(kinds)
        wanted = set(kinds)
        if wanted <= DIGEST_RETAINED_KINDS:
            return [event for event in self._retained if event.kind in wanted]
        missing = ", ".join(sorted(kind.name for kind in wanted - DIGEST_RETAINED_KINDS))
        raise TraceUnavailableError(
            f"collection='digest' retains only "
            f"{', '.join(sorted(k.name for k in DIGEST_RETAINED_KINDS))} events; "
            f"{missing} needs collection='trace'"
        )

    def at_node(self, node: NodeId) -> list[TraceEvent]:
        """Events attributed to ``node``."""
        return self._require_log("per-node filtering").events_at_node(node)

    def decisions(self) -> list[TraceEvent]:
        """All DECIDED events (available in every collection mode)."""
        return self.of_kind(EventKind.DECIDED)

    def crashes(self) -> list[TraceEvent]:
        """All NODE_CRASHED events (available in every collection mode)."""
        return self.of_kind(EventKind.NODE_CRASHED)

    def crashed_nodes(self) -> frozenset[NodeId]:
        """The set of nodes that crashed during the run."""
        return frozenset(event.node for event in self.crashes() if event.node is not None)

    def messages_sent(self) -> list[TraceEvent]:
        return self.of_kind(EventKind.MESSAGE_SENT)

    def messages_delivered(self) -> list[TraceEvent]:
        return self.of_kind(EventKind.MESSAGE_DELIVERED)

    def first(self, kind: EventKind) -> Optional[TraceEvent]:
        """The earliest event of ``kind`` or ``None``."""
        columns = self._columns
        if columns is not None:
            return columns.first_of(kind)
        matching = self.of_kind(kind)
        return matching[0] if matching else None

    def last(self, kind: EventKind) -> Optional[TraceEvent]:
        """The latest event of ``kind`` or ``None``."""
        columns = self._columns
        if columns is not None:
            return columns.last_of(kind)
        matching = self.of_kind(kind)
        return matching[-1] if matching else None

    def end_time(self) -> float:
        """Timestamp of the last recorded event (0.0 for an empty trace)."""
        columns = self._columns
        return columns.end_time() if columns is not None else self._end_time

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """Events matching an arbitrary predicate."""
        return [event for event in self._require_log("filtering") if predicate(event)]

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Append many events (used when merging per-node asyncio logs)."""
        for event in events:
            self.record(event)

    def to_lines(self) -> list[str]:
        """Human-readable rendering of the whole trace."""
        return [event.describe() for event in self._require_log("rendering")]

    def digest(self, *kinds: EventKind) -> str:
        """Canonical digest of the trace (hex string).

        Without arguments every event contributes; with ``kinds`` only
        those event kinds do.  The encoding is independent of the hash
        seed of the recording process (see :mod:`repro.trace.digest`), so
        digests compare across worker processes and machines.  Digest-only
        recorders stream the unfiltered digest as events fire; kind
        filters over the retained kinds recompute from the retained
        events, other filters raise.
        """
        from .digest import trace_digest

        columns = self._columns
        if columns is not None:
            return trace_digest(columns, kinds=kinds if kinds else None)
        if not kinds:
            if self._sealed_digest is not None:
                return self._sealed_digest
            return self._digest_stream.hexdigest()
        return trace_digest(self.of_kind(*kinds), kinds=kinds)
