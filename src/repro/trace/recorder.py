"""Trace recording.

A :class:`TraceRecorder` accumulates the :class:`~repro.sim.events.TraceEvent`
records produced by a run.  Both runtimes (the discrete-event simulator and
the asyncio runtime) write into the same structure, so property checkers
and metrics never need to know where a trace came from.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from typing import Any, Optional

from ..graph import NodeId
from ..sim.events import EventKind, TraceEvent


class TraceRecorder:
    """An append-only log of trace events with simple query helpers."""

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._listeners: list[Callable[[TraceEvent], None]] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, event: TraceEvent) -> None:
        """Append one event and notify listeners."""
        self._events.append(event)
        for listener in self._listeners:
            listener(event)

    def emit(
        self,
        time: float,
        kind: EventKind,
        node: Optional[NodeId] = None,
        peer: Optional[NodeId] = None,
        payload: Any = None,
        **detail: Any,
    ) -> TraceEvent:
        """Build and record an event in one call; returns the event."""
        event = TraceEvent(
            time=time, kind=kind, node=node, peer=peer, payload=payload, detail=detail
        )
        self.record(event)
        return event

    def add_listener(self, listener: Callable[[TraceEvent], None]) -> None:
        """Register a callback invoked on every future event (live metrics)."""
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """All events recorded so far, in order."""
        return tuple(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, *kinds: EventKind) -> list[TraceEvent]:
        """Events whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [event for event in self._events if event.kind in wanted]

    def at_node(self, node: NodeId) -> list[TraceEvent]:
        """Events attributed to ``node``."""
        return [event for event in self._events if event.node == node]

    def decisions(self) -> list[TraceEvent]:
        """All DECIDED events."""
        return self.of_kind(EventKind.DECIDED)

    def crashes(self) -> list[TraceEvent]:
        """All NODE_CRASHED events."""
        return self.of_kind(EventKind.NODE_CRASHED)

    def crashed_nodes(self) -> frozenset[NodeId]:
        """The set of nodes that crashed during the run."""
        return frozenset(event.node for event in self.crashes() if event.node is not None)

    def messages_sent(self) -> list[TraceEvent]:
        return self.of_kind(EventKind.MESSAGE_SENT)

    def messages_delivered(self) -> list[TraceEvent]:
        return self.of_kind(EventKind.MESSAGE_DELIVERED)

    def first(self, kind: EventKind) -> Optional[TraceEvent]:
        """The earliest event of ``kind`` or ``None``."""
        for event in self._events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: EventKind) -> Optional[TraceEvent]:
        """The latest event of ``kind`` or ``None``."""
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def end_time(self) -> float:
        """Timestamp of the last recorded event (0.0 for an empty trace)."""
        return self._events[-1].time if self._events else 0.0

    def filter(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """Events matching an arbitrary predicate."""
        return [event for event in self._events if predicate(event)]

    def extend(self, events: Iterable[TraceEvent]) -> None:
        """Append many events (used when merging per-node asyncio logs)."""
        for event in events:
            self.record(event)

    def to_lines(self) -> list[str]:
        """Human-readable rendering of the whole trace."""
        return [event.describe() for event in self._events]

    def digest(self, *kinds: EventKind) -> str:
        """Canonical SHA-256 digest of the trace (hex string).

        Without arguments every event contributes; with ``kinds`` only
        those event kinds do.  The encoding is independent of the hash
        seed of the recording process (see :mod:`repro.trace.digest`), so
        digests compare across worker processes and machines.
        """
        from .digest import trace_digest

        return trace_digest(self._events, kinds=kinds if kinds else None)
