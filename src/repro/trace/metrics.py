"""Run metrics derived from traces.

The locality claims of the paper (CD3 and the "local complexity" headline)
are about *costs*: how many messages are exchanged, how many bytes, how
many nodes ever speak, how long until decisions land.  This module turns a
:class:`~repro.trace.recorder.TraceRecorder` into those numbers, which the
experiments print and EXPERIMENTS.md records.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from ..graph import NodeId
from ..sim.events import EventKind, TraceEvent, payload_size
from .recorder import TraceRecorder


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate cost and outcome metrics of a single run."""

    #: Total point-to-point messages handed to the network.
    messages_sent: int
    #: Total messages delivered (sent minus drops to crashed nodes).
    messages_delivered: int
    #: Estimated bytes across all sent messages.
    bytes_sent: int
    #: Nodes that sent at least one message.
    speaking_nodes: int
    #: Nodes that received at least one crash notification.
    notified_nodes: int
    #: Number of DECIDED events.
    decisions: int
    #: Number of distinct deciding nodes.
    deciding_nodes: int
    #: Number of distinct decided views.
    decided_views: int
    #: Number of VIEW_PROPOSED events.
    proposals: int
    #: Number of VIEW_REJECTED events.
    rejections: int
    #: Number of failed consensus attempts (INSTANCE_FAILED events).
    failed_instances: int
    #: Simulated time of the first decision (None when nobody decided).
    first_decision_time: Optional[float]
    #: Simulated time of the last decision (None when nobody decided).
    last_decision_time: Optional[float]
    #: Simulated time of the last event of the run.
    end_time: float
    #: Messages sent per node (only nodes that sent anything).
    per_node_messages: dict[NodeId, int] = field(default_factory=dict)

    @property
    def max_messages_per_node(self) -> int:
        """The busiest node's message count (0 when nobody spoke)."""
        return max(self.per_node_messages.values(), default=0)

    def as_row(self) -> dict[str, object]:
        """Flat dictionary used by the experiment table printers."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "bytes_sent": self.bytes_sent,
            "speaking_nodes": self.speaking_nodes,
            "notified_nodes": self.notified_nodes,
            "decisions": self.decisions,
            "deciding_nodes": self.deciding_nodes,
            "decided_views": self.decided_views,
            "proposals": self.proposals,
            "rejections": self.rejections,
            "failed_instances": self.failed_instances,
            "first_decision_time": self.first_decision_time,
            "last_decision_time": self.last_decision_time,
            "end_time": self.end_time,
            "max_messages_per_node": self.max_messages_per_node,
        }


@dataclass
class StreamingRunMetrics:
    """Mutable single-pass accumulator producing a :class:`RunMetrics`.

    Digest-only runs (``collection="digest"``) keep no event log, so the
    recorder folds metrics as events fire instead; partition workers ship
    this accumulator (a few counters and small sets) across the process
    boundary and the coordinator :meth:`merge`\\ s the per-shard halves.
    For any event stream, observing every event then :meth:`finalize`
    equals :func:`collect_metrics` over the full trace — the trace-
    equivalence property suite pins this.
    """

    messages_sent: int = 0
    messages_delivered: int = 0
    bytes_sent: int = 0
    proposals: int = 0
    rejections: int = 0
    failed_instances: int = 0
    decisions: int = 0
    first_decision_time: Optional[float] = None
    last_decision_time: Optional[float] = None
    end_time: float = 0.0
    per_node_messages: Counter = field(default_factory=Counter)
    notified_nodes: set = field(default_factory=set)
    deciding_nodes: set = field(default_factory=set)
    decided_views: set = field(default_factory=set)

    def observe(self, event: TraceEvent) -> None:
        """Fold one event (events must arrive in trace order)."""
        self.end_time = event.time
        kind = event.kind
        if kind is EventKind.MESSAGE_SENT:
            self.messages_sent += 1
            self.bytes_sent += payload_size(event.payload)
            if event.node is not None:
                self.per_node_messages[event.node] += 1
        elif kind is EventKind.MESSAGE_DELIVERED:
            self.messages_delivered += 1
        elif kind is EventKind.DECIDED:
            self.decisions += 1
            self.deciding_nodes.add(event.node)
            self.decided_views.add(event.payload)
            if self.first_decision_time is None or event.time < self.first_decision_time:
                self.first_decision_time = event.time
            if self.last_decision_time is None or event.time > self.last_decision_time:
                self.last_decision_time = event.time
        elif kind is EventKind.VIEW_PROPOSED:
            self.proposals += 1
        elif kind is EventKind.VIEW_REJECTED:
            self.rejections += 1
        elif kind is EventKind.INSTANCE_FAILED:
            self.failed_instances += 1
        elif kind is EventKind.CRASH_NOTIFIED:
            self.notified_nodes.add(event.node)

    def merge(self, other: "StreamingRunMetrics") -> None:
        """Fold another shard's accumulator into this one (in place)."""
        self.messages_sent += other.messages_sent
        self.messages_delivered += other.messages_delivered
        self.bytes_sent += other.bytes_sent
        self.proposals += other.proposals
        self.rejections += other.rejections
        self.failed_instances += other.failed_instances
        self.decisions += other.decisions
        times = [
            t for t in (self.first_decision_time, other.first_decision_time)
            if t is not None
        ]
        self.first_decision_time = min(times) if times else None
        times = [
            t for t in (self.last_decision_time, other.last_decision_time)
            if t is not None
        ]
        self.last_decision_time = max(times) if times else None
        self.end_time = max(self.end_time, other.end_time)
        self.per_node_messages.update(other.per_node_messages)
        self.notified_nodes |= other.notified_nodes
        self.deciding_nodes |= other.deciding_nodes
        self.decided_views |= other.decided_views

    def finalize(self) -> RunMetrics:
        """The immutable :class:`RunMetrics` of everything observed."""
        return RunMetrics(
            messages_sent=self.messages_sent,
            messages_delivered=self.messages_delivered,
            bytes_sent=self.bytes_sent,
            speaking_nodes=len(self.per_node_messages),
            notified_nodes=len(self.notified_nodes),
            decisions=self.decisions,
            deciding_nodes=len(self.deciding_nodes),
            decided_views=len(self.decided_views),
            proposals=self.proposals,
            rejections=self.rejections,
            failed_instances=self.failed_instances,
            first_decision_time=self.first_decision_time,
            last_decision_time=self.last_decision_time,
            end_time=self.end_time,
            per_node_messages=dict(self.per_node_messages),
        )


def collect_metrics(trace: TraceRecorder) -> RunMetrics:
    """Compute :class:`RunMetrics` from a finished trace.

    Digest-only recorders keep no event log but fold a
    :class:`StreamingRunMetrics` as events fire; for those this finalizes
    the streamed state instead of iterating (the two paths agree — see
    the trace-equivalence property suite).
    """
    if getattr(trace, "collection", "trace") == "digest":
        return trace.streamed_metrics()
    sent = trace.of_kind(EventKind.MESSAGE_SENT)
    delivered = trace.of_kind(EventKind.MESSAGE_DELIVERED)
    decisions = trace.decisions()
    proposals = trace.of_kind(EventKind.VIEW_PROPOSED)
    rejections = trace.of_kind(EventKind.VIEW_REJECTED)
    failures = trace.of_kind(EventKind.INSTANCE_FAILED)
    notifications = trace.of_kind(EventKind.CRASH_NOTIFIED)

    per_node = Counter(event.node for event in sent if event.node is not None)
    deciding_nodes = {event.node for event in decisions}
    decided_views = {event.payload for event in decisions}
    decision_times = [event.time for event in decisions]

    return RunMetrics(
        messages_sent=len(sent),
        messages_delivered=len(delivered),
        bytes_sent=sum(payload_size(event.payload) for event in sent),
        speaking_nodes=len(per_node),
        notified_nodes=len({event.node for event in notifications}),
        decisions=len(decisions),
        deciding_nodes=len(deciding_nodes),
        decided_views=len(decided_views),
        proposals=len(proposals),
        rejections=len(rejections),
        failed_instances=len(failures),
        first_decision_time=min(decision_times) if decision_times else None,
        last_decision_time=max(decision_times) if decision_times else None,
        end_time=trace.end_time(),
        per_node_messages=dict(per_node),
    )


def communicating_nodes(trace: TraceRecorder) -> frozenset[NodeId]:
    """All nodes that sent or received a protocol message.

    The locality property CD3 bounds exactly this set: it must stay inside
    the union of faulty domains and their borders.
    """
    nodes: set[NodeId] = set()
    for event in trace.of_kind(EventKind.MESSAGE_SENT, EventKind.MESSAGE_DELIVERED):
        if event.node is not None:
            nodes.add(event.node)
        if event.peer is not None:
            nodes.add(event.peer)
    return frozenset(nodes)


def message_pairs(trace: TraceRecorder) -> frozenset[tuple[NodeId, NodeId]]:
    """All (sender, receiver) pairs that exchanged at least one message."""
    pairs: set[tuple[NodeId, NodeId]] = set()
    for event in trace.of_kind(EventKind.MESSAGE_SENT):
        if event.node is not None and event.peer is not None:
            pairs.add((event.node, event.peer))
    return frozenset(pairs)
