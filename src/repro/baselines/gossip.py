"""Gossip / eventual-convergence baseline (PGM-flavoured).

Partitionable group membership services (§4, related work) converge
*eventually*: nodes keep installing new views as information spreads, with
no explicit "we are done" decision.  This baseline mimics that style for
crashed-region detection:

* every node maintains a local view = the set of crashes it has heard of;
* whenever its view changes (own failure detector or a peer's gossip), the
  node installs the new view and forwards it to all its live neighbours.

The run converges — all correct nodes connected to the evidence eventually
share the same view — but the comparison with cliff-edge consensus shows
what the paper's explicit-decision semantics buy:

* nodes install many intermediate views (no CD1-style integrity);
* nodes never *know* they have converged (no decide event);
* the information spreads across the whole connected component, not just
  the border (no CD3 locality).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.messages import ApplicationMessage
from ..failures import CrashSchedule
from ..graph import KnowledgeGraph, NodeId
from ..sim import ConstantLatency, LatencyModel, PerfectFailureDetector, Simulator
from ..sim.events import EventKind
from ..sim.process import Process, ProcessContext
from ..trace import RunMetrics, TraceRecorder, collect_metrics

_GOSSIP_TOPIC = "crash-gossip"


class GossipViewNode(Process):
    """One node of the gossip baseline."""

    def __init__(self, node_id: NodeId) -> None:
        self.node_id = node_id
        #: Current installed view: the set of nodes believed crashed.
        self.view: frozenset[NodeId] = frozenset()
        #: Number of times the view changed (view "installations").
        self.installs = 0

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.monitor_crash(ctx.graph.neighbours(self.node_id))

    def on_crash(self, ctx: ProcessContext, crashed: NodeId) -> None:
        self._merge(ctx, frozenset({crashed}))

    def on_message(self, ctx: ProcessContext, sender: NodeId, message) -> None:
        if isinstance(message, ApplicationMessage) and message.topic == _GOSSIP_TOPIC:
            self._merge(ctx, message.body)

    def _merge(self, ctx: ProcessContext, crashes: frozenset[NodeId]) -> None:
        merged = self.view | crashes
        if merged == self.view:
            return
        self.view = merged
        self.installs += 1
        ctx.record(EventKind.CUSTOM, payload=self.view, action="view_installed")
        neighbours = ctx.graph.neighbours(self.node_id) - self.view
        if neighbours:
            ctx.multicast(
                sorted(neighbours, key=repr),
                ApplicationMessage(_GOSSIP_TOPIC, self.view),
            )


@dataclass
class GossipBaselineResult:
    """Outcome of one run of the gossip baseline."""

    graph: KnowledgeGraph
    schedule: CrashSchedule
    simulator: Simulator
    trace: TraceRecorder
    metrics: RunMetrics
    #: Final view held by each correct node.
    final_views: dict[NodeId, frozenset[NodeId]]
    #: Total number of view installations across all nodes.
    total_installs: int
    #: Time at which the last view installation happened.
    convergence_time: Optional[float]

    @property
    def converged(self) -> bool:
        """True when every correct node that learned anything agrees."""
        non_empty = {view for view in self.final_views.values() if view}
        return len(non_empty) <= 1

    @property
    def informed_nodes(self) -> int:
        """Number of correct nodes holding a non-empty view at the end."""
        return sum(1 for view in self.final_views.values() if view)


def run_gossip_baseline(
    graph: KnowledgeGraph,
    schedule: CrashSchedule,
    latency: Optional[LatencyModel] = None,
    detection_delay: float = 1.0,
    seed: int = 0,
    max_events: int = 20_000_000,
) -> GossipBaselineResult:
    """Run the gossip baseline on a scenario (mirrors ``run_cliff_edge``)."""
    schedule.validate(graph)
    sim = Simulator(
        graph,
        latency=latency if latency is not None else ConstantLatency(1.0),
        failure_detector=PerfectFailureDetector(detection_delay),
        seed=seed,
    )
    sim.populate(GossipViewNode)
    schedule.applied_to(sim)
    sim.run(max_events=max_events)

    final_views: dict[NodeId, frozenset[NodeId]] = {}
    for node in graph.nodes:
        if sim.is_crashed(node):
            continue
        process = sim.process(node)
        assert isinstance(process, GossipViewNode)
        final_views[node] = process.view
    installs = [
        event
        for event in sim.trace.of_kind(EventKind.CUSTOM)
        if event.detail.get("action") == "view_installed"
    ]
    return GossipBaselineResult(
        graph=graph,
        schedule=schedule,
        simulator=sim,
        trace=sim.trace,
        metrics=collect_metrics(sim.trace),
        final_views=final_views,
        total_installs=len(installs),
        convergence_time=max((event.time for event in installs), default=None),
    )
