"""Whole-network consensus baseline (what CD3 Locality rules out).

The paper's introduction argues that classical consensus cannot be used for
crashed-region detection in very large systems because it "would involve
the entire network in a protocol run".  This module implements exactly that
strawman so the locality experiments can quantify the difference:

* every node of the system participates in a single flooding uniform
  consensus (the :class:`~repro.core.flooding.FloodingConsensusNode`
  substrate);
* each participant proposes the set of crashes it observed locally;
* the decision is the union of all reported crash sets — a globally agreed
  map of crashed nodes.

The cost is what the paper predicts: every node monitors and talks to every
other node, so messages grow with the *system* size even when the crashed
region stays tiny.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..core.flooding import FloodingConsensusNode, merge_sets
from ..failures import CrashSchedule
from ..graph import KnowledgeGraph, NodeId
from ..sim import ConstantLatency, LatencyModel, PerfectFailureDetector, Simulator
from ..sim.events import EventKind
from ..sim.process import Process, ProcessContext
from ..trace import RunMetrics, TraceRecorder, collect_metrics


class GlobalCrashMapNode(Process):
    """One participant of the whole-network crash-map consensus.

    The node monitors its graph neighbours (like the protocol does).  When
    it first observes a crash it waits ``collection_delay`` time units so
    that the failure can be observed by other nodes too, then joins the
    global flooding consensus proposing its locally observed crash set.

    Nodes that never observe a crash still participate (they are woken up
    by the first consensus message they receive) — that is precisely the
    non-locality this baseline demonstrates.
    """

    _START_TIMER = "start-global-consensus"

    def __init__(
        self,
        node_id: NodeId,
        participants: frozenset[NodeId],
        collection_delay: float = 5.0,
    ) -> None:
        self.node_id = node_id
        self.participants = frozenset(participants)
        self.collection_delay = collection_delay
        self.observed_crashes: set[NodeId] = set()
        self._timer_set = False
        self._inner: Optional[FloodingConsensusNode] = None

    # ------------------------------------------------------------------
    @property
    def decided(self) -> Optional[Any]:
        return self._inner.decided if self._inner is not None else None

    @property
    def has_decided(self) -> bool:
        return self.decided is not None

    # ------------------------------------------------------------------
    def on_start(self, ctx: ProcessContext) -> None:
        ctx.monitor_crash(ctx.graph.neighbours(self.node_id))

    def on_crash(self, ctx: ProcessContext, crashed: NodeId) -> None:
        self.observed_crashes.add(crashed)
        if self._inner is not None:
            self._inner.on_crash(ctx, crashed)
        elif not self._timer_set:
            self._timer_set = True
            ctx.set_timer(self.collection_delay, self._START_TIMER)

    def on_timer(self, ctx: ProcessContext, tag: Any) -> None:
        if tag == self._START_TIMER and self._inner is None:
            self._begin(ctx)

    def on_message(self, ctx: ProcessContext, sender: NodeId, message: Any) -> None:
        if self._inner is None:
            # Woken up by the global consensus of somebody else: join it.
            self._begin(ctx)
        self._inner.on_message(ctx, sender, message)

    # ------------------------------------------------------------------
    def _begin(self, ctx: ProcessContext) -> None:
        live_participants = self.participants
        self._inner = FloodingConsensusNode(
            self.node_id,
            live_participants,
            initial_value=frozenset(self.observed_crashes),
            pick=merge_sets,
            auto_start=False,
        )
        # The inner consensus monitors every participant in the system —
        # the quadratic monitoring cost is part of what the baseline shows.
        self._inner.on_start(ctx)
        # Replay crashes we already know about so the inner instance does
        # not wait forever for nodes we know to be dead.
        for crashed in sorted(self.observed_crashes, key=repr):
            self._inner.on_crash(ctx, crashed)
        self._inner.begin(ctx)


@dataclass
class GlobalBaselineResult:
    """Outcome of one run of the global-consensus baseline."""

    graph: KnowledgeGraph
    schedule: CrashSchedule
    simulator: Simulator
    trace: TraceRecorder
    metrics: RunMetrics
    decisions: dict[NodeId, frozenset[NodeId]]

    @property
    def agreed(self) -> bool:
        """True when every deciding node decided the same crash map."""
        return len(set(self.decisions.values())) <= 1

    @property
    def decided_map(self) -> Optional[frozenset[NodeId]]:
        """The agreed crash map (None if nobody decided)."""
        if not self.decisions:
            return None
        return next(iter(self.decisions.values()))


def run_global_baseline(
    graph: KnowledgeGraph,
    schedule: CrashSchedule,
    collection_delay: float = 5.0,
    latency: Optional[LatencyModel] = None,
    detection_delay: float = 1.0,
    seed: int = 0,
    max_events: int = 20_000_000,
) -> GlobalBaselineResult:
    """Run the whole-network baseline on a scenario.

    Mirrors :func:`repro.experiments.runner.run_cliff_edge` so the two can
    be compared row by row in EXP-B1.
    """
    schedule.validate(graph)
    sim = Simulator(
        graph,
        latency=latency if latency is not None else ConstantLatency(1.0),
        failure_detector=PerfectFailureDetector(detection_delay),
        seed=seed,
    )
    participants = frozenset(graph.nodes)
    sim.populate(
        lambda node_id: GlobalCrashMapNode(
            node_id, participants, collection_delay=collection_delay
        )
    )
    schedule.applied_to(sim)
    sim.run(max_events=max_events)

    decisions: dict[NodeId, frozenset[NodeId]] = {}
    for event in sim.trace.of_kind(EventKind.DECIDED):
        decisions[event.node] = event.detail.get("decision")
    return GlobalBaselineResult(
        graph=graph,
        schedule=schedule,
        simulator=sim,
        trace=sim.trace,
        metrics=collect_metrics(sim.trace),
        decisions=decisions,
    )
