"""Baselines the paper motivates verbally: global consensus, gossip,
uncoordinated repair."""

from .global_consensus import (
    GlobalBaselineResult,
    GlobalCrashMapNode,
    run_global_baseline,
)
from .gossip import GossipBaselineResult, GossipViewNode, run_gossip_baseline
from .uncoordinated import (
    UncoordinatedBaselineResult,
    UncoordinatedRepairNode,
    run_uncoordinated_baseline,
)

__all__ = [
    "GlobalCrashMapNode",
    "GlobalBaselineResult",
    "run_global_baseline",
    "GossipViewNode",
    "GossipBaselineResult",
    "run_gossip_baseline",
    "UncoordinatedRepairNode",
    "UncoordinatedBaselineResult",
    "run_uncoordinated_baseline",
]
