"""Uncoordinated local repair baseline.

The simplest possible reaction to a crashed region: every border node
waits a grace period after it first smells trouble and then unilaterally
"repairs" whatever it believes has crashed, with no coordination at all.

This is the strawman the paper's convergent-detection properties are
designed to rule out: border nodes of the *same* faulty domain routinely
act on different, stale views (violating CD5/CD6 analogues), and several
nodes duplicate the recovery work (no single agreed plan).  The EXP-B2/A1
experiments count exactly those anomalies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..failures import CrashSchedule
from ..graph import KnowledgeGraph, NodeId, Region
from ..sim import ConstantLatency, LatencyModel, PerfectFailureDetector, Simulator
from ..sim.events import EventKind
from ..sim.process import Process, ProcessContext
from ..trace import RunMetrics, TraceRecorder, collect_metrics


class UncoordinatedRepairNode(Process):
    """Waits ``grace_period`` after the first observed crash, then acts."""

    _ACT_TIMER = "act"

    def __init__(self, node_id: NodeId, grace_period: float = 3.0) -> None:
        self.node_id = node_id
        self.grace_period = grace_period
        self.observed: set[NodeId] = set()
        self.acted_on: Optional[Region] = None
        self._timer_set = False

    def on_start(self, ctx: ProcessContext) -> None:
        ctx.monitor_crash(ctx.graph.neighbours(self.node_id))

    def on_crash(self, ctx: ProcessContext, crashed: NodeId) -> None:
        self.observed.add(crashed)
        ctx.monitor_crash(ctx.graph.neighbours(crashed) - self.observed - {self.node_id})
        if not self._timer_set:
            self._timer_set = True
            ctx.set_timer(self.grace_period, self._ACT_TIMER)

    def on_timer(self, ctx: ProcessContext, tag) -> None:
        if tag != self._ACT_TIMER or self.acted_on is not None:
            return
        components = ctx.graph.connected_components(self.observed)
        # Act on the component adjacent to this node (there is always one,
        # because the first observation was a direct neighbour).
        adjacent = [
            component
            for component in components
            if ctx.graph.border(component) & {self.node_id}
        ]
        if not adjacent:
            return
        view = Region(max(adjacent, key=lambda c: (len(c), sorted(map(repr, c)))))
        self.acted_on = view
        ctx.record(EventKind.DECIDED, payload=view, decision=f"repair-by-{self.node_id!r}")

    def on_message(self, ctx: ProcessContext, sender: NodeId, message) -> None:
        return None


@dataclass
class UncoordinatedBaselineResult:
    """Outcome of one run of the uncoordinated baseline."""

    graph: KnowledgeGraph
    schedule: CrashSchedule
    simulator: Simulator
    trace: TraceRecorder
    metrics: RunMetrics
    #: view acted upon, per acting node.
    actions: dict[NodeId, Region]

    @property
    def conflicting_pairs(self) -> int:
        """Pairs of acting nodes whose views overlap but differ.

        Each such pair is a coordination failure the cliff-edge protocol's
        CD6 (View Convergence) would have prevented.
        """
        nodes = sorted(self.actions, key=repr)
        count = 0
        for index, first in enumerate(nodes):
            for second in nodes[index + 1 :]:
                view_a, view_b = self.actions[first], self.actions[second]
                if view_a.overlaps(view_b) and view_a != view_b:
                    count += 1
        return count

    @property
    def duplicated_repairs(self) -> int:
        """Number of extra actors per identical view (duplicate work)."""
        by_view: dict[Region, int] = {}
        for view in self.actions.values():
            by_view[view] = by_view.get(view, 0) + 1
        return sum(count - 1 for count in by_view.values() if count > 1)


def run_uncoordinated_baseline(
    graph: KnowledgeGraph,
    schedule: CrashSchedule,
    grace_period: float = 3.0,
    latency: Optional[LatencyModel] = None,
    detection_delay: float = 1.0,
    seed: int = 0,
    max_events: int = 5_000_000,
) -> UncoordinatedBaselineResult:
    """Run the uncoordinated-repair baseline on a scenario."""
    schedule.validate(graph)
    sim = Simulator(
        graph,
        latency=latency if latency is not None else ConstantLatency(1.0),
        failure_detector=PerfectFailureDetector(detection_delay),
        seed=seed,
    )
    sim.populate(lambda node_id: UncoordinatedRepairNode(node_id, grace_period))
    schedule.applied_to(sim)
    sim.run(max_events=max_events)

    actions: dict[NodeId, Region] = {}
    for node in graph.nodes:
        if sim.is_crashed(node):
            continue
        process = sim.process(node)
        assert isinstance(process, UncoordinatedRepairNode)
        if process.acted_on is not None:
            actions[node] = process.acted_on
    return UncoordinatedBaselineResult(
        graph=graph,
        schedule=schedule,
        simulator=sim,
        trace=sim.trace,
        metrics=collect_metrics(sim.trace),
        actions=actions,
    )
