"""Ring overlay substrate for the repair application.

The paper grew out of earlier work on the *generalised repair of overlay
networks* (reference [16]); its introduction motivates cliff-edge consensus
as the agreement step before a "unified recovery action".  This module
provides the overlay that action repairs: a Chord-like ring in which every
node knows its ``successors`` next nodes (and optionally power-of-two
fingers).

The overlay is deliberately simple — ring position *is* the node id — so
that repair plans can be computed deterministically from a decided view and
verified structurally after execution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..graph import GraphError, KnowledgeGraph, NodeId
from ..graph.generators import chord_like, ring


@dataclass(frozen=True)
class RingOverlay:
    """A ring of ``size`` nodes with successor lists and optional fingers."""

    size: int
    successors: int = 2
    fingers: bool = False

    def __post_init__(self) -> None:
        if self.size < 4:
            raise GraphError("ring overlays need at least 4 nodes")
        if not 1 <= self.successors < self.size:
            raise GraphError("successor count must be in [1, size)")

    # ------------------------------------------------------------------
    def knowledge_graph(self) -> KnowledgeGraph:
        """The knowledge graph induced by the overlay's links."""
        if self.fingers:
            return chord_like(self.size, self.successors, fingers=True)
        return ring(self.size, self.successors)

    def nodes(self) -> tuple[int, ...]:
        return tuple(range(self.size))

    def successor(self, node: int, hop: int = 1) -> int:
        """The ``hop``-th successor of ``node`` on the identifier ring."""
        self._check(node)
        return (node + hop) % self.size

    def predecessor(self, node: int, hop: int = 1) -> int:
        """The ``hop``-th predecessor of ``node`` on the identifier ring."""
        self._check(node)
        return (node - hop) % self.size

    def arc(self, start: int, length: int) -> tuple[int, ...]:
        """``length`` consecutive ring positions starting at ``start``."""
        self._check(start)
        if not 1 <= length < self.size:
            raise GraphError("arc length must be in [1, size)")
        return tuple((start + offset) % self.size for offset in range(length))

    def _check(self, node: int) -> None:
        if not 0 <= node < self.size:
            raise GraphError(f"{node!r} is not a ring position of this overlay")

    # ------------------------------------------------------------------
    def live_successor(self, node: int, crashed: Iterable[NodeId]) -> int:
        """The first non-crashed node clockwise after ``node``."""
        crashed_set = frozenset(crashed)
        self._check(node)
        for hop in range(1, self.size):
            candidate = self.successor(node, hop)
            if candidate not in crashed_set:
                return candidate
        raise GraphError("every other node has crashed; the ring is gone")

    def live_predecessor(self, node: int, crashed: Iterable[NodeId]) -> int:
        """The first non-crashed node counter-clockwise before ``node``."""
        crashed_set = frozenset(crashed)
        self._check(node)
        for hop in range(1, self.size):
            candidate = self.predecessor(node, hop)
            if candidate not in crashed_set:
                return candidate
        raise GraphError("every other node has crashed; the ring is gone")

    def crashed_arcs(self, crashed: Iterable[NodeId]) -> list[tuple[int, ...]]:
        """Maximal runs of consecutive crashed ring positions.

        Each run is returned clockwise, starting at the position whose
        predecessor is live.
        """
        crashed_set = {node for node in crashed if 0 <= int(node) < self.size}
        if not crashed_set:
            return []
        if len(crashed_set) == self.size:
            raise GraphError("the whole ring has crashed")
        arcs: list[tuple[int, ...]] = []
        for node in sorted(crashed_set):
            if self.predecessor(node) in crashed_set:
                continue
            run = [node]
            cursor = node
            while self.successor(cursor) in crashed_set:
                cursor = self.successor(cursor)
                run.append(cursor)
            arcs.append(tuple(run))
        return arcs

    # ------------------------------------------------------------------
    def ring_is_closed(
        self,
        crashed: Iterable[NodeId],
        extra_edges: Iterable[tuple[NodeId, NodeId]] = (),
    ) -> bool:
        """True when every live node can reach its live successor.

        A live node reaches its live successor either through one of its
        original links (successor list / fingers) or through one of the
        ``extra_edges`` added by repair plans.  This is the structural
        invariant the repair application restores.
        """
        crashed_set = frozenset(crashed)
        graph = self.knowledge_graph()
        extra: set[frozenset[NodeId]] = {frozenset(edge) for edge in extra_edges}
        for node in range(self.size):
            if node in crashed_set:
                continue
            target = self.live_successor(node, crashed_set)
            if target == node:
                continue
            direct = graph.has_edge(node, target) or frozenset((node, target)) in extra
            if not direct:
                return False
        return True

    def survivor_graph(
        self,
        crashed: Iterable[NodeId],
        extra_edges: Iterable[tuple[NodeId, NodeId]] = (),
    ) -> KnowledgeGraph:
        """The overlay restricted to live nodes, plus repair edges."""
        crashed_set = frozenset(crashed)
        base = self.knowledge_graph()
        edges = [
            (u, v)
            for u, v in base.edges()
            if u not in crashed_set and v not in crashed_set
        ]
        for u, v in extra_edges:
            if u not in crashed_set and v not in crashed_set:
                edges.append((u, v))
        nodes = [node for node in range(self.size) if node not in crashed_set]
        return KnowledgeGraph(edges, nodes=nodes)
