"""Repair plans: the decision values agreed upon by the border.

A :class:`RepairPlan` is the "unified recovery action" of the paper's
introduction, specialised to the ring overlay: a deterministic set of new
edges that bridge the crashed arcs covered by a decided view, plus the
coordinator responsible for driving the repair.

Because the plan is a pure function of (overlay, view), every border node
of a view proposes the *same* plan, and the protocol's
``deterministicPick`` trivially yields a common action — exactly the
pattern the paper has in mind.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from ..graph import KnowledgeGraph, NodeId, Region
from .overlay import RingOverlay


@dataclass(frozen=True)
class RepairPlan:
    """A concrete recovery action for one decided view."""

    #: The crashed region this plan repairs.
    view: Region
    #: New overlay edges to install (each bridges one crashed arc).
    new_edges: tuple[tuple[NodeId, NodeId], ...]
    #: The border node proposing to drive the repair.
    coordinator: NodeId

    def describe(self) -> str:
        members = ", ".join(map(repr, self.view.sorted_members()))
        bridges = ", ".join(f"{u!r}-{v!r}" for u, v in self.new_edges)
        return (
            f"repair of {{{members}}} by {self.coordinator!r}: "
            f"bridge [{bridges or 'nothing'}]"
        )

    def wire_size(self) -> int:
        return 16 + 8 * (len(self.view.members) + 2 * len(self.new_edges) + 1)


def plan_for_view(overlay: RingOverlay, view: Region, coordinator: NodeId) -> RepairPlan:
    """Compute the canonical repair plan of ``view`` on ``overlay``.

    For every maximal crashed arc covered by the view, add one bridge edge
    from the arc's live predecessor to its live successor.  The computation
    only uses the view itself (not the proposer's wider knowledge), so all
    proposers of the same view produce the same bridges.
    """
    crashed = view.members
    bridges: list[tuple[NodeId, NodeId]] = []
    for arc in overlay.crashed_arcs(crashed):
        first, last = arc[0], arc[-1]
        predecessor = overlay.live_predecessor(first, crashed)
        successor = overlay.live_successor(last, crashed)
        if predecessor != successor:
            bridges.append((predecessor, successor))
    return RepairPlan(view=view, new_edges=tuple(sorted(bridges)), coordinator=coordinator)


class RingRepairPolicy:
    """A :class:`~repro.core.decisions.DecisionPolicy` producing repair plans.

    ``select_value`` proposes the canonical plan with the proposing node as
    candidate coordinator; ``pick`` keeps the plan of the smallest border
    node, so the agreed decision both fixes the bridges and elects a
    coordinator.
    """

    def __init__(self, overlay: RingOverlay) -> None:
        self.overlay = overlay

    def select_value(self, graph: KnowledgeGraph, view: Region, node: NodeId) -> Any:
        return plan_for_view(self.overlay, view, coordinator=node)

    def pick(self, graph: KnowledgeGraph, view: Region, values: Mapping[NodeId, Any]) -> Any:
        if not values:
            raise ValueError("deterministicPick needs at least one accepted value")
        chosen = min(values, key=repr)
        return values[chosen]
