"""Executing and verifying repair plans.

The protocol's output is a set of decisions ``(view, RepairPlan)``.  The
executor applies the agreed plans to the overlay (installing the bridge
edges), reports who actually drives each repair (the elected coordinator),
and verifies the structural invariant the repair is meant to restore: every
surviving node can again reach its live successor, and the survivor overlay
is connected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..core.properties import Decision
from ..graph import NodeId, Region
from .overlay import RingOverlay
from .plans import RepairPlan


class RepairError(RuntimeError):
    """Raised when decisions cannot be turned into a consistent repair."""


@dataclass
class RepairOutcome:
    """Result of applying the agreed repair plans to the overlay."""

    overlay: RingOverlay
    crashed: frozenset[NodeId]
    #: One plan per decided view (after de-duplicating identical decisions).
    plans: dict[Region, RepairPlan] = field(default_factory=dict)
    #: Bridge edges actually installed.
    installed_edges: tuple[tuple[NodeId, NodeId], ...] = ()

    @property
    def coordinators(self) -> dict[Region, NodeId]:
        """The coordinator elected for each repaired view."""
        return {view: plan.coordinator for view, plan in self.plans.items()}

    @property
    def ring_restored(self) -> bool:
        """True when every survivor reaches its live successor again."""
        return self.overlay.ring_is_closed(self.crashed, self.installed_edges)

    @property
    def survivors_connected(self) -> bool:
        """True when the survivor overlay (with repairs) is connected."""
        survivor_graph = self.overlay.survivor_graph(self.crashed, self.installed_edges)
        return survivor_graph.is_connected()

    def summary(self) -> str:
        lines = [
            f"crashed={sorted(map(repr, self.crashed))}",
            f"repaired views={len(self.plans)} "
            f"bridges={len(self.installed_edges)}",
            f"ring restored={self.ring_restored} "
            f"survivors connected={self.survivors_connected}",
        ]
        for view, plan in sorted(self.plans.items(), key=lambda item: repr(item[0])):
            lines.append("  " + plan.describe())
        return "\n".join(lines)


def apply_decisions(
    overlay: RingOverlay,
    crashed: Iterable[NodeId],
    decisions: Iterable[Decision],
) -> RepairOutcome:
    """Apply the repair plans carried by a run's decisions.

    Decisions on the same view must carry the same plan (the protocol's
    CD5 guarantees it); a mismatch raises :class:`RepairError` because it
    would mean the agreement layer failed.
    """
    plans: dict[Region, RepairPlan] = {}
    for decision in decisions:
        plan = decision.value
        if not isinstance(plan, RepairPlan):
            raise RepairError(
                f"decision of {decision.node!r} does not carry a RepairPlan: {plan!r}"
            )
        existing = plans.get(decision.view)
        if existing is None:
            plans[decision.view] = plan
        elif existing != plan:
            raise RepairError(
                f"conflicting plans agreed for view "
                f"{sorted(map(repr, decision.view.members))}: {existing!r} vs {plan!r}"
            )
    installed: list[tuple[NodeId, NodeId]] = []
    for plan in plans.values():
        installed.extend(plan.new_edges)
    return RepairOutcome(
        overlay=overlay,
        crashed=frozenset(crashed),
        plans=plans,
        installed_edges=tuple(sorted(set(installed))),
    )
