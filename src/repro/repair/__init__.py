"""Overlay-repair application built on cliff-edge consensus."""

from .executor import RepairError, RepairOutcome, apply_decisions
from .overlay import RingOverlay
from .plans import RepairPlan, RingRepairPolicy, plan_for_view

__all__ = [
    "RingOverlay",
    "RepairPlan",
    "RingRepairPolicy",
    "plan_for_view",
    "RepairOutcome",
    "RepairError",
    "apply_decisions",
]
