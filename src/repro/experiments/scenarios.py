"""Executable reproductions of the paper's figures.

Each ``fig*_scenario`` builds the topology, the crash schedule and the
failure-detector timing that recreate the situation drawn in the paper, and
each ``run_fig*`` executes it and returns both the raw
:class:`~repro.experiments.runner.RunResult` and a small summary of the
figure-specific observations (who decided what, which conflicts arose and
how they were resolved).
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field
from typing import Optional

from ..churn import (
    ChurnRunResult,
    MembershipSchedule,
    crash_recover_recrash,
    flash_crowd_joins,
    run_churn,
    run_churn_asyncio,
    steady_state_churn,
)
from ..failures import CrashSchedule, growing_region_crash, multi_region_crash, region_crash
from ..graph import KnowledgeGraph, NodeId, Region
from ..graph.generators import torus
from ..sim import ConstantLatency, ScriptedFailureDetector
from ..sim.events import EventKind
from .runner import RunResult, run_cliff_edge
from .topologies import (
    FIG1_F1,
    FIG1_F2,
    FIG1_F3,
    Fig2Layout,
    Fig3Layout,
    fig1_topology,
    fig2_topology,
    fig3_topology,
)


@dataclass
class Scenario:
    """A ready-to-run scenario: topology + crash schedule + detector timing."""

    name: str
    graph: KnowledgeGraph
    schedule: CrashSchedule
    description: str = ""
    failure_detector: Optional[ScriptedFailureDetector] = None
    labels: dict = field(default_factory=dict)

    def run(self, check: bool = True, seed: int = 0) -> RunResult:
        result = run_cliff_edge(
            self.graph,
            self.schedule,
            failure_detector=self.failure_detector,
            seed=seed,
            check=check,
        )
        result.labels.update(self.labels)
        result.labels["scenario"] = self.name
        return result


# ---------------------------------------------------------------------------
# Figure 1a — two independent crashed regions, agreed locally
# ---------------------------------------------------------------------------
def fig1a_scenario() -> Scenario:
    """Fig. 1a: regions F1 (Europe) and F2 (Pacific) crash independently."""
    graph = fig1_topology()
    schedule = multi_region_crash(graph, [FIG1_F1, FIG1_F2], at=1.0)
    return Scenario(
        name="fig1a",
        graph=graph,
        schedule=schedule,
        description=(
            "Two disjoint crashed regions; each border agrees locally and "
            "nodes such as vancouver never talk to madrid (CD3)."
        ),
    )


# ---------------------------------------------------------------------------
# Figure 1b — F1 grows into F3 while the agreement is in flight
# ---------------------------------------------------------------------------
def fig1b_scenario(madrid_detection_delay: float = 40.0) -> Scenario:
    """Fig. 1b: paris crashes mid-protocol; madrid is slow to notice.

    The scripted failure detector delays madrid's detection of paris'
    crash, so madrid keeps trying to agree on F1 with london and roma while
    berlin (paris' surviving neighbour) pushes for F3.  The protocol must
    resolve the conflict through ranking-based rejection and converge on
    F3.
    """
    graph = fig1_topology()
    schedule = growing_region_crash(
        graph,
        FIG1_F1,
        growth_members=["paris"],
        initial_at=1.0,
        growth_at=4.0,
    )
    detector = ScriptedFailureDetector(default_delay=1.0)
    detector.set_delay("madrid", "paris", madrid_detection_delay)
    return Scenario(
        name="fig1b",
        graph=graph,
        schedule=schedule,
        failure_detector=detector,
        description=(
            "F1 grows into F3 = F1 ∪ {paris} before agreement completes; "
            "madrid and berlin initially hold conflicting views."
        ),
        labels={"madrid_detection_delay": madrid_detection_delay},
    )


@dataclass
class Fig1bObservations:
    """What the Fig. 1b run shows, extracted from the trace."""

    result: RunResult
    #: Views proposed by madrid over time (smallest first).
    madrid_proposals: list[Region]
    #: Views proposed by berlin over time.
    berlin_proposals: list[Region]
    #: The single view eventually decided.
    decided_view: Optional[Region]
    #: Number of rejection messages exchanged while resolving the conflict.
    rejections: int

    @property
    def conflict_arose(self) -> bool:
        """True when madrid and berlin really proposed different views."""
        return any(view not in self.berlin_proposals for view in self.madrid_proposals)

    @property
    def converged_on_f3(self) -> bool:
        return (
            self.decided_view is not None
            and self.decided_view.members == FIG1_F3
        )


def run_fig1b(check: bool = True, seed: int = 0) -> Fig1bObservations:
    """Run the Fig. 1b scenario and extract its headline observations."""
    scenario = fig1b_scenario()
    result = scenario.run(check=check, seed=seed)

    def proposals_of(node: NodeId) -> list[Region]:
        return [
            event.payload
            for event in result.trace.of_kind(EventKind.VIEW_PROPOSED)
            if event.node == node
        ]

    decided_views = sorted(result.decided_views, key=lambda v: len(v), reverse=True)
    return Fig1bObservations(
        result=result,
        madrid_proposals=proposals_of("madrid"),
        berlin_proposals=proposals_of("berlin"),
        decided_view=decided_views[0] if decided_views else None,
        rejections=result.metrics.rejections,
    )


# ---------------------------------------------------------------------------
# Figure 2 — a faulty cluster of adjacent domains
# ---------------------------------------------------------------------------
@dataclass
class Fig2Observations:
    """What the Fig. 2 run shows."""

    result: RunResult
    layout: Fig2Layout
    #: Faulty domains (by name F1..F4) that ended up decided.
    decided_domains: dict[str, bool]
    #: Node that decided each decided domain.
    deciders: dict[str, tuple[NodeId, ...]]

    @property
    def cluster_has_decision(self) -> bool:
        """CD7 for the single faulty cluster of the figure."""
        return any(self.decided_domains.values())


def fig2_scenario() -> Scenario:
    """Fig. 2: four adjacent faulty domains crash simultaneously."""
    layout = fig2_topology()
    schedule = multi_region_crash(layout.graph, layout.domains, at=1.0)
    return Scenario(
        name="fig2",
        graph=layout.graph,
        schedule=schedule,
        description=(
            "A faulty cluster F1‖F2‖F3‖F4; shared border nodes can only "
            "commit to one domain, so some lower-ranked domains may stay "
            "undecided while CD7 still holds for the cluster."
        ),
    )


def run_fig2(check: bool = True, seed: int = 0) -> Fig2Observations:
    """Run the Fig. 2 scenario and report which domains were decided."""
    layout = fig2_topology()
    scenario = fig2_scenario()
    result = scenario.run(check=check, seed=seed)
    decided_domains: dict[str, bool] = {}
    deciders: dict[str, tuple[NodeId, ...]] = {}
    for index, members in enumerate(layout.domains, start=1):
        name = f"F{index}"
        region = Region(frozenset(members))
        decisions = result.decisions_on(region)
        decided_domains[name] = bool(decisions)
        deciders[name] = tuple(sorted((d.node for d in decisions), key=repr))
    return Fig2Observations(
        result=result,
        layout=layout,
        decided_domains=decided_domains,
        deciders=deciders,
    )


# ---------------------------------------------------------------------------
# Figure 3 — overlapping views and CD6
# ---------------------------------------------------------------------------
@dataclass
class Fig3Observations:
    """What the Fig. 3 run shows."""

    result: RunResult
    layout: Fig3Layout
    #: The view decided in the first wave.
    first_wave_view: Optional[Region]
    #: Views decided after the second wave (should not conflict).
    post_growth_views: tuple[Region, ...]
    #: True when some node proposed the grown (overlapping) region.
    grown_region_proposed: bool

    @property
    def no_conflicting_decision(self) -> bool:
        """CD6 in action: every decided view pair is equal or disjoint."""
        views = [self.first_wave_view, *self.post_growth_views]
        views = [view for view in views if view is not None]
        for index, first in enumerate(views):
            for second in views[index + 1 :]:
                if first.overlaps(second) and first != second:
                    return False
        return True


def fig3_scenario(growth_at: float = 120.0) -> Scenario:
    """Fig. 3: a region is agreed, then grows after the agreement."""
    layout = fig3_topology()
    first = region_crash(layout.graph, layout.first_wave, at=1.0)
    second = CrashSchedule(
        tuple(
            (node, growth_at + index)
            for index, node in enumerate(layout.second_wave)
        )
    )
    return Scenario(
        name="fig3",
        graph=layout.graph,
        schedule=first.merged(second),
        description=(
            "A crashed region is agreed upon; it then grows over part of "
            "its own border.  The grown region overlaps the decided one, "
            "so CD6 forbids any conflicting second decision."
        ),
        labels={"growth_at": growth_at},
    )


def run_fig3(check: bool = True, seed: int = 0) -> Fig3Observations:
    """Run the Fig. 3 scenario and extract the convergence observations."""
    layout = fig3_topology()
    scenario = fig3_scenario()
    result = scenario.run(check=check, seed=seed)
    first_view = Region(frozenset(layout.first_wave))
    first_wave_decisions = result.decisions_on(first_view)
    post_growth = tuple(
        view for view in result.decided_views if view != first_view
    )
    grown_proposed = any(
        event.payload.members == layout.combined
        for event in result.trace.of_kind(EventKind.VIEW_PROPOSED)
    )
    return Fig3Observations(
        result=result,
        layout=layout,
        first_wave_view=first_view if first_wave_decisions else None,
        post_growth_views=post_growth,
        grown_region_proposed=grown_proposed,
    )


# ---------------------------------------------------------------------------
# Churn — dynamic-membership scenario family (not in the paper)
# ---------------------------------------------------------------------------
@dataclass
class ChurnScenario:
    """A ready-to-run churn scenario: topology + crashes + membership.

    The same scenario runs unchanged on the deterministic simulator
    (``runtime="sim"``), on the wall-clock asyncio runtime
    (``runtime="asyncio"``) and on the deterministic virtual-time loop
    (``runtime="asyncio-virtual"``); the integration tests assert they
    reach identical decisions.
    """

    name: str
    graph: KnowledgeGraph
    schedule: CrashSchedule
    membership: MembershipSchedule
    description: str = ""
    labels: dict = field(default_factory=dict)

    def run(
        self,
        check: bool = True,
        seed: int = 0,
        runtime: str = "sim",
        timeout: float = 60.0,
    ) -> ChurnRunResult:
        if runtime == "sim":
            result = run_churn(
                self.graph, self.schedule, self.membership, seed=seed, check=check
            )
        elif runtime in ("asyncio", "asyncio-virtual"):
            result = run_churn_asyncio(
                self.graph,
                self.schedule,
                self.membership,
                seed=seed,
                check=check,
                timeout=timeout,
                virtual=runtime == "asyncio-virtual",
            )
        else:
            raise ValueError(f"unknown runtime {runtime!r}")
        result.labels.update(self.labels)
        result.labels["scenario"] = self.name
        return result


def torus_side_for(nodes: int) -> int:
    """Side length of the torus approximating ``nodes`` nodes.

    The single source of the churn scenarios' sizing formula — the spec
    presets (:mod:`repro.api.presets`) reuse it so spec-driven runs stay
    digest-identical to the classic builders.
    """
    return max(3, round(math.sqrt(nodes)))


def _torus_for(nodes: int) -> KnowledgeGraph:
    side = torus_side_for(nodes)
    return torus(side, side)


def churn_steady_scenario(
    nodes: int = 64,
    churn_rate: float = 0.05,
    duration: float = 100.0,
    seed: int = 0,
    downtime: float = 15.0,
) -> ChurnScenario:
    """Steady-state churn: independent crash→recover cycles on a torus.

    ``churn_rate`` is the fraction of the population starting a cycle per
    unit time; the resulting workload keeps detection and agreement
    instances permanently in flight somewhere in the graph.
    """
    graph = _torus_for(nodes)
    schedule, membership = steady_state_churn(
        graph,
        churn_rate=churn_rate,
        duration=duration,
        seed=seed,
        downtime=downtime,
    )
    return ChurnScenario(
        name="churn-steady",
        graph=graph,
        schedule=schedule,
        membership=membership,
        description=(
            f"{len(schedule)} crashes / {len(membership)} recoveries over "
            f"{duration} time units on a {len(graph)}-node torus."
        ),
        labels={"churn_rate": churn_rate, "nodes": len(graph), "seed": seed},
    )


def churn_recovery_race_scenario(
    nodes: int = 64,
    recover_at: float = 6.0,
    recrash_at: float = 60.0,
    seed: int = 0,
) -> ChurnScenario:
    """Crash → recover → re-crash, with the recovery racing the agreement.

    A 2x2 block of the torus crashes at t=1; with the default detector
    latency the border's consensus instances are mid-round when the block
    recovers at ``recover_at``, so in-flight state must be discarded
    (epoch quotient) before the block re-crashes and is agreed on again.
    """
    graph = _torus_for(nodes)
    block = [(1, 1), (1, 2), (2, 1), (2, 2)]
    schedule, membership = crash_recover_recrash(
        graph, block, crash_at=1.0, recover_at=recover_at, recrash_at=recrash_at
    )
    return ChurnScenario(
        name="churn-race",
        graph=graph,
        schedule=schedule,
        membership=membership,
        description=(
            "A crashed block recovers while the border is still agreeing on "
            "it, then crashes again; both epochs must decide identically."
        ),
        labels={"recover_at": recover_at, "recrash_at": recrash_at, "seed": seed},
    )


def churn_flash_crowd_scenario(
    nodes: int = 64,
    crowd: int = 8,
    seed: int = 0,
) -> ChurnScenario:
    """A flash crowd joins while a crashed region is being agreed on.

    A 2x2 block crashes at t=1 and ``crowd`` brand-new nodes join by
    locality from t=3 onwards — the graph grows under the protocol's feet,
    and the joiners must neither disturb the in-flight agreement nor leak
    messages outside the faulty-domain scopes.
    """
    graph = _torus_for(nodes)
    block = [(1, 1), (1, 2), (2, 1), (2, 2)]
    schedule = region_crash(graph, block, at=1.0)
    membership = flash_crowd_joins(
        graph, count=crowd, at=3.0, spacing=1.0, seed=seed
    )
    return ChurnScenario(
        name="churn-flash-crowd",
        graph=graph,
        schedule=schedule,
        membership=membership,
        description=(
            f"{crowd} locality-attached joins arrive while the border agrees "
            "on a crashed block."
        ),
        labels={"crowd": crowd, "seed": seed},
    )


# ---------------------------------------------------------------------------
# Large-torus scale family (the sharded-sweep workload)
# ---------------------------------------------------------------------------
def torus_block_members(
    side: int, block_side: int, origin: tuple[int, int]
) -> list[tuple[int, int]]:
    """The member coordinates of a wrap-around block on a torus.

    Pure modular arithmetic — the single source of block placement shared
    by :func:`torus_block_scenario`, the ``torus-block`` sweep family and
    the spec presets, none of which need a graph to compute it.
    """
    ox, oy = origin
    return [
        ((ox + dx) % side, (oy + dy) % side)
        for dx in range(block_side)
        for dy in range(block_side)
    ]


def torus_block_origins(
    side: int, scenarios: int, block_side: int = 2
) -> list[tuple[int, int]]:
    """Block origins of the scale family, spread along the torus diagonal."""
    if scenarios < 1:
        raise ValueError("need at least one scenario")
    stride = max(side // scenarios, block_side + 2)
    origins = []
    for index in range(scenarios):
        offset = (index * stride) % side
        origins.append((offset, (offset + index) % side))
    return origins


def torus_block_scenario(
    side: int = 32,
    block_side: int = 2,
    origin: tuple[int, int] = (1, 1),
    at: float = 1.0,
) -> Scenario:
    """A ``block_side²`` block crash on a ``side×side`` torus.

    The workhorse of the scale sweeps: a ``side=32`` torus is the
    1024-node benchmark point, ``side=64`` the 4096-node one.  The block
    wraps around the torus when the origin sits near an edge (the torus
    has no edges, so the region stays connected), which lets the family
    builders spread scenarios anywhere without bounds checking.
    """
    if side < 3:
        raise ValueError("torus side must be at least 3")
    if not (1 <= block_side < side - 1):
        raise ValueError("block must be smaller than the torus")
    graph = torus(side, side)
    ox, oy = origin
    block = torus_block_members(side, block_side, origin)
    schedule = region_crash(graph, block, at=at)
    return Scenario(
        name=f"torus{side}x{side}-block{block_side}@{(ox % side, oy % side)}",
        graph=graph,
        schedule=schedule,
        description=(
            f"a {block_side}x{block_side} block crashes on a {side}x{side} "
            f"torus ({side * side} nodes); the border agrees locally."
        ),
        labels={
            "side": side,
            "nodes": side * side,
            "block_side": block_side,
            "origin": (ox % side, oy % side),
        },
    )


def torus_scale_family(
    side: int = 64,
    scenarios: int = 8,
    block_side: int = 2,
) -> list[Scenario]:
    """``scenarios`` independent block crashes spread over one big torus.

    ``side=64`` is the 4096-node scale family from the ROADMAP; each
    scenario crashes a distinct block along the torus diagonal, so a
    sweep over the family exercises many localities of the same large
    topology.  Runs are independent — ideal shards for
    :class:`~repro.scale.ShardedSweepRunner`.
    """
    return [
        torus_block_scenario(side=side, block_side=block_side, origin=origin)
        for origin in torus_block_origins(side, scenarios, block_side)
    ]
