"""Adversarial property sweep (EXP-C1) and its churn extension.

The paper proves CD1–CD7; the sweep checks them empirically across many
randomised topologies and crash schedules, including the adversarial cases
the proofs worry about: regions growing mid-protocol, cascades, several
simultaneous regions, and slow/fast failure detection mixes.

The churn extension (:func:`run_churn_sweep_case`) layers a randomised
:class:`~repro.churn.MembershipSchedule` on top — joins and recoveries
racing the cascades — and checks the *epoch-quotiented* CD1–CD7
specification instead.

Every run is deterministic in its seed, so a violation (there should be
none) is immediately reproducible.  Both sweeps accept ``workers=N`` to
shard their cases over a process pool via
:class:`~repro.scale.ShardedSweepRunner`; the results (including the
canonical per-case trace digests) are identical for every worker count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..churn import (
    MembershipEventKind,
    MembershipSchedule,
    flash_crowd_joins,
    recover,
    run_churn,
)
from ..failures import (
    CrashSchedule,
    cascade_crash,
    multi_region_crash,
    random_connected_region,
    region_crash,
)
from ..graph import KnowledgeGraph
from ..graph.generators import (
    barabasi_albert,
    clustered_communities,
    grid,
    random_geometric,
    torus,
    watts_strogatz,
)
from ..sim import JitteredFailureDetector
from .runner import run_cliff_edge


@dataclass(frozen=True)
class SweepCase:
    """One randomly generated run of the property sweep."""

    seed: int
    topology: str
    nodes: int
    crashed: int
    faulty_domains: int
    decisions: int
    decided_views: int
    messages: int
    quiescent: bool
    specification_holds: bool
    violations: tuple[str, ...]
    #: Canonical trace digest — the case's deterministic fingerprint.
    digest: str = ""

    def as_row(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "topology": self.topology,
            "nodes": self.nodes,
            "crashed": self.crashed,
            "domains": self.faulty_domains,
            "decisions": self.decisions,
            "views": self.decided_views,
            "messages": self.messages,
            "quiescent": self.quiescent,
            "spec_holds": self.specification_holds,
        }


def _random_topology(rng: random.Random) -> tuple[str, KnowledgeGraph]:
    """A randomly chosen, randomly parameterised topology."""
    choice = rng.randrange(6)
    if choice == 0:
        side = rng.randint(5, 9)
        return f"grid-{side}x{side}", grid(side, side)
    if choice == 1:
        side = rng.randint(5, 9)
        return f"torus-{side}x{side}", torus(side, side)
    if choice == 2:
        size = rng.randint(30, 70)
        return f"geometric-{size}", random_geometric(size, 0.3, seed=rng.randrange(10_000))
    if choice == 3:
        size = rng.randint(30, 70)
        return f"smallworld-{size}", watts_strogatz(size, 4, 0.2, seed=rng.randrange(10_000))
    if choice == 4:
        size = rng.randint(30, 70)
        return f"scalefree-{size}", barabasi_albert(size, 2, seed=rng.randrange(10_000))
    communities = rng.randint(3, 5)
    return (
        f"communities-{communities}",
        clustered_communities(communities, rng.randint(4, 7), seed=rng.randrange(10_000)),
    )


def _random_schedule(rng: random.Random, graph: KnowledgeGraph) -> CrashSchedule:
    """A randomly chosen crash pattern over ``graph``."""
    pattern = rng.randrange(4)
    max_region = max(1, min(len(graph) // 4, 8))
    if pattern == 0:
        region = random_connected_region(
            graph, rng.randint(1, max_region), seed=rng.randrange(10_000)
        )
        return region_crash(graph, region.members, at=1.0, spread=rng.uniform(0.0, 4.0))
    if pattern == 1:
        first = random_connected_region(
            graph, rng.randint(1, max_region), seed=rng.randrange(10_000)
        )
        second = random_connected_region(
            graph,
            rng.randint(1, max_region),
            seed=rng.randrange(10_000),
            forbidden=first.members,
        )
        return multi_region_crash(
            graph, [first.members, second.members], at=1.0, stagger=rng.uniform(0.0, 5.0)
        )
    if pattern == 2:
        start = rng.choice(sorted(graph.nodes, key=repr))
        size = rng.randint(2, max_region + 1)
        return cascade_crash(graph, start, size, start=1.0, spacing=rng.uniform(0.5, 3.0))
    region = random_connected_region(
        graph, rng.randint(2, max_region + 1), seed=rng.randrange(10_000)
    )
    # Same region, but crashing very slowly: view construction keeps racing
    # the consensus rounds, which is where arbitration earns its keep.
    return region_crash(graph, region.members, at=1.0, spread=rng.uniform(6.0, 15.0))


def run_sweep_case(seed: int) -> SweepCase:
    """Generate and execute one randomised case."""
    rng = random.Random(seed)
    topology_name, graph = _random_topology(rng)
    schedule = _random_schedule(rng, graph)
    result = run_cliff_edge(
        graph,
        schedule,
        failure_detector=JitteredFailureDetector(0.3, rng.uniform(1.0, 3.0)),
        seed=seed,
        check=True,
    )
    from ..graph import faulty_domains  # local import to avoid cycle at module load

    domains = faulty_domains(graph, schedule.nodes)
    specification = result.specification
    return SweepCase(
        seed=seed,
        topology=topology_name,
        nodes=len(graph),
        crashed=len(schedule.nodes),
        faulty_domains=len(domains),
        decisions=result.metrics.decisions,
        decided_views=result.metrics.decided_views,
        messages=result.metrics.messages_sent,
        quiescent=result.simulator.is_quiescent(),
        specification_holds=specification.holds if specification is not None else True,
        violations=tuple(specification.violations()) if specification is not None else (),
        digest=result.digest(),
    )


def property_sweep(
    seeds: Sequence[int] = tuple(range(20)), workers: int = 1
) -> list[SweepCase]:
    """EXP-C1: run the sweep for the given seeds.

    ``workers > 1`` shards the cases over a process pool; the returned
    cases (digests included) are identical to a ``workers=1`` run.
    """
    if workers != 1:
        from ..scale import ShardedSweepRunner, property_tasks

        report = ShardedSweepRunner(workers=workers).run(property_tasks(seeds))
        return report.cases()
    return [run_sweep_case(seed) for seed in seeds]


# ---------------------------------------------------------------------------
# The adversarial churn extension of EXP-C1
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ChurnSweepCase:
    """One randomly generated churned run of the property sweep."""

    seed: int
    topology: str
    nodes: int
    crashed: int
    joins: int
    recoveries: int
    epochs: int
    decisions: int
    decided_views: int
    messages: int
    quiescent: bool
    specification_holds: bool
    violations: tuple[str, ...]
    #: Canonical trace digest — the case's deterministic fingerprint.
    digest: str = ""

    def as_row(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "topology": self.topology,
            "nodes": self.nodes,
            "crashed": self.crashed,
            "joins": self.joins,
            "recoveries": self.recoveries,
            "epochs": self.epochs,
            "decisions": self.decisions,
            "views": self.decided_views,
            "messages": self.messages,
            "quiescent": self.quiescent,
            "spec_holds": self.specification_holds,
        }


def random_churn_membership(
    rng: random.Random,
    graph: KnowledgeGraph,
    schedule: CrashSchedule,
    max_joins: int = 3,
    min_downtime: float = 4.0,
    max_downtime: float = 25.0,
) -> MembershipSchedule:
    """A randomised membership schedule racing ``schedule``'s crashes.

    A random subset of the crashed nodes recovers a short, random
    downtime after its crash (often while the border is still agreeing on
    the region — the adversarial race the epoch quotient exists for), and
    up to ``max_joins`` brand-new nodes join by locality while the
    cascade is in flight.  The result always validates against
    ``(graph, schedule)``.
    """
    last_crash: dict = {}
    for node, time in schedule.crashes:
        last_crash[node] = max(time, last_crash.get(node, 0.0))
    events = []
    for node in sorted(last_crash, key=repr):
        if rng.random() < 0.5:
            downtime = rng.uniform(min_downtime, max_downtime)
            events.append(recover(node, last_crash[node] + downtime))
    membership = MembershipSchedule(tuple(sorted(events, key=lambda e: (e.time, repr(e.node)))))
    join_count = rng.randrange(max_joins + 1)
    if join_count:
        joins = flash_crowd_joins(
            graph,
            count=join_count,
            at=rng.uniform(1.0, 8.0),
            spacing=rng.uniform(0.0, 2.0),
            seed=rng.randrange(10_000),
        )
        membership = membership.merged(joins)
    return membership


def run_churn_sweep_case(seed: int) -> ChurnSweepCase:
    """Generate and execute one randomised adversarial churn case.

    Reuses EXP-C1's random topology and crash-schedule generators, layers
    a random membership schedule on top, and checks the epoch-quotiented
    CD1–CD7 specification.
    """
    rng = random.Random(seed)
    topology_name, graph = _random_topology(rng)
    schedule = _random_schedule(rng, graph)
    membership = random_churn_membership(rng, graph, schedule)
    result = run_churn(
        graph,
        schedule,
        membership,
        failure_detector=JitteredFailureDetector(0.3, rng.uniform(1.0, 3.0)),
        seed=seed,
        check=True,
    )
    specification = result.specification
    return ChurnSweepCase(
        seed=seed,
        topology=topology_name,
        nodes=len(graph),
        crashed=len(schedule.nodes),
        joins=len(membership.joining_nodes),
        recoveries=len(membership.of_kind(MembershipEventKind.RECOVER)),
        epochs=len(result.epochs),
        decisions=result.metrics.decisions,
        decided_views=result.metrics.decided_views,
        messages=result.metrics.messages_sent,
        quiescent=result.quiescent,
        specification_holds=specification.holds if specification is not None else True,
        violations=tuple(specification.violations()) if specification is not None else (),
        digest=result.digest(),
    )


def churn_property_sweep(
    seeds: Sequence[int] = tuple(range(20)), workers: int = 1
) -> list[ChurnSweepCase]:
    """The adversarial churn extension of EXP-C1.

    ``workers > 1`` shards the cases over a process pool; results are
    identical to a ``workers=1`` run.
    """
    if workers != 1:
        from ..scale import ShardedSweepRunner, churn_property_tasks

        report = ShardedSweepRunner(workers=workers).run(churn_property_tasks(seeds))
        return report.cases()
    return [run_churn_sweep_case(seed) for seed in seeds]


def sweep_summary(cases: Sequence[SweepCase]) -> dict[str, object]:
    """Aggregate view of a sweep (printed into EXPERIMENTS.md)."""
    return {
        "cases": len(cases),
        "all_hold": all(case.specification_holds for case in cases),
        "all_quiescent": all(case.quiescent for case in cases),
        "total_decisions": sum(case.decisions for case in cases),
        "total_messages": sum(case.messages for case in cases),
        "violating_seeds": [case.seed for case in cases if not case.specification_holds],
    }
