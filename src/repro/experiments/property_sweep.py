"""Adversarial property sweep (EXP-C1).

The paper proves CD1–CD7; the sweep checks them empirically across many
randomised topologies and crash schedules, including the adversarial cases
the proofs worry about: regions growing mid-protocol, cascades, several
simultaneous regions, and slow/fast failure detection mixes.

Every run is deterministic in its seed, so a violation (there should be
none) is immediately reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from ..failures import (
    CrashSchedule,
    cascade_crash,
    multi_region_crash,
    random_connected_region,
    region_crash,
)
from ..graph import KnowledgeGraph
from ..graph.generators import (
    barabasi_albert,
    clustered_communities,
    grid,
    random_geometric,
    torus,
    watts_strogatz,
)
from ..sim import JitteredFailureDetector
from .runner import run_cliff_edge


@dataclass(frozen=True)
class SweepCase:
    """One randomly generated run of the property sweep."""

    seed: int
    topology: str
    nodes: int
    crashed: int
    faulty_domains: int
    decisions: int
    decided_views: int
    messages: int
    quiescent: bool
    specification_holds: bool
    violations: tuple[str, ...]

    def as_row(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "topology": self.topology,
            "nodes": self.nodes,
            "crashed": self.crashed,
            "domains": self.faulty_domains,
            "decisions": self.decisions,
            "views": self.decided_views,
            "messages": self.messages,
            "quiescent": self.quiescent,
            "spec_holds": self.specification_holds,
        }


def _random_topology(rng: random.Random) -> tuple[str, KnowledgeGraph]:
    """A randomly chosen, randomly parameterised topology."""
    choice = rng.randrange(6)
    if choice == 0:
        side = rng.randint(5, 9)
        return f"grid-{side}x{side}", grid(side, side)
    if choice == 1:
        side = rng.randint(5, 9)
        return f"torus-{side}x{side}", torus(side, side)
    if choice == 2:
        size = rng.randint(30, 70)
        return f"geometric-{size}", random_geometric(size, 0.3, seed=rng.randrange(10_000))
    if choice == 3:
        size = rng.randint(30, 70)
        return f"smallworld-{size}", watts_strogatz(size, 4, 0.2, seed=rng.randrange(10_000))
    if choice == 4:
        size = rng.randint(30, 70)
        return f"scalefree-{size}", barabasi_albert(size, 2, seed=rng.randrange(10_000))
    communities = rng.randint(3, 5)
    return (
        f"communities-{communities}",
        clustered_communities(communities, rng.randint(4, 7), seed=rng.randrange(10_000)),
    )


def _random_schedule(rng: random.Random, graph: KnowledgeGraph) -> CrashSchedule:
    """A randomly chosen crash pattern over ``graph``."""
    pattern = rng.randrange(4)
    max_region = max(1, min(len(graph) // 4, 8))
    if pattern == 0:
        region = random_connected_region(
            graph, rng.randint(1, max_region), seed=rng.randrange(10_000)
        )
        return region_crash(graph, region.members, at=1.0, spread=rng.uniform(0.0, 4.0))
    if pattern == 1:
        first = random_connected_region(
            graph, rng.randint(1, max_region), seed=rng.randrange(10_000)
        )
        second = random_connected_region(
            graph,
            rng.randint(1, max_region),
            seed=rng.randrange(10_000),
            forbidden=first.members,
        )
        return multi_region_crash(
            graph, [first.members, second.members], at=1.0, stagger=rng.uniform(0.0, 5.0)
        )
    if pattern == 2:
        start = rng.choice(sorted(graph.nodes, key=repr))
        size = rng.randint(2, max_region + 1)
        return cascade_crash(graph, start, size, start=1.0, spacing=rng.uniform(0.5, 3.0))
    region = random_connected_region(
        graph, rng.randint(2, max_region + 1), seed=rng.randrange(10_000)
    )
    # Same region, but crashing very slowly: view construction keeps racing
    # the consensus rounds, which is where arbitration earns its keep.
    return region_crash(graph, region.members, at=1.0, spread=rng.uniform(6.0, 15.0))


def run_sweep_case(seed: int) -> SweepCase:
    """Generate and execute one randomised case."""
    rng = random.Random(seed)
    topology_name, graph = _random_topology(rng)
    schedule = _random_schedule(rng, graph)
    result = run_cliff_edge(
        graph,
        schedule,
        failure_detector=JitteredFailureDetector(0.3, rng.uniform(1.0, 3.0)),
        seed=seed,
        check=True,
    )
    from ..graph import faulty_domains  # local import to avoid cycle at module load

    domains = faulty_domains(graph, schedule.nodes)
    specification = result.specification
    return SweepCase(
        seed=seed,
        topology=topology_name,
        nodes=len(graph),
        crashed=len(schedule.nodes),
        faulty_domains=len(domains),
        decisions=result.metrics.decisions,
        decided_views=result.metrics.decided_views,
        messages=result.metrics.messages_sent,
        quiescent=result.simulator.is_quiescent(),
        specification_holds=specification.holds if specification is not None else True,
        violations=tuple(specification.violations()) if specification is not None else (),
    )


def property_sweep(seeds: Sequence[int] = tuple(range(20))) -> list[SweepCase]:
    """EXP-C1: run the sweep for the given seeds."""
    return [run_sweep_case(seed) for seed in seeds]


def sweep_summary(cases: Sequence[SweepCase]) -> dict[str, object]:
    """Aggregate view of a sweep (printed into EXPERIMENTS.md)."""
    return {
        "cases": len(cases),
        "all_hold": all(case.specification_holds for case in cases),
        "all_quiescent": all(case.quiescent for case in cases),
        "total_decisions": sum(case.decisions for case in cases),
        "total_messages": sum(case.messages for case in cases),
        "violating_seeds": [case.seed for case in cases if not case.specification_holds],
    }
