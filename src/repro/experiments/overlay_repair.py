"""End-to-end overlay repair experiment (EXP-R1).

The motivating application: a Chord-like ring overlay loses a contiguous
arc of nodes; the arc's border runs cliff-edge consensus with a
:class:`~repro.repair.plans.RingRepairPolicy`, agrees on a repair plan
(bridge edges + coordinator), and the plan is applied and verified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..failures import region_crash
from ..graph import Region
from ..repair import RepairOutcome, RingOverlay, RingRepairPolicy, apply_decisions
from .runner import RunResult, run_cliff_edge


@dataclass(frozen=True)
class OverlayRepairPoint:
    """One ring size / arc length combination."""

    ring_size: int
    successors: int
    arc_length: int
    decisions: int
    decided_views: int
    messages: int
    ring_restored: bool
    survivors_connected: bool
    coordinator: Optional[object]
    specification_holds: bool

    def as_row(self) -> dict[str, object]:
        return {
            "ring_size": self.ring_size,
            "successors": self.successors,
            "arc_length": self.arc_length,
            "decisions": self.decisions,
            "views": self.decided_views,
            "messages": self.messages,
            "ring_restored": self.ring_restored,
            "survivors_connected": self.survivors_connected,
            "coordinator": self.coordinator,
            "spec_holds": self.specification_holds,
        }


@dataclass
class OverlayRepairRun:
    """Full artefacts of one overlay-repair run (used by the example)."""

    overlay: RingOverlay
    arc: tuple[int, ...]
    result: RunResult
    outcome: RepairOutcome

    def point(self) -> OverlayRepairPoint:
        coordinators = sorted(map(repr, self.outcome.coordinators.values()))
        return OverlayRepairPoint(
            ring_size=self.overlay.size,
            successors=self.overlay.successors,
            arc_length=len(self.arc),
            decisions=self.result.metrics.decisions,
            decided_views=self.result.metrics.decided_views,
            messages=self.result.metrics.messages_sent,
            ring_restored=self.outcome.ring_restored,
            survivors_connected=self.outcome.survivors_connected,
            coordinator=coordinators[0] if coordinators else None,
            specification_holds=(
                self.result.specification.holds
                if self.result.specification is not None
                else True
            ),
        )


def run_overlay_repair(
    ring_size: int = 32,
    successors: int = 2,
    arc_start: int = 5,
    arc_length: int = 4,
    spread: float = 0.5,
    seed: int = 0,
    check: bool = True,
) -> OverlayRepairRun:
    """Crash an arc of the ring, agree on a repair plan, apply and verify it."""
    overlay = RingOverlay(ring_size, successors)
    graph = overlay.knowledge_graph()
    arc = overlay.arc(arc_start, arc_length)
    schedule = region_crash(graph, arc, at=1.0, spread=spread)
    policy = RingRepairPolicy(overlay)
    result = run_cliff_edge(
        graph, schedule, decision_policy=policy, seed=seed, check=check
    )
    outcome = apply_decisions(overlay, schedule.nodes, result.decisions)
    return OverlayRepairRun(overlay=overlay, arc=arc, result=result, outcome=outcome)


def overlay_repair_sweep(
    ring_sizes: Sequence[int] = (16, 32, 64),
    arc_lengths: Sequence[int] = (2, 4, 6),
    successors: int = 2,
    seed: int = 0,
) -> list[OverlayRepairPoint]:
    """EXP-R1: repair quality and cost across ring and failure sizes."""
    points = []
    for ring_size in ring_sizes:
        for arc_length in arc_lengths:
            if arc_length >= ring_size // 2:
                continue
            run = run_overlay_repair(
                ring_size=ring_size,
                successors=successors,
                arc_start=3,
                arc_length=arc_length,
                seed=seed,
            )
            points.append(run.point())
    return points
