"""Degradation reports: which CD1–CD7 properties survive which faults.

The fault layer (:mod:`repro.sim.faults`) breaks the paper's channel
assumptions on purpose; this module answers the question that makes such
runs *interpretable*: **which properties failed, at what fault rate, and
was that failure licensed by the fault model?**

The excuse set encodes what the specification can still promise once a
channel assumption is gone:

* **loss** removes messages without retransmission, so the
  liveness-flavoured properties — CD4 Border Termination, CD7 Progress —
  and quiescence itself may legitimately fail.  The safety properties
  (CD1, CD2, CD3, CD5, CD6) are *never* excused: a safety violation
  under loss is a genuine protocol finding, not noise.
* **duplication** and **reorder** excuse nothing.  Duplicated copies and
  bounded-delay inversions change *when* and *how often* messages
  arrive, never whether they arrive, so the full CD1–CD7 specification
  is still expected to hold.

A :class:`DegradationReport` is built either in-process
(:func:`run_degradation`, one session run per fault point) or from a
finished sweep (:func:`degradation_from_sweep`, zipping the sweep's
expanded specs with its outcomes — same order by construction).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence

from ..api.result import json_safe
from ..api.specs import ExperimentSpec, SpecError, SweepSpec

#: Pseudo-property recorded when a run fails to reach quiescence: the
#: liveness checkers are skipped on such runs (they would be unsound), so
#: without this marker a stalled run would masquerade as fully passing.
QUIESCENCE = "quiescence"

#: Fault knob -> property codes licensed to fail under that fault alone.
EXCUSED_PROPERTIES: dict[str, frozenset[str]] = {
    "loss": frozenset({"CD4", "CD7", QUIESCENCE}),
    "duplication": frozenset(),
    "reorder": frozenset(),
}

#: The fault knobs that constitute an axis (modifiers don't).
FAULT_AXES = tuple(sorted(EXCUSED_PROPERTIES))


def excuse_set(faults: Optional[Mapping[str, Any]]) -> frozenset[str]:
    """Property codes licensed to fail under this ``faults`` block."""
    if not faults:
        return frozenset()
    excused: frozenset[str] = frozenset()
    for knob in faults:
        excused |= EXCUSED_PROPERTIES.get(knob, frozenset())
    return excused


def _property_code(name: str) -> str:
    """``"CD4 Border Termination: ..."`` → ``"CD4"``."""
    return name.split(":", 1)[0].split()[0]


@dataclass(frozen=True)
class DegradationPoint:
    """One (fault configuration, seed) run of the degradation battery."""

    #: The run's ``faults`` block (``None`` for the fault-free baseline).
    faults: Optional[Mapping[str, Any]]
    #: The swept axis value at this point (0.0 for the baseline).
    rate: float
    seed: int
    #: CD1–CD7 verdict of the run (True when nothing failed).
    spec_holds: bool
    quiescent: bool
    #: Short codes of the failed properties (plus ``"quiescence"`` when
    #: the run stalled), sorted.
    failed_properties: tuple[str, ...]
    #: The subset of :attr:`failed_properties` the fault model licenses.
    excused: tuple[str, ...]
    #: Failures the fault model does *not* license — real findings.
    unexcused: tuple[str, ...]
    #: Full violation messages, for drill-down.
    violations: tuple[str, ...]
    #: Canonical trace digest of the run (pins reproducibility).
    digest: str = ""

    @property
    def acceptable(self) -> bool:
        """True when every failure at this point is excused."""
        return not self.unexcused

    def as_dict(self) -> dict[str, Any]:
        return {
            "faults": json_safe(dict(self.faults)) if self.faults else None,
            "rate": self.rate,
            "seed": self.seed,
            "spec_holds": self.spec_holds,
            "quiescent": self.quiescent,
            "failed_properties": list(self.failed_properties),
            "excused": list(self.excused),
            "unexcused": list(self.unexcused),
            "violations": list(self.violations),
            "digest": self.digest,
        }


@dataclass
class DegradationReport:
    """How the CD1–CD7 specification degrades along one fault axis."""

    #: The swept fault knob (``"loss"``, ``"duplication"``, ``"reorder"``).
    axis: str
    points: tuple[DegradationPoint, ...] = ()
    labels: dict[str, Any] = field(default_factory=dict)

    @property
    def acceptable(self) -> bool:
        """True when every failure across the battery is excused."""
        return all(point.acceptable for point in self.points)

    @property
    def holds_everywhere(self) -> bool:
        """True when no property failed at any rate (excused or not)."""
        return all(
            point.spec_holds and point.quiescent for point in self.points
        )

    def failing_rates(self) -> dict[str, list[float]]:
        """Property code -> sorted rates at which it failed."""
        rates: dict[str, set[float]] = {}
        for point in self.points:
            for code in point.failed_properties:
                rates.setdefault(code, set()).add(point.rate)
        return {code: sorted(values) for code, values in sorted(rates.items())}

    def unexcused_points(self) -> list[DegradationPoint]:
        return [point for point in self.points if not point.acceptable]

    def as_dict(self) -> dict[str, Any]:
        return {
            "type": "degradation",
            "axis": self.axis,
            "acceptable": self.acceptable,
            "holds_everywhere": self.holds_everywhere,
            "failing_rates": self.failing_rates(),
            "points": [point.as_dict() for point in self.points],
            "labels": json_safe(self.labels),
        }

    def summary(self) -> str:
        """Human-readable degradation table, one row per point."""
        lines = [
            f"degradation along {self.axis!r} "
            f"({len(self.points)} points)",
            f"{self.axis:>12}  seed  verdict     failed",
        ]
        for point in self.points:
            if point.spec_holds and point.quiescent:
                verdict, failed = "holds", "-"
            elif point.acceptable:
                verdict = "excused"
                failed = ",".join(point.failed_properties)
            else:
                verdict = "VIOLATED"
                failed = ",".join(
                    f"{code}!" if code in point.unexcused else code
                    for code in point.failed_properties
                )
            lines.append(
                f"{point.rate:>12g}  {point.seed:>4}  {verdict:<10}  {failed}"
            )
        for code, rates in self.failing_rates().items():
            lines.append(
                f"{code} fails at {self.axis}={', '.join(f'{r:g}' for r in rates)}"
            )
        lines.append(
            "all failures excused by the fault model"
            if self.acceptable
            else "UNEXCUSED failures present (marked '!')"
        )
        return "\n".join(lines)


def _failures(
    spec_holds: bool,
    quiescent: bool,
    violations: Iterable[str],
    faults: Optional[Mapping[str, Any]],
) -> tuple[tuple[str, ...], tuple[str, ...], tuple[str, ...]]:
    """Split a run's failures into (all, excused, unexcused) codes."""
    codes = {_property_code(violation) for violation in violations}
    if not spec_holds and not codes:
        codes.add("CD?")
    if not quiescent:
        codes.add(QUIESCENCE)
    excused = excuse_set(faults)
    failed = tuple(sorted(codes))
    return (
        failed,
        tuple(code for code in failed if code in excused),
        tuple(code for code in failed if code not in excused),
    )


def _point_faults(
    base: Optional[Mapping[str, Any]], axis: str, rate: float
) -> Optional[dict[str, Any]]:
    """The ``faults`` block of one axis point (``rate`` 0 ⇒ knob off)."""
    block = dict(base or {})
    if rate:
        block[axis] = rate
    else:
        # A zero rate is the fault-free baseline for this knob; dropping
        # it (rather than passing 0) also keeps reorder=0 representable,
        # where a zero-width window is a spec error.
        block.pop(axis, None)
        if axis == "duplication":
            block.pop("copies", None)
        if axis == "reorder":
            block.pop("reorder_rate", None)
    return block or None


def run_degradation(
    spec: ExperimentSpec,
    axis: str,
    rates: Sequence[float],
    seeds: Sequence[int] = (),
    session=None,
) -> DegradationReport:
    """Run the fault battery in-process and report the degradation.

    ``spec`` is the scenario template (its own ``faults`` block, if any,
    stays active on every point); ``axis`` is the fault knob to sweep and
    ``rates`` its values, each run at every seed in ``seeds`` (the
    template's seed when empty).  Checking is forced on — a degradation
    report without the CD1–CD7 verdict would be vacuous.
    """
    if axis not in FAULT_AXES:
        raise SpecError(
            f"unknown fault axis {axis!r}; known: {', '.join(FAULT_AXES)}"
        )
    if not rates:
        raise SpecError("degradation needs at least one rate")
    if session is None:
        from ..api.session import ExperimentSession

        session = ExperimentSession()
    seed_list = tuple(seeds) or (spec.seed,)
    points = []
    for rate in rates:
        faults = _point_faults(spec.runtime.faults, axis, float(rate))
        for seed in seed_list:
            run_spec = dataclasses.replace(
                spec.with_faults(faults).with_seed(seed), check=True
            )
            result = session.run(run_spec)
            specification = result.specification
            spec_holds = bool(specification is not None and specification.holds)
            violations = (
                tuple(specification.violations())
                if specification is not None
                else ()
            )
            failed, excused, unexcused = _failures(
                spec_holds, result.quiescent, violations, faults
            )
            points.append(
                DegradationPoint(
                    faults=faults,
                    rate=float(rate),
                    seed=seed,
                    spec_holds=spec_holds,
                    quiescent=result.quiescent,
                    failed_properties=failed,
                    excused=excused,
                    unexcused=unexcused,
                    violations=violations,
                    digest=result.digest(),
                )
            )
    return DegradationReport(axis=axis, points=tuple(points))


def sweep_fault_axes(spec: SweepSpec) -> list[str]:
    """The fault knobs a sweep's grid moves (``runtime.faults.*`` paths)."""
    axes = []
    for path in sorted(spec.grid):
        for sub_path in path.split("|"):
            prefix, _, leaf = sub_path.rpartition(".")
            if prefix == "runtime.faults" and leaf in FAULT_AXES:
                axes.append(leaf)
    return axes


def degradation_from_sweep(spec: SweepSpec, report) -> DegradationReport:
    """Build the degradation report from a finished experiment sweep.

    ``report`` is the :class:`~repro.scale.SweepReport` of running
    ``spec``; the sweep's expanded specs and its outcomes are zipped by
    submission order (identical by construction), so every point carries
    full fault context without re-running anything.
    """
    axes = sweep_fault_axes(spec)
    if not axes:
        raise SpecError(
            "sweep grid moves no fault knob (expected a "
            "'runtime.faults.<loss|duplication|reorder>' axis)"
        )
    axis = axes[0]
    specs = spec.expand()
    outcomes = sorted(report.outcomes, key=lambda outcome: outcome.index)
    if len(specs) != len(outcomes):
        raise SpecError(
            f"sweep shape mismatch: {len(specs)} expanded specs vs "
            f"{len(outcomes)} outcomes"
        )
    points = []
    for point_spec, outcome in zip(specs, outcomes):
        faults = point_spec.runtime.faults
        faults_dict = dict(faults) if faults is not None else None
        rate = float(faults[axis]) if faults and axis in faults else 0.0
        spec_holds = outcome.spec_holds if outcome.spec_holds is not None else True
        failed, excused, unexcused = _failures(
            spec_holds, outcome.quiescent, outcome.violations, faults_dict
        )
        points.append(
            DegradationPoint(
                faults=faults_dict,
                rate=rate,
                seed=point_spec.seed,
                spec_holds=spec_holds,
                quiescent=outcome.quiescent,
                failed_properties=failed,
                excused=excused,
                unexcused=unexcused,
                violations=tuple(outcome.violations),
                digest=outcome.digest,
            )
        )
    degradation = DegradationReport(axis=axis, points=tuple(points))
    degradation.labels.update(dict(report.labels))
    return degradation
