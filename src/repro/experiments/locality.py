"""Locality experiments (EXP-L1, EXP-L2).

The headline claim of the paper is *local complexity*: "its cost is
independent of the size of the complete system, and only depends on the
shape and extent of the crashed region to be agreed upon".  The paper never
measures this; these sweeps do.

* :func:`system_size_sweep` (EXP-L1) keeps the crashed region fixed (a
  ``k x k`` block) and grows the torus around it.  Messages, bytes and the
  number of speaking nodes should stay flat.
* :func:`region_size_sweep` (EXP-L2) keeps the torus fixed and grows the
  crashed block.  Costs should grow with the region's border (the
  consensus participant count), roughly cubically in the border size for
  the unoptimised flooding rounds the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..failures import region_crash
from ..graph import Region
from ..graph.generators import square_region, torus
from ..sim import JitteredFailureDetector
from .runner import RunResult, run_cliff_edge


@dataclass(frozen=True)
class LocalityPoint:
    """One sweep point of a locality experiment."""

    system_size: int
    region_size: int
    border_size: int
    messages: int
    bytes_sent: int
    speaking_nodes: int
    decisions: int
    decided_views: int
    rejections: int
    decision_time: Optional[float]
    specification_holds: bool

    def as_row(self) -> dict[str, object]:
        return {
            "system_size": self.system_size,
            "region_size": self.region_size,
            "border_size": self.border_size,
            "messages": self.messages,
            "bytes": self.bytes_sent,
            "speaking_nodes": self.speaking_nodes,
            "decisions": self.decisions,
            "decided_views": self.decided_views,
            "rejections": self.rejections,
            "decision_time": self.decision_time,
            "spec_holds": self.specification_holds,
        }


def _point_from_result(result: RunResult, region: Region) -> LocalityPoint:
    border = result.graph.border(region.members)
    metrics = result.metrics
    specification = result.specification
    return LocalityPoint(
        system_size=len(result.graph),
        region_size=len(region),
        border_size=len(border),
        messages=metrics.messages_sent,
        bytes_sent=metrics.bytes_sent,
        speaking_nodes=metrics.speaking_nodes,
        decisions=metrics.decisions,
        decided_views=metrics.decided_views,
        rejections=metrics.rejections,
        decision_time=metrics.last_decision_time,
        specification_holds=specification.holds if specification is not None else True,
    )


def run_torus_region_scenario(
    side: int,
    region_side: int,
    seed: int = 0,
    jittered_detection: bool = True,
    check: bool = True,
) -> tuple[RunResult, Region]:
    """Crash a ``region_side x region_side`` block in a ``side x side`` torus."""
    if region_side + 2 > side:
        raise ValueError(
            "the torus must be at least two nodes wider than the crashed block"
        )
    graph = torus(side, side)
    # Keep the block away from the wrap-around seam so its shape is exactly
    # a square (placement does not matter on a torus, but explicitness helps
    # when reading traces).
    corner = (1, 1)
    members = square_region(corner, region_side)
    region = Region.of(graph, members)
    schedule = region_crash(graph, members, at=1.0, spread=1.0)
    failure_detector = JitteredFailureDetector(0.5, 2.0) if jittered_detection else None
    result = run_cliff_edge(
        graph,
        schedule,
        failure_detector=failure_detector,
        seed=seed,
        check=check,
    )
    result.labels.update({"torus_side": side, "region_side": region_side})
    return result, region


def system_size_sweep(
    sides: Sequence[int] = (8, 12, 16, 24, 32, 48, 64),
    region_side: int = 3,
    seed: int = 0,
    check: bool = True,
) -> list[LocalityPoint]:
    """EXP-L1: fixed crashed block, growing torus."""
    points = []
    for side in sides:
        result, region = run_torus_region_scenario(
            side, region_side, seed=seed, check=check
        )
        points.append(_point_from_result(result, region))
    return points


def region_size_sweep(
    region_sides: Sequence[int] = (1, 2, 3, 4, 5, 6),
    side: int = 32,
    seed: int = 0,
    check: bool = True,
) -> list[LocalityPoint]:
    """EXP-L2: fixed torus, growing crashed block."""
    points = []
    for region_side in region_sides:
        result, region = run_torus_region_scenario(
            side, region_side, seed=seed, check=check
        )
        points.append(_point_from_result(result, region))
    return points


def locality_is_flat(points: Sequence[LocalityPoint], tolerance: float = 0.10) -> bool:
    """True when message cost varies by at most ``tolerance`` across points.

    Used by tests and EXPERIMENTS.md to state the EXP-L1 conclusion: with a
    fixed crashed region, the cost of the protocol does not grow with the
    system size.  (Identical seeds give identical runs, so in practice the
    spread is zero; the tolerance guards against jitter when callers vary
    seeds per point.)
    """
    if not points:
        return True
    messages = [point.messages for point in points]
    low, high = min(messages), max(messages)
    if low == 0:
        return high == 0
    return (high - low) / low <= tolerance
