"""Regenerate every experiment table in one go.

``python -m repro.experiments.report`` runs the full experiment index of
DESIGN.md (figures, locality sweeps, baselines, property sweep, overlay
repair, ablations) and prints the tables recorded in EXPERIMENTS.md.  The
benchmarks under ``benchmarks/`` time the same code paths; this module is
about the *numbers*, not the timings.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .ablation import (
    arbitration_ablation,
    early_termination_ablation,
    ranking_ablation,
)
from .baseline_comparison import (
    global_consensus_comparison,
    gossip_comparison,
    uncoordinated_comparison,
)
from .locality import locality_is_flat, region_size_sweep, system_size_sweep
from .overlay_repair import overlay_repair_sweep
from .property_sweep import property_sweep, sweep_summary
from .scenarios import fig1a_scenario, run_fig1b, run_fig2, run_fig3
from .tables import format_markdown_table, format_table


@dataclass
class ReportSection:
    """One experiment's rendered output."""

    experiment_id: str
    title: str
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_text(self, markdown: bool = False) -> str:
        renderer = format_markdown_table if markdown else format_table
        table = renderer(self.rows) if self.rows else "(no table)"
        lines = [f"## {self.experiment_id} — {self.title}", "", table, ""]
        lines.extend(f"* {note}" for note in self.notes)
        return "\n".join(lines)


def _fig1_section() -> ReportSection:
    section = ReportSection("FIG-1", "Conflicting views resolved by arbitration")
    result_a = fig1a_scenario().run()
    observations = run_fig1b()
    section.rows = [
        {
            "variant": "fig1a (F1 + F2 crash)",
            "decided_views": len(result_a.decided_views),
            "decisions": result_a.metrics.decisions,
            "messages": result_a.metrics.messages_sent,
            "rejections": result_a.metrics.rejections,
            "spec_holds": result_a.specification.holds,
        },
        {
            "variant": "fig1b (F1 grows into F3)",
            "decided_views": len(observations.result.decided_views),
            "decisions": observations.result.metrics.decisions,
            "messages": observations.result.metrics.messages_sent,
            "rejections": observations.rejections,
            "spec_holds": observations.result.specification.holds,
        },
    ]
    section.notes = [
        f"fig1b conflict arose: {observations.conflict_arose}; "
        f"converged on F3: {observations.converged_on_f3}",
        "madrid proposals: "
        + " -> ".join(str(sorted(map(str, v.members))) for v in observations.madrid_proposals),
    ]
    return section


def _fig2_section() -> ReportSection:
    section = ReportSection("FIG-2", "Faulty cluster of adjacent domains")
    observations = run_fig2()
    section.rows = [
        {
            "domain": name,
            "decided": decided,
            "deciders": ", ".join(map(str, observations.deciders[name])) or "-",
        }
        for name, decided in sorted(observations.decided_domains.items())
    ]
    section.notes = [
        f"CD7 (progress for the cluster): {observations.cluster_has_decision}",
        f"CD1–CD7 report: {observations.result.specification.holds}",
    ]
    return section


def _fig3_section() -> ReportSection:
    section = ReportSection("FIG-3", "View convergence on overlapping regions")
    observations = run_fig3()
    section.rows = [
        {
            "first_wave_decided": observations.first_wave_view is not None,
            "grown_region_proposed": observations.grown_region_proposed,
            "post_growth_decisions": len(observations.post_growth_views),
            "no_conflicting_decision": observations.no_conflicting_decision,
            "spec_holds": observations.result.specification.holds,
        }
    ]
    return section


def _locality_sections(quick: bool) -> list[ReportSection]:
    sides = (8, 12, 16, 24) if quick else (8, 12, 16, 24, 32, 48, 64)
    region_sides = (1, 2, 3, 4) if quick else (1, 2, 3, 4, 5, 6)
    l1 = ReportSection("EXP-L1", "Cost vs. system size (fixed 3x3 crashed region)")
    points = system_size_sweep(sides=sides)
    l1.rows = [point.as_row() for point in points]
    l1.notes = [f"message cost flat across system sizes: {locality_is_flat(points)}"]
    l2 = ReportSection("EXP-L2", "Cost vs. crashed-region size (fixed 32x32 torus)")
    l2.rows = [point.as_row() for point in region_size_sweep(region_sides=region_sides)]
    return [l1, l2]


def _baseline_sections(quick: bool) -> list[ReportSection]:
    sides_global = (6, 8, 10) if quick else (6, 8, 10, 12, 16)
    sides_gossip = (8, 12) if quick else (8, 12, 16, 24)
    b1 = ReportSection("EXP-B1", "Cliff-edge vs. whole-network flooding consensus")
    b1.rows = [point.as_row() for point in global_consensus_comparison(sides=sides_global)]
    b2 = ReportSection("EXP-B2", "Cliff-edge vs. gossip eventual convergence")
    b2.rows = [point.as_row() for point in gossip_comparison(sides=sides_gossip)]
    b3 = ReportSection("EXP-B3", "Cliff-edge vs. uncoordinated local repair")
    b3.rows = [point.as_row() for point in uncoordinated_comparison()]
    return [b1, b2, b3]


def _property_section(quick: bool) -> ReportSection:
    seeds = tuple(range(10)) if quick else tuple(range(30))
    section = ReportSection("EXP-C1", "CD1–CD7 under adversarial crash schedules")
    cases = property_sweep(seeds)
    section.rows = [case.as_row() for case in cases]
    summary = sweep_summary(cases)
    section.notes = [
        f"all cases hold: {summary['all_hold']}; "
        f"all quiescent: {summary['all_quiescent']}; "
        f"violating seeds: {summary['violating_seeds']}"
    ]
    return section


def _repair_section(quick: bool) -> ReportSection:
    ring_sizes = (16, 32) if quick else (16, 32, 64)
    section = ReportSection("EXP-R1", "End-to-end overlay repair")
    section.rows = [
        point.as_row() for point in overlay_repair_sweep(ring_sizes=ring_sizes)
    ]
    return section


def _ablation_sections() -> list[ReportSection]:
    a1 = ReportSection("EXP-A1", "Arbitration (reject rule) on/off")
    a1.rows = [point.as_row() for point in arbitration_ablation()]
    a2 = ReportSection("EXP-A2", "Ranking relation variants")
    a2.rows = [point.as_row() for point in ranking_ablation()]
    a3 = ReportSection("EXP-A3", "Footnote-6 early termination on/off")
    a3.rows = [point.as_row() for point in early_termination_ablation()]
    return [a1, a2, a3]


def build_report(quick: bool = False) -> list[ReportSection]:
    """Run every experiment and return its sections in DESIGN.md order."""
    sections: list[ReportSection] = [
        _fig1_section(),
        _fig2_section(),
        _fig3_section(),
    ]
    sections.extend(_locality_sections(quick))
    sections.extend(_baseline_sections(quick))
    sections.append(_property_section(quick))
    sections.append(_repair_section(quick))
    sections.extend(_ablation_sections())
    return sections


def render_report(
    sections: Sequence[ReportSection],
    markdown: bool = False,
) -> str:
    """Render all sections to one text blob."""
    return "\n\n".join(section.to_text(markdown=markdown) for section in sections)


def main(argv: Sequence[str] | None = None, write: Callable[[str], object] = print) -> int:
    """CLI entry point: ``python -m repro.experiments.report [--quick] [--markdown]``."""
    args = list(argv if argv is not None else sys.argv[1:])
    quick = "--quick" in args
    markdown = "--markdown" in args
    sections = build_report(quick=quick)
    write(render_report(sections, markdown=markdown))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    raise SystemExit(main())
