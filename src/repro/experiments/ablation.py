"""Ablation experiments (EXP-A1, EXP-A2).

The paper's algorithm has two design choices worth isolating:

* **Arbitration** (line 26): a node proposing ``V_p`` rejects every
  lower-ranked view it hears about.  EXP-A1 disables the rule and re-runs
  the conflicting-view workloads: without arbitration, instances proposing
  stale views can only fail when a *crash* unblocks them, so under a
  growing crashed region the protocol stalls (nodes blocked forever inside
  a consensus instance whose participants have moved on).
* **The ranking relation** (§3.1): the full relation compares size, then
  border size, then a lexicographic tie-break, making it a strict total
  order that subsumes set inclusion.  EXP-A2 swaps in deliberately weaker
  variants (size-only, size+border) and measures how often incomparable
  ties appear — each tie is a pair of conflicting proposals that the
  arbitration rule cannot order, i.e. a liveness hazard.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from ..failures import growing_region_crash, region_crash
from ..graph import RANKINGS, Region
from ..graph.generators import square_region, torus
from ..sim import JitteredFailureDetector
from ..sim.events import EventKind
from .runner import run_cliff_edge
from .scenarios import fig1b_scenario


@dataclass(frozen=True)
class ArbitrationPoint:
    """One workload run with and without the rejection rule."""

    scenario: str
    arbitration: bool
    decisions: int
    decided_views: int
    undecided_border_nodes: int
    blocked_proposers: int
    messages: int
    quiescent: bool

    def as_row(self) -> dict[str, object]:
        return {
            "scenario": self.scenario,
            "arbitration": self.arbitration,
            "decisions": self.decisions,
            "decided_views": self.decided_views,
            "undecided_border": self.undecided_border_nodes,
            "blocked_proposers": self.blocked_proposers,
            "messages": self.messages,
            "quiescent": self.quiescent,
        }


def _arbitration_point(scenario_name: str, result, faulty) -> ArbitrationPoint:
    graph = result.graph
    border = graph.border(faulty)
    deciders = result.deciding_nodes
    blocked = 0
    for node_id in border:
        process = result.simulator.process(node_id)
        if getattr(process, "proposed", None) is not None and not getattr(
            process, "has_decided", False
        ):
            blocked += 1
    return ArbitrationPoint(
        scenario=scenario_name,
        arbitration=result.labels.get("arbitration", True),
        decisions=result.metrics.decisions,
        decided_views=result.metrics.decided_views,
        undecided_border_nodes=len(border - deciders - result.schedule.nodes),
        blocked_proposers=blocked,
        messages=result.metrics.messages_sent,
        quiescent=result.simulator.is_quiescent(),
    )


def arbitration_ablation(seed: int = 0) -> list[ArbitrationPoint]:
    """EXP-A1: the Fig. 1b growth workload with and without rejection.

    Also includes a staggered torus crash, where view construction races
    the consensus rounds, as a second data point.
    """
    points: list[ArbitrationPoint] = []

    for arbitration in (True, False):
        scenario = fig1b_scenario()
        result = run_cliff_edge(
            scenario.graph,
            scenario.schedule,
            failure_detector=scenario.failure_detector,
            arbitration_enabled=arbitration,
            seed=seed,
            check=False,
        )
        result.labels["arbitration"] = arbitration
        points.append(_arbitration_point("fig1b-growth", result, scenario.schedule.nodes))

    graph = torus(10, 10)
    members = square_region((1, 1), 3)
    schedule = region_crash(graph, members, at=1.0, spread=6.0)
    for arbitration in (True, False):
        result = run_cliff_edge(
            graph,
            schedule,
            failure_detector=JitteredFailureDetector(0.5, 2.5),
            arbitration_enabled=arbitration,
            seed=seed,
            check=False,
        )
        result.labels["arbitration"] = arbitration
        points.append(_arbitration_point("staggered-torus", result, schedule.nodes))
    return points


@dataclass(frozen=True)
class EarlyTerminationPoint:
    """One workload run with Algorithm 1 as written vs. footnote-6 early stop."""

    workload: str
    early_termination: bool
    messages: int
    bytes_sent: int
    decisions: int
    decided_views: int
    last_decision_time: float
    specification_holds: bool

    def as_row(self) -> dict[str, object]:
        return {
            "workload": self.workload,
            "early_termination": self.early_termination,
            "messages": self.messages,
            "bytes": self.bytes_sent,
            "decisions": self.decisions,
            "decided_views": self.decided_views,
            "last_decision_time": self.last_decision_time,
            "spec_holds": self.specification_holds,
        }


def early_termination_ablation(seed: int = 0) -> list[EarlyTerminationPoint]:
    """EXP-A3: the footnote-6 optimisation vs. the plain |border|-1 rounds.

    Runs the same torus workloads with and without early termination; the
    optimisation should cut messages and decision latency (it ends each
    instance "after two rounds, in the best case") without affecting the
    agreed views or the CD1–CD7 report.
    """
    points: list[EarlyTerminationPoint] = []
    workloads = [
        ("torus-3x3-simultaneous", torus(12, 12), square_region((1, 1), 3), 0.0),
        ("torus-4x4-staggered", torus(16, 16), square_region((1, 1), 4), 2.0),
    ]
    for name, graph, members, spread in workloads:
        schedule = region_crash(graph, members, at=1.0, spread=spread)
        for early in (False, True):
            result = run_cliff_edge(
                graph,
                schedule,
                early_termination=early,
                seed=seed,
                check=True,
            )
            specification = result.specification
            points.append(
                EarlyTerminationPoint(
                    workload=name,
                    early_termination=early,
                    messages=result.metrics.messages_sent,
                    bytes_sent=result.metrics.bytes_sent,
                    decisions=result.metrics.decisions,
                    decided_views=result.metrics.decided_views,
                    last_decision_time=result.metrics.last_decision_time or 0.0,
                    specification_holds=(
                        specification.holds if specification is not None else True
                    ),
                )
            )
    return points


@dataclass(frozen=True)
class RankingPoint:
    """Behaviour of one ranking variant on conflicting-view workloads."""

    ranking: str
    is_total_order: bool
    incomparable_pairs: int
    decisions: int
    decided_views: int
    quiescent: bool
    specification_holds: bool

    def as_row(self) -> dict[str, object]:
        return {
            "ranking": self.ranking,
            "total_order": self.is_total_order,
            "incomparable_pairs": self.incomparable_pairs,
            "decisions": self.decisions,
            "decided_views": self.decided_views,
            "quiescent": self.quiescent,
            "spec_holds": self.specification_holds,
        }


def _incomparable_pairs(graph, ranking, views: Sequence[Region]) -> int:
    count = 0
    for first, second in combinations(set(views), 2):
        if first == second:
            continue
        if not ranking.precedes(graph, first, second) and not ranking.precedes(
            graph, second, first
        ):
            count += 1
    return count


def ranking_ablation(seed: int = 0) -> list[RankingPoint]:
    """EXP-A2: canonical ranking vs. deliberately weaker variants.

    The workload crashes two equally sized regions adjacent to a shared
    border node, so the size-only variant faces genuinely incomparable
    proposals.
    """
    graph = torus(10, 10)
    region_a = square_region((1, 1), 2)
    region_b = square_region((1, 4), 2)
    schedule = region_crash(graph, region_a, at=1.0).merged(
        region_crash(graph, region_b, at=1.0)
    )
    points: list[RankingPoint] = []
    for name, ranking in sorted(RANKINGS.items()):
        result = run_cliff_edge(
            graph,
            schedule,
            ranking=ranking,
            failure_detector=JitteredFailureDetector(0.5, 2.0),
            seed=seed,
            check=True,
        )
        proposed_views = [
            event.payload
            for event in result.trace.of_kind(EventKind.VIEW_PROPOSED)
        ]
        incomparable = _incomparable_pairs(graph, ranking, proposed_views)
        is_total = name == "canonical"
        points.append(
            RankingPoint(
                ranking=name,
                is_total_order=is_total,
                incomparable_pairs=incomparable,
                decisions=result.metrics.decisions,
                decided_views=result.metrics.decided_views,
                quiescent=result.simulator.is_quiescent(),
                specification_holds=(
                    result.specification.holds
                    if result.specification is not None
                    else True
                ),
            )
        )
    return points
