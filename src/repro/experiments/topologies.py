"""Topologies used by the figure-reproduction scenarios.

The paper's figures are drawn over an informal world-city network (Fig. 1)
and a schematic cluster of adjacent faulty domains (Fig. 2).  The figures
name the border nodes but not the crashed interior nodes, so we flesh the
regions out with plausibly named interior cities; what matters for the
reproduction is the *structure*: which nodes border which crashed region,
and how the regions grow or touch.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graph import KnowledgeGraph, NodeId, Region


# ---------------------------------------------------------------------------
# Figure 1 — world-city topology with regions F1, F2 and F3
# ---------------------------------------------------------------------------
#: Interior nodes of crashed region F1 (Fig. 1a).
FIG1_F1 = frozenset({"lyon", "geneva", "barcelona"})
#: Border of F1 as drawn in the paper.
FIG1_F1_BORDER = frozenset({"paris", "london", "madrid", "roma"})
#: Interior nodes of crashed region F2 (Fig. 1a).
FIG1_F2 = frozenset({"osaka", "seoul", "shanghai", "honolulu"})
#: Border of F2 as drawn in the paper.
FIG1_F2_BORDER = frozenset({"tokyo", "vancouver", "portland", "sydney", "beijing"})
#: F3 = F1 grown by the crash of paris (Fig. 1b).
FIG1_F3 = FIG1_F1 | {"paris"}
#: Border of F3: berlin joins, paris leaves.
FIG1_F3_BORDER = frozenset({"london", "madrid", "roma", "berlin"})
#: Correct nodes that never border any crashed region (locality witnesses).
FIG1_BYSTANDERS = frozenset(
    {"newyork", "chicago", "moscow", "cairo", "lagos", "delhi", "lima", "auckland"}
)


def fig1_topology() -> KnowledgeGraph:
    """The world-city knowledge graph of Fig. 1.

    The graph is built so that::

        border(F1) = {paris, london, madrid, roma}
        border(F2) = {tokyo, vancouver, portland, sydney, beijing}
        border(F1 ∪ {paris}) = {london, madrid, roma, berlin}

    and so that a healthy backbone of bystander cities connects everything
    without ever touching a crashed node.
    """
    edges: list[tuple[NodeId, NodeId]] = [
        # --- F1 interior (a connected region) -----------------------------
        ("lyon", "geneva"),
        ("geneva", "barcelona"),
        ("lyon", "barcelona"),
        # --- F1 border attachments ----------------------------------------
        ("paris", "lyon"),
        ("london", "lyon"),
        ("london", "geneva"),
        ("madrid", "barcelona"),
        ("roma", "geneva"),
        ("roma", "barcelona"),
        # --- paris' own neighbourhood: berlin joins when paris crashes ----
        ("berlin", "paris"),
        ("london", "paris"),
        # note: madrid deliberately has no direct edge to paris, so madrid
        # only borders F3 through barcelona; it still belongs to border(F3)
        # because barcelona is a member of F3.
        # --- F2 interior ----------------------------------------------------
        ("osaka", "seoul"),
        ("seoul", "shanghai"),
        ("shanghai", "honolulu"),
        ("osaka", "honolulu"),
        # --- F2 border attachments -----------------------------------------
        ("tokyo", "osaka"),
        ("tokyo", "seoul"),
        ("vancouver", "honolulu"),
        ("portland", "honolulu"),
        ("sydney", "shanghai"),
        ("beijing", "seoul"),
        ("beijing", "shanghai"),
        # --- healthy backbone ----------------------------------------------
        ("london", "newyork"),
        ("newyork", "chicago"),
        ("chicago", "vancouver"),
        ("chicago", "portland"),
        ("berlin", "moscow"),
        ("moscow", "beijing"),
        ("moscow", "chicago"),
        ("madrid", "cairo"),
        ("cairo", "lagos"),
        ("cairo", "delhi"),
        ("delhi", "beijing"),
        ("newyork", "lima"),
        ("sydney", "auckland"),
        ("auckland", "lima"),
        ("tokyo", "vancouver"),
        ("roma", "cairo"),
    ]
    return KnowledgeGraph(edges)


def fig1_region_f1(graph: KnowledgeGraph) -> Region:
    """Region F1 of Fig. 1a, validated against the topology."""
    return Region.of(graph, FIG1_F1)


def fig1_region_f2(graph: KnowledgeGraph) -> Region:
    """Region F2 of Fig. 1a, validated against the topology."""
    return Region.of(graph, FIG1_F2)


def fig1_region_f3(graph: KnowledgeGraph) -> Region:
    """Region F3 of Fig. 1b (F1 grown by paris), validated."""
    return Region.of(graph, FIG1_F3)


# ---------------------------------------------------------------------------
# Figure 2 — a cluster of adjacent faulty domains
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Fig2Layout:
    """The four faulty domains of Fig. 2 and their shared border nodes."""

    graph: KnowledgeGraph
    domains: tuple[frozenset[NodeId], ...]

    def regions(self) -> tuple[Region, ...]:
        return tuple(Region.of(self.graph, members) for members in self.domains)

    def all_faulty(self) -> frozenset[NodeId]:
        result: set[NodeId] = set()
        for members in self.domains:
            result.update(members)
        return frozenset(result)


def fig2_topology() -> Fig2Layout:
    """Four faulty domains F1 ‖ F2 ‖ F3 ‖ F4 forming one faulty cluster.

    Adjacent domains share border nodes (``x12`` borders F1 and F2, and so
    on), which is exactly the adjacency relation of Fig. 2.  A few healthy
    nodes surround the cluster so locality can be checked.
    """
    f1 = frozenset({"f1a", "f1b", "f1c"})
    f2 = frozenset({"f2a", "f2b"})
    f3 = frozenset({"f3a", "f3b", "f3c", "f3d"})
    f4 = frozenset({"f4a"})
    edges: list[tuple[NodeId, NodeId]] = [
        # F1 interior
        ("f1a", "f1b"),
        ("f1b", "f1c"),
        # F2 interior
        ("f2a", "f2b"),
        # F3 interior
        ("f3a", "f3b"),
        ("f3b", "f3c"),
        ("f3c", "f3d"),
        ("f3a", "f3c"),
        # F4 has a single node, no interior edges.
        # Shared border nodes gluing the cluster together
        ("x12", "f1a"),
        ("x12", "f2a"),
        ("x23", "f2b"),
        ("x23", "f3a"),
        ("x34", "f3d"),
        ("x34", "f4a"),
        # Private border nodes of each domain
        ("p1", "f1b"),
        ("p1", "f1c"),
        ("p2", "f2a"),
        ("p3", "f3b"),
        ("p3", "f3c"),
        ("p4", "f4a"),
        # Healthy backbone connecting the borders and some bystanders
        ("p1", "x12"),
        ("p2", "x12"),
        ("p2", "x23"),
        ("p3", "x23"),
        ("p3", "x34"),
        ("p4", "x34"),
        ("bystander1", "p1"),
        ("bystander1", "bystander2"),
        ("bystander2", "p4"),
        ("bystander3", "p2"),
        ("bystander3", "bystander1"),
    ]
    return Fig2Layout(graph=KnowledgeGraph(edges), domains=(f1, f2, f3, f4))


# ---------------------------------------------------------------------------
# Figure 3 — overlapping views (CD6 convergence scenario)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Layout:
    """First-wave region, second-wave growth, and the resulting big region."""

    graph: KnowledgeGraph
    first_wave: frozenset[NodeId]
    second_wave: tuple[NodeId, ...]

    @property
    def combined(self) -> frozenset[NodeId]:
        return self.first_wave | frozenset(self.second_wave)


def fig3_topology() -> Fig3Layout:
    """A region that crashes, is agreed upon, and later grows.

    The second wave crashes part of the first region's border *after* the
    first agreement has completed, producing the overlapping-view situation
    of Fig. 3: the new, larger region overlaps the already decided one, and
    CD6 requires that no conflicting decision be reached on it.
    """
    first_wave = frozenset({"v1", "v2", "v3"})
    second_wave = ("b1", "b2")
    edges: list[tuple[NodeId, NodeId]] = [
        # First-wave region interior
        ("v1", "v2"),
        ("v2", "v3"),
        ("v1", "v3"),
        # Its border: b1, b2 (which will crash later), c1, c2, c3 (survivors)
        ("b1", "v1"),
        ("b2", "v2"),
        ("c1", "v3"),
        ("c2", "v1"),
        ("c3", "v2"),
        ("c3", "v3"),
        # Nodes that only border the second wave (join the protocol late)
        ("d1", "b1"),
        ("d2", "b2"),
        ("d1", "d2"),
        # Healthy backbone
        ("c1", "c2"),
        ("c2", "c3"),
        ("c1", "d1"),
        ("c3", "d2"),
        ("e1", "c1"),
        ("e1", "e2"),
        ("e2", "d2"),
    ]
    return Fig3Layout(
        graph=KnowledgeGraph(edges), first_wave=first_wave, second_wave=second_wave
    )
