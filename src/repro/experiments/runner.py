"""High-level run harness.

Everything the examples, tests and benchmarks need to execute a cliff-edge
consensus scenario in one call: build a simulator over a graph, install a
:class:`~repro.core.protocol.CliffEdgeNode` on every node, apply a crash
schedule, run to quiescence, and package the outcome (trace, metrics,
decisions, property report) into a :class:`RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..api.result import DecisionResultMixin, json_safe
from ..core import CliffEdgeNode, DEFAULT_DECISION_POLICY, DecisionPolicy
from ..core.properties import Decision, SpecificationReport, check_all, extract_decisions
from ..failures import CrashSchedule
from ..graph import DEFAULT_RANKING, KnowledgeGraph, NodeId, Region, RegionRanking
from ..sim import (
    ConstantLatency,
    EventScheduler,
    FailureDetectorPolicy,
    FaultModel,
    LatencyModel,
    PerfectFailureDetector,
    Simulator,
)
from ..trace import RunMetrics, TraceRecorder, collect_metrics


@dataclass
class RunResult(DecisionResultMixin):
    """Outcome of one simulated protocol run.

    Implements the unified :class:`repro.api.Result` protocol; the
    decision-derived helpers (``decided_views``, ``deciding_nodes``,
    ``decisions_on``, ``digest``) live in the shared
    :class:`~repro.api.result.DecisionResultMixin`.
    """

    graph: KnowledgeGraph
    schedule: CrashSchedule
    simulator: Simulator
    trace: TraceRecorder
    metrics: RunMetrics
    decisions: list[Decision]
    #: None until :meth:`check_specification` is called (or ``check=True``).
    specification: Optional[SpecificationReport] = None
    #: Extra labels attached by experiments (topology name, sweep point...).
    labels: dict[str, Any] = field(default_factory=dict)

    @property
    def quiescent(self) -> bool:
        """True when the simulator drained its event queue."""
        return self.simulator.is_quiescent()

    def node(self, node_id: NodeId) -> CliffEdgeNode:
        """The protocol instance at ``node_id`` (post-run inspection)."""
        process = self.simulator.process(node_id)
        if not isinstance(process, CliffEdgeNode):
            raise TypeError(f"process at {node_id!r} is not a CliffEdgeNode")
        return process

    def check_specification(self, include_liveness: bool = True) -> SpecificationReport:
        """Run the CD1–CD7 checkers on the trace and cache the report."""
        self.specification = check_all(
            self.graph,
            self.trace,
            faulty=self.schedule.nodes,
            include_liveness=include_liveness,
        )
        return self.specification

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable summary of the run (the ``--json`` payload)."""
        return {
            "type": "run",
            "nodes": len(self.graph),
            "edges": self.graph.edge_count,
            "crashed": json_safe(self.schedule.nodes),
            "quiescent": self.quiescent,
            "metrics": json_safe(self.metrics),
            "decisions": self._decisions_as_dicts(),
            "decided_views": json_safe(self.decided_views),
            "specification": self._specification_as_dict(),
            "digest": self.digest(),
            "labels": json_safe(self.labels),
        }

    def summary(self) -> str:
        """Multi-line human-readable summary (used by examples)."""
        lines = [
            f"nodes={len(self.graph)} edges={self.graph.edge_count} "
            f"crashed={len(self.schedule.nodes)}",
            f"messages={self.metrics.messages_sent} "
            f"bytes={self.metrics.bytes_sent} "
            f"speaking_nodes={self.metrics.speaking_nodes}",
            f"decisions={self.metrics.decisions} "
            f"views={self.metrics.decided_views} "
            f"rejections={self.metrics.rejections} "
            f"failed_instances={self.metrics.failed_instances}",
        ]
        for view in sorted(self.decided_views, key=lambda v: sorted(map(repr, v.members))):
            deciders = sorted(
                repr(d.node) for d in self.decisions_on(view)
            )
            members = sorted(map(repr, view.members))
            lines.append(f"view {members} decided by {deciders}")
        if self.specification is not None:
            status = "holds" if self.specification.holds else "VIOLATED"
            lines.append(f"specification CD1-CD7: {status}")
        return "\n".join(lines)


def build_simulator(
    graph: KnowledgeGraph,
    schedule: CrashSchedule,
    decision_policy: DecisionPolicy = DEFAULT_DECISION_POLICY,
    ranking: RegionRanking = DEFAULT_RANKING,
    latency: Optional[LatencyModel] = None,
    failure_detector: Optional[FailureDetectorPolicy] = None,
    seed: int = 0,
    arbitration_enabled: bool = True,
    early_termination: bool = False,
    node_factory: Optional[Callable[[NodeId], CliffEdgeNode]] = None,
    batch_dispatch: bool = True,
    collection: str = "trace",
    faults: Optional[FaultModel] = None,
) -> Simulator:
    """Build a ready-to-run simulator with the protocol on every node.

    ``collection="digest"`` records no event log: the trace recorder
    folds the canonical digest and the run metrics as events fire.
    ``faults`` installs a deterministic link-fault model
    (:mod:`repro.sim.faults`); ``None`` keeps reliable FIFO channels.
    """
    schedule.validate(graph)
    sim = Simulator(
        graph,
        latency=latency if latency is not None else ConstantLatency(1.0),
        failure_detector=(
            failure_detector if failure_detector is not None else PerfectFailureDetector(1.0)
        ),
        seed=seed,
        trace=TraceRecorder(collection=collection),
        scheduler=EventScheduler(batch_dispatch=batch_dispatch),
        faults=faults,
    )

    def default_factory(node_id: NodeId) -> CliffEdgeNode:
        return CliffEdgeNode(
            node_id,
            decision_policy=decision_policy,
            ranking=ranking,
            arbitration_enabled=arbitration_enabled,
            early_termination=early_termination,
        )

    sim.populate(node_factory if node_factory is not None else default_factory)
    schedule.applied_to(sim)
    return sim


def run_cliff_edge(
    graph: KnowledgeGraph,
    schedule: CrashSchedule,
    decision_policy: DecisionPolicy = DEFAULT_DECISION_POLICY,
    ranking: RegionRanking = DEFAULT_RANKING,
    latency: Optional[LatencyModel] = None,
    failure_detector: Optional[FailureDetectorPolicy] = None,
    seed: int = 0,
    arbitration_enabled: bool = True,
    early_termination: bool = False,
    node_factory: Optional[Callable[[NodeId], CliffEdgeNode]] = None,
    check: bool = False,
    max_events: int = 5_000_000,
    until: Optional[float] = None,
    batch_dispatch: bool = True,
    collection: str = "trace",
    faults: Optional[FaultModel] = None,
) -> RunResult:
    """Run a full cliff-edge consensus scenario and collect the results.

    Parameters
    ----------
    graph, schedule:
        Topology and crash schedule of the scenario.
    decision_policy, ranking, latency, failure_detector, seed:
        Protocol and substrate knobs (see the respective classes).
    arbitration_enabled:
        Disable the reject rule for the EXP-A1 ablation.
    early_termination:
        Enable the footnote-6 early-termination optimisation (EXP-A3).
    node_factory:
        Override how protocol instances are created (custom policies).
    check:
        When True, run the CD1–CD7 checkers and attach the report.
    max_events, until:
        Safety bounds forwarded to :meth:`Simulator.run`.
    batch_dispatch:
        Scheduler dispatch mode (the unbatched reference loop exists for
        the determinism regression suite).
    collection:
        ``"trace"`` (default) keeps the full columnar trace;
        ``"digest"`` streams digest + metrics only and keeps no event
        log.  Digest mode cannot be combined with ``check=True`` (the
        CD1–CD7 checkers walk the full trace).
    faults:
        Optional deterministic link-fault model (loss / duplication /
        reordering, :mod:`repro.sim.faults`); ``None`` keeps the paper's
        reliable FIFO channels.
    """
    if collection == "digest" and check:
        raise ValueError(
            "collection='digest' keeps no event log, so the CD1-CD7 "
            "checkers cannot run; use check=False or collection='trace'"
        )
    sim = build_simulator(
        graph,
        schedule,
        decision_policy=decision_policy,
        ranking=ranking,
        latency=latency,
        failure_detector=failure_detector,
        seed=seed,
        arbitration_enabled=arbitration_enabled,
        early_termination=early_termination,
        node_factory=node_factory,
        batch_dispatch=batch_dispatch,
        collection=collection,
        faults=faults,
    )
    sim.run(until=until, max_events=max_events)
    trace = sim.trace
    result = RunResult(
        graph=graph,
        schedule=schedule,
        simulator=sim,
        trace=trace,
        metrics=collect_metrics(trace),
        decisions=extract_decisions(trace),
    )
    if check:
        result.check_specification(include_liveness=sim.is_quiescent())
    return result
