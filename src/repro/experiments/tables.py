"""Plain-text and Markdown table rendering for experiment results.

The experiment modules produce lists of flat dictionaries ("rows"); these
helpers render them the way EXPERIMENTS.md and the example scripts print
them.  No third-party dependency, deterministic column order.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any


def _stringify(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def _column_order(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None) -> list[str]:
    if columns is not None:
        return list(columns)
    ordered: list[str] = []
    for row in rows:
        for key in row:
            if key not in ordered:
                ordered.append(key)
    return ordered


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    cols = _column_order(rows, columns)
    cells = [[_stringify(row.get(col)) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(line[index]) for line in cells))
        for index, col in enumerate(cols)
    ]
    header = "  ".join(col.ljust(widths[index]) for index, col in enumerate(cols))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[index].ljust(widths[index]) for index in range(len(cols)))
        for line in cells
    ]
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, separator, *body])
    return "\n".join(lines)


def format_markdown_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    cols = _column_order(rows, columns)
    header = "| " + " | ".join(cols) + " |"
    separator = "| " + " | ".join("---" for _ in cols) + " |"
    body = [
        "| " + " | ".join(_stringify(row.get(col)) for col in cols) + " |"
        for row in rows
    ]
    return "\n".join([header, separator, *body])


def rows_to_csv(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render rows as CSV text (simple quoting, for spreadsheets)."""
    if not rows:
        return ""
    cols = _column_order(rows, columns)

    def escape(value: Any) -> str:
        text = _stringify(value)
        if "," in text or '"' in text:
            return '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cols)]
    lines.extend(",".join(escape(row.get(col)) for col in cols) for row in rows)
    return "\n".join(lines)


def summarise_numeric(rows: Iterable[Mapping[str, Any]], key: str) -> dict[str, float]:
    """Min / max / mean of a numeric column (for EXPERIMENTS.md prose)."""
    values = [float(row[key]) for row in rows if row.get(key) is not None]
    if not values:
        return {"min": float("nan"), "max": float("nan"), "mean": float("nan")}
    return {
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
    }
