"""Baseline comparison experiments (EXP-B1, EXP-B2).

EXP-B1 pits cliff-edge consensus against the whole-network flooding
consensus that classical approaches would use: same topology, same crashed
region, and two very different cost curves as the system grows.

EXP-B2 compares against the gossip / eventual-convergence style of
partitionable group membership: the gossip service floods crash information
across the whole connected component and never produces an explicit,
once-only decision; the comparison counts how many nodes end up involved
and how many intermediate views get installed.

EXP-B3 (supporting) compares against completely uncoordinated local repair
and counts the conflicting or duplicated repair actions that the agreement
layer prevents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..baselines import (
    run_global_baseline,
    run_gossip_baseline,
    run_uncoordinated_baseline,
)
from ..failures import region_crash
from ..graph import Region
from ..graph.generators import square_region, torus
from .locality import run_torus_region_scenario
from .runner import run_cliff_edge


@dataclass(frozen=True)
class BaselineComparisonPoint:
    """Cliff-edge vs. whole-network consensus on one system size."""

    system_size: int
    region_size: int
    cliff_edge_messages: int
    cliff_edge_speaking_nodes: int
    cliff_edge_bytes: int
    global_messages: int
    global_speaking_nodes: int
    global_bytes: int

    @property
    def message_ratio(self) -> float:
        """How many times more messages the global baseline needs."""
        if self.cliff_edge_messages == 0:
            return float("inf")
        return self.global_messages / self.cliff_edge_messages

    def as_row(self) -> dict[str, object]:
        return {
            "system_size": self.system_size,
            "region_size": self.region_size,
            "cliff_messages": self.cliff_edge_messages,
            "global_messages": self.global_messages,
            "ratio": round(self.message_ratio, 1),
            "cliff_speaking": self.cliff_edge_speaking_nodes,
            "global_speaking": self.global_speaking_nodes,
            "cliff_bytes": self.cliff_edge_bytes,
            "global_bytes": self.global_bytes,
        }


def global_consensus_comparison(
    sides: Sequence[int] = (6, 8, 10, 12, 16),
    region_side: int = 2,
    seed: int = 0,
) -> list[BaselineComparisonPoint]:
    """EXP-B1: message cost of cliff-edge vs. whole-network consensus."""
    points = []
    for side in sides:
        cliff_result, region = run_torus_region_scenario(
            side, region_side, seed=seed, check=False
        )
        graph = torus(side, side)
        members = square_region((1, 1), region_side)
        schedule = region_crash(graph, members, at=1.0)
        global_result = run_global_baseline(graph, schedule, seed=seed)
        points.append(
            BaselineComparisonPoint(
                system_size=side * side,
                region_size=len(region),
                cliff_edge_messages=cliff_result.metrics.messages_sent,
                cliff_edge_speaking_nodes=cliff_result.metrics.speaking_nodes,
                cliff_edge_bytes=cliff_result.metrics.bytes_sent,
                global_messages=global_result.metrics.messages_sent,
                global_speaking_nodes=global_result.metrics.speaking_nodes,
                global_bytes=global_result.metrics.bytes_sent,
            )
        )
    return points


@dataclass(frozen=True)
class GossipComparisonPoint:
    """Cliff-edge vs. gossip eventual convergence on one system size."""

    system_size: int
    region_size: int
    cliff_edge_messages: int
    cliff_edge_involved_nodes: int
    cliff_edge_decisions: int
    gossip_messages: int
    gossip_informed_nodes: int
    gossip_view_installs: int
    gossip_converged: bool

    def as_row(self) -> dict[str, object]:
        return {
            "system_size": self.system_size,
            "region_size": self.region_size,
            "cliff_messages": self.cliff_edge_messages,
            "gossip_messages": self.gossip_messages,
            "cliff_involved": self.cliff_edge_involved_nodes,
            "gossip_informed": self.gossip_informed_nodes,
            "cliff_decisions": self.cliff_edge_decisions,
            "gossip_installs": self.gossip_view_installs,
            "gossip_converged": self.gossip_converged,
        }


def gossip_comparison(
    sides: Sequence[int] = (8, 12, 16, 24),
    region_side: int = 2,
    seed: int = 0,
) -> list[GossipComparisonPoint]:
    """EXP-B2: explicit local agreement vs. network-wide eventual views."""
    points = []
    for side in sides:
        cliff_result, region = run_torus_region_scenario(
            side, region_side, seed=seed, check=False
        )
        graph = torus(side, side)
        members = square_region((1, 1), region_side)
        schedule = region_crash(graph, members, at=1.0)
        gossip_result = run_gossip_baseline(graph, schedule, seed=seed)
        points.append(
            GossipComparisonPoint(
                system_size=side * side,
                region_size=len(region),
                cliff_edge_messages=cliff_result.metrics.messages_sent,
                cliff_edge_involved_nodes=cliff_result.metrics.speaking_nodes,
                cliff_edge_decisions=cliff_result.metrics.decisions,
                gossip_messages=gossip_result.metrics.messages_sent,
                gossip_informed_nodes=gossip_result.informed_nodes,
                gossip_view_installs=gossip_result.total_installs,
                gossip_converged=gossip_result.converged,
            )
        )
    return points


@dataclass(frozen=True)
class UncoordinatedComparisonPoint:
    """Cliff-edge vs. uncoordinated repair under a growing crash scenario."""

    system_size: int
    region_size: int
    cliff_decided_views: int
    cliff_conflicting_pairs: int
    uncoordinated_actors: int
    uncoordinated_conflicting_pairs: int
    uncoordinated_duplicated_repairs: int

    def as_row(self) -> dict[str, object]:
        return {
            "system_size": self.system_size,
            "region_size": self.region_size,
            "cliff_views": self.cliff_decided_views,
            "cliff_conflicts": self.cliff_conflicting_pairs,
            "uncoord_actors": self.uncoordinated_actors,
            "uncoord_conflicts": self.uncoordinated_conflicting_pairs,
            "uncoord_duplicates": self.uncoordinated_duplicated_repairs,
        }


def uncoordinated_comparison(
    sides: Sequence[int] = (8, 12, 16),
    region_side: int = 3,
    grace_period: float = 1.5,
    seed: int = 0,
) -> list[UncoordinatedComparisonPoint]:
    """EXP-B3: agreement quality vs. acting unilaterally.

    The crash is spread over time (``spread > 0``) so an impatient,
    uncoordinated reaction acts on stale views; the cliff-edge run on the
    same schedule converges on the full region.
    """
    points = []
    for side in sides:
        graph = torus(side, side)
        members = square_region((1, 1), region_side)
        schedule = region_crash(graph, members, at=1.0, spread=4.0)
        cliff_result = run_cliff_edge(graph, schedule, seed=seed, check=False)
        cliff_views = sorted(cliff_result.decided_views, key=repr)
        cliff_conflicts = 0
        for index, first in enumerate(cliff_views):
            for second in cliff_views[index + 1 :]:
                if first.overlaps(second) and first != second:
                    cliff_conflicts += 1
        uncoordinated = run_uncoordinated_baseline(
            graph, schedule, grace_period=grace_period, seed=seed
        )
        points.append(
            UncoordinatedComparisonPoint(
                system_size=side * side,
                region_size=region_side * region_side,
                cliff_decided_views=len(cliff_views),
                cliff_conflicting_pairs=cliff_conflicts,
                uncoordinated_actors=len(uncoordinated.actions),
                uncoordinated_conflicting_pairs=uncoordinated.conflicting_pairs,
                uncoordinated_duplicated_repairs=uncoordinated.duplicated_repairs,
            )
        )
    return points
