"""The experiment session: from spec to executed run.

:class:`ExperimentSession` is the single funnel through which every run
in the repository can be driven.  It resolves a declarative
:class:`~repro.api.specs.ExperimentSpec` to the right runtime and runner
(static simulator run, churn simulator run, or asyncio run), builds the
topology through the spec-keyed cache, and returns the familiar result
objects — all of which implement the unified
:class:`~repro.api.result.Result` protocol.

Sweeps go the same way: :meth:`ExperimentSession.run_sweep` turns a
:class:`~repro.api.specs.SweepSpec` into picklable-by-spec tasks for the
sharded sweep engine (:mod:`repro.scale`) and merges the outcomes into a
:class:`~repro.scale.SweepReport`.

Imports of the runner modules happen lazily: the runners themselves
import :mod:`repro.api.result` for the shared mixin, and the session must
stay importable from both directions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Union

from .specs import ExperimentSpec, RuntimeSpec, SpecError, SweepSpec, load_spec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..churn.runner import ChurnRunResult
    from ..experiments.runner import RunResult
    from ..scale.sweep import SweepReport

RunOutcome = Union["RunResult", "ChurnRunResult"]


class ExperimentSession:
    """Resolve and execute declarative experiment specs.

    Parameters
    ----------
    use_cache:
        When True (the default) topology builds go through the
        process-local spec-keyed cache (:mod:`repro.api.cache`).
    """

    def __init__(self, use_cache: bool = True) -> None:
        self.use_cache = use_cache

    # ------------------------------------------------------------------
    def build_graph(self, spec: ExperimentSpec):
        """Build (or fetch from cache) the spec's topology."""
        if self.use_cache:
            return spec.topology.build()
        return spec.topology.build_uncached()

    def resolve(self, spec: ExperimentSpec):
        """Materialise ``(graph, crash schedule, membership schedule)``."""
        from .specs import COUPLED_KINDS, _resolve_coupled

        graph = self.build_graph(spec)
        if spec.failure.kind in COUPLED_KINDS or spec.membership.kind in COUPLED_KINDS:
            # Coupled kinds describe ONE scenario whose crash and
            # membership halves derive from the same builder call; a
            # lone half, or halves with divergent params (e.g. a grid
            # override touching only one side), would silently build an
            # inconsistent scenario.
            if spec.failure.kind != spec.membership.kind:
                raise SpecError(
                    f"coupled churn kinds must pair up: failure kind is "
                    f"{spec.failure.kind!r} but membership kind is "
                    f"{spec.membership.kind!r}"
                )
            if spec.failure.params != spec.membership.params:
                raise SpecError(
                    f"coupled churn kind {spec.failure.kind!r} needs identical "
                    f"failure and membership params; got {dict(spec.failure.params)!r} "
                    f"vs {dict(spec.membership.params)!r} (grid overrides must "
                    f"target both halves)"
                )
            schedule, membership = _resolve_coupled(
                spec.failure.kind, dict(spec.failure.params), graph, spec.seed
            )
            return graph, schedule, membership
        schedule = spec.failure.resolve(graph, spec.seed)
        membership = spec.membership.resolve(graph, schedule, spec.seed)
        return graph, schedule, membership

    # ------------------------------------------------------------------
    def run(self, spec: ExperimentSpec) -> RunOutcome:
        """Execute one experiment spec on its requested runtime.

        Returns a :class:`~repro.experiments.runner.RunResult` for static
        simulator runs and a :class:`~repro.churn.runner.ChurnRunResult`
        for churn or asyncio runs — both satisfy the unified
        :class:`~repro.api.Result` protocol.
        """
        graph, schedule, membership = self.resolve(spec)
        runtime = spec.runtime
        extractor = None
        decision_policy = None
        if spec.extract is not None:
            from .extractors import get_extractor

            extractor = get_extractor(spec.extract["kind"])
            decision_policy = extractor.decision_policy(spec, graph)
            if decision_policy is not None and (
                runtime.engine != "sim"
                or runtime.partitions > 1
                or not spec.membership.is_static
            ):
                raise SpecError(
                    f"extract kind {spec.extract['kind']!r} supplies a "
                    "decision policy, which only the static single-partition "
                    "simulator runner supports"
                )
        if runtime.collection == "digest":
            # RuntimeSpec already pins engine='sim'; the remaining
            # incompatibilities need the resolved scenario to detect.
            if spec.check:
                raise SpecError(
                    "collection='digest' keeps no event log, so the CD1-CD7 "
                    "checkers cannot run; set check=False or use "
                    "collection='trace'"
                )
            if not spec.membership.is_static:
                raise SpecError(
                    "collection='digest' keeps no event log, so churn epoch "
                    "reconstruction cannot run; use collection='trace'"
                )
        if runtime.engine in ("asyncio", "asyncio-virtual"):
            virtual = runtime.engine == "asyncio-virtual"
            unsupported = []
            if not spec.arbitration:
                unsupported.append("arbitration=False")
            if spec.early_termination:
                unsupported.append("early_termination=True")
            if not runtime.batched:
                unsupported.append("batched=False")
            if runtime.latency is not None:
                unsupported.append("latency")
            if runtime.until is not None:
                unsupported.append("until")
            if not virtual and runtime.max_events != RuntimeSpec().max_events:
                # The virtual loop honours max_events as its callback
                # budget; the wall-clock loop has no event counter.
                unsupported.append("max_events")
            if unsupported:
                raise SpecError(
                    "the asyncio runtimes do not support these spec knobs: "
                    + ", ".join(unsupported)
                    + " (use engine='sim')"
                )
            from ..churn.runner import run_churn_asyncio

            result: RunOutcome = run_churn_asyncio(
                graph,
                schedule,
                membership,
                detection_delay=runtime.detection_delay,
                time_scale=runtime.time_scale,
                timeout=runtime.timeout,
                seed=spec.seed,
                check=spec.check,
                virtual=virtual,
                failure_detector=runtime.resolve_failure_detector(),
                max_events=runtime.max_events if virtual else None,
                faults=runtime.resolve_faults(),
            )
        elif runtime.partitions > 1:
            from ..sim.partition import run_partitioned

            if not runtime.batched:
                raise SpecError(
                    "the partitioned backend uses the keyed scheduler; "
                    "batched=False selects the sequential reference loop "
                    "and cannot be combined with partitions > 1"
                )
            if not spec.membership.is_static and (
                not spec.arbitration or spec.early_termination
            ):
                raise SpecError(
                    "the churn runner has no arbitration/early-termination "
                    "ablation knobs; use a static membership spec"
                )
            result = run_partitioned(
                graph,
                schedule,
                membership,
                partitions=runtime.partitions,
                latency=runtime.resolve_latency(),
                failure_detector=runtime.resolve_failure_detector(),
                seed=spec.seed,
                arbitration_enabled=spec.arbitration,
                early_termination=spec.early_termination,
                check=spec.check,
                max_events=runtime.max_events,
                until=runtime.until,
                collection=runtime.collection,
                faults=runtime.resolve_faults(),
            )
        elif spec.membership.is_static:
            from ..experiments.runner import run_cliff_edge

            policy_kwargs = (
                {} if decision_policy is None else {"decision_policy": decision_policy}
            )
            result = run_cliff_edge(
                graph,
                schedule,
                **policy_kwargs,
                latency=runtime.resolve_latency(),
                failure_detector=runtime.resolve_failure_detector(),
                seed=spec.seed,
                arbitration_enabled=spec.arbitration,
                early_termination=spec.early_termination,
                check=spec.check,
                max_events=runtime.max_events,
                until=runtime.until,
                batch_dispatch=runtime.batched,
                collection=runtime.collection,
                faults=runtime.resolve_faults(),
            )
        else:
            if not spec.arbitration or spec.early_termination:
                raise SpecError(
                    "the churn runner has no arbitration/early-termination "
                    "ablation knobs; use a static membership spec"
                )
            from ..churn.runner import run_churn

            result = run_churn(
                graph,
                schedule,
                membership,
                latency=runtime.resolve_latency(),
                failure_detector=runtime.resolve_failure_detector(),
                seed=spec.seed,
                check=spec.check,
                max_events=runtime.max_events,
                until=runtime.until,
                batch_dispatch=runtime.batched,
                faults=runtime.resolve_faults(),
            )
        result.labels.update(dict(spec.labels))
        if spec.name:
            result.labels.setdefault("scenario", spec.name)
        result.labels["spec_digest"] = spec.digest()
        if extractor is not None:
            # Post-hoc by construction: the row observes the finished run
            # (and the policy already shaped the trace), so the digest is
            # exactly that of the same spec without the extract block.
            result.labels["extract"] = extractor.row(spec, result)
        return result

    # ------------------------------------------------------------------
    def run_sweep(self, spec: SweepSpec, progress=None) -> "SweepReport":
        """Execute a sweep spec through the sharded sweep engine.

        Experiment-mode sweeps ship their points as serialized specs
        (picklable-by-spec); family-mode sweeps reference a registered
        scenario family by name.  Either way, per-run digests and the
        merged report digest are identical for every ``workers`` count.

        ``progress`` (optional) is called as ``progress(done, total)``
        after each completed task — the experiment service streams these
        counts to polling clients; results are unaffected.
        """
        from ..scale import ShardedSweepRunner

        runner = ShardedSweepRunner(workers=spec.workers, base_seed=spec.base_seed)
        report = runner.run(spec.tasks(), progress=progress)
        report.labels["spec_digest"] = spec.digest()
        if spec.name:
            report.labels["sweep"] = spec.name
        return report

    # ------------------------------------------------------------------
    def run_document(self, text: str) -> Any:
        """Parse a JSON spec document and execute it (either kind)."""
        spec = load_spec(text)
        if isinstance(spec, SweepSpec):
            return self.run_sweep(spec)
        return self.run(spec)


# ---------------------------------------------------------------------------
# Module-level conveniences
# ---------------------------------------------------------------------------
def run_spec(spec: Union[ExperimentSpec, SweepSpec]) -> Any:
    """Run a spec through a default session."""
    session = ExperimentSession()
    if isinstance(spec, SweepSpec):
        return session.run_sweep(spec)
    return session.run(spec)


def run_spec_json(text: str) -> Any:
    """Run a JSON spec document through a default session."""
    return ExperimentSession().run_document(text)
