"""The declarative experiment API — the repo's single front door.

``repro.api`` turns every run in the repository into *data*:

* :mod:`repro.api.specs` — frozen, JSON-round-trippable spec dataclasses
  (:class:`TopologySpec`, :class:`FailureSpec`, :class:`MembershipSpec`,
  :class:`RuntimeSpec`, :class:`ExperimentSpec`, :class:`SweepSpec`) with
  canonical digests;
* :mod:`repro.api.cache` — the spec-keyed topology build cache;
* :mod:`repro.api.result` — the unified :class:`Result` protocol that
  ``RunResult``, ``ChurnRunResult`` and ``SweepReport`` all implement,
  plus the shared decision-bookkeeping mixin;
* :mod:`repro.api.session` — :class:`ExperimentSession`, which resolves a
  spec to the right runtime/runner and executes it;
* :mod:`repro.api.presets` — the classic CLI entry points expressed as
  specs (what ``--emit-spec`` prints).

Quick start::

    from repro.api import ExperimentSpec, TopologySpec, FailureSpec, run_spec

    spec = ExperimentSpec(
        topology=TopologySpec("grid", {"width": 6, "height": 6}),
        failure=FailureSpec("region", {"members": [[2, 2], [2, 3], [3, 2], [3, 3]]}),
    )
    result = run_spec(spec)
    assert result.specification.holds
    print(result.summary())

The same spec serializes with ``spec.to_json()`` and runs from the shell
with ``python -m repro run SPEC.json``.

Determinism invariants:

* spec digests are canonical — independent of ``PYTHONHASHSEED``, dict
  insertion order, field spelling (collections are normalised at
  construction) and the process computing them; they key the topology
  build cache and fingerprint sweep documents;
* resolving and running the same spec document always produces the same
  result digest, whichever execution path the session picks — sequential
  simulator, churn runner, or the partitioned backend selected by
  ``RuntimeSpec.partitions`` (serialized only when it differs from 1, so
  pre-partitioning documents and their digests are unchanged);
* ``Result.digest()`` is a pure function of the run's trace, never of
  labels, timing, or which worker/backend produced it.
"""

from .cache import (
    TopologyCacheInfo,
    build_topology,
    clear_topology_cache,
    set_topology_cache_size,
    topology_cache_info,
)
from .extractors import EXTRACTOR_KINDS, get_extractor
from .presets import (
    FAULT_PRESETS,
    churn_scenario_description,
    churn_scenario_spec,
    fault_preset,
    fault_sweep_spec,
    figure_spec,
    locality_sweep_spec,
    property_sweep_spec,
    quickstart_spec,
    repair_spec,
    torus_sweep_spec,
)
from .result import AggregateSpecification, DecisionResultMixin, Result, json_safe
from .session import ExperimentSession, run_spec, run_spec_json
from .specs import (
    SPEC_VERSION,
    TOPOLOGY_KINDS,
    ExperimentSpec,
    FailureSpec,
    MembershipSpec,
    RuntimeSpec,
    SpecError,
    SweepSpec,
    TopologySpec,
    iter_specs,
    load_spec,
    spec_digest,
)

__all__ = [
    # Specs
    "SPEC_VERSION",
    "TOPOLOGY_KINDS",
    "TopologySpec",
    "FailureSpec",
    "MembershipSpec",
    "RuntimeSpec",
    "ExperimentSpec",
    "SweepSpec",
    "SpecError",
    "spec_digest",
    "load_spec",
    "iter_specs",
    # Session
    "ExperimentSession",
    "run_spec",
    "run_spec_json",
    # Results
    "Result",
    "DecisionResultMixin",
    "AggregateSpecification",
    "json_safe",
    # Topology cache
    "build_topology",
    "topology_cache_info",
    "clear_topology_cache",
    "set_topology_cache_size",
    "TopologyCacheInfo",
    # Extractors
    "EXTRACTOR_KINDS",
    "get_extractor",
    # Presets
    "quickstart_spec",
    "figure_spec",
    "churn_scenario_spec",
    "churn_scenario_description",
    "locality_sweep_spec",
    "property_sweep_spec",
    "repair_spec",
    "torus_sweep_spec",
    "FAULT_PRESETS",
    "fault_preset",
    "fault_sweep_spec",
]
