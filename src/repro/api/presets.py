"""Spec builders for the CLI's classic entry points.

Every positional CLI form maps onto a declarative spec here, which is
what ``--emit-spec`` prints and what the commands themselves execute
through :class:`~repro.api.session.ExperimentSession` — the old flags are
thin shims over the spec layer.
"""

from __future__ import annotations

from .specs import (
    ExperimentSpec,
    FailureSpec,
    MembershipSpec,
    RuntimeSpec,
    SpecError,
    SweepSpec,
    TopologySpec,
)


def quickstart_spec(side: int = 6, block: int = 2, seed: int = 0) -> ExperimentSpec:
    """The ``repro quickstart`` run: a block crash in a ``side×side`` grid."""
    from ..graph.generators import square_region

    members = sorted(square_region((1, 1), block))
    return ExperimentSpec(
        name="quickstart",
        topology=TopologySpec("grid", {"width": side, "height": side}),
        failure=FailureSpec("region", {"members": members, "at": 1.0}),
        seed=seed,
        check=True,
        labels={"side": side, "block": block},
    )


def figure_spec(which: str, seed: int = 0) -> ExperimentSpec:
    """The run behind ``repro figure {1a,1b,2,3}`` as a spec.

    The figure commands derive extra observations from the trace (who
    proposed what, which domains decided); the spec reproduces the *run*
    itself — same topology, schedule, detector timing and seed, hence the
    same canonical digest.
    """
    from ..experiments.scenarios import (
        fig1a_scenario,
        fig1b_scenario,
        fig2_scenario,
        fig3_scenario,
    )

    builders = {
        "1a": ("fig1", fig1a_scenario),
        "1b": ("fig1", fig1b_scenario),
        "2": ("fig2", fig2_scenario),
        "3": ("fig3", fig3_scenario),
    }
    try:
        topology_kind, builder = builders[which]
    except KeyError:
        raise SpecError(
            f"unknown figure {which!r}; known: {', '.join(sorted(builders))}"
        ) from None
    scenario = builder()
    failure = FailureSpec(
        "explicit",
        {"crashes": [[node, time] for node, time in scenario.schedule.crashes]},
    )
    runtime = RuntimeSpec()
    if scenario.failure_detector is not None:
        detector = scenario.failure_detector
        runtime = RuntimeSpec(
            failure_detector={
                "kind": "scripted",
                "default_delay": detector.default_delay,
                "delays": [
                    [subscriber, crashed, delay]
                    for (subscriber, crashed), delay in sorted(
                        detector.delays.items(), key=repr
                    )
                ],
            }
        )
    return ExperimentSpec(
        name=scenario.name,
        topology=TopologySpec(topology_kind),
        failure=failure,
        runtime=runtime,
        seed=seed,
        check=True,
        labels=dict(scenario.labels),
    )


#: The crashed block shared by the race and flash-crowd churn scenarios.
_CHURN_BLOCK = ((1, 1), (1, 2), (2, 1), (2, 2))


def churn_scenario_spec(
    scenario: str,
    nodes: int = 64,
    churn_rate: float = 0.05,
    duration: float = 100.0,
    seed: int = 0,
    runtime: str = "sim",
) -> ExperimentSpec:
    """The run behind ``repro churn --scenario {steady,race,flash}``.

    Mirrors the scenario builders in
    :mod:`repro.experiments.scenarios` exactly — the spec-driven run is
    digest-identical to ``churn_*_scenario(...).run(...)``.
    """
    from ..experiments.scenarios import torus_side_for

    side = torus_side_for(nodes)
    topology = TopologySpec("torus", {"width": side, "height": side})
    engine = RuntimeSpec(engine=runtime)
    if scenario == "steady":
        churn_params = {
            "churn_rate": churn_rate,
            "duration": duration,
            "downtime": 15.0,
        }
        return ExperimentSpec(
            name="churn-steady",
            topology=topology,
            failure=FailureSpec("steady_churn", churn_params),
            membership=MembershipSpec("steady_churn", churn_params),
            runtime=engine,
            seed=seed,
            labels={"churn_rate": churn_rate, "nodes": side * side, "seed": seed},
        )
    if scenario == "race":
        race_params = {
            "members": _CHURN_BLOCK,
            "crash_at": 1.0,
            "recover_at": 6.0,
            "recrash_at": 60.0,
        }
        return ExperimentSpec(
            name="churn-race",
            topology=topology,
            failure=FailureSpec("race", race_params),
            membership=MembershipSpec("race", race_params),
            runtime=engine,
            seed=seed,
            labels={"recover_at": 6.0, "recrash_at": 60.0, "seed": seed},
        )
    if scenario == "flash":
        return ExperimentSpec(
            name="churn-flash-crowd",
            topology=topology,
            failure=FailureSpec("region", {"members": _CHURN_BLOCK, "at": 1.0}),
            membership=MembershipSpec(
                "flash_crowd", {"count": 8, "at": 3.0, "spacing": 1.0}
            ),
            runtime=engine,
            seed=seed,
            labels={"crowd": 8, "seed": seed},
        )
    raise SpecError(f"unknown churn scenario {scenario!r}; known: steady, race, flash")


def churn_scenario_description(scenario: str) -> str:
    """The one-line description the churn CLI prints for each scenario."""
    descriptions = {
        "steady": "independent crash-recover cycles keep agreement in flight",
        "race": (
            "a crashed block recovers while the border is still agreeing on "
            "it, then crashes again; both epochs must decide identically"
        ),
        "flash": "locality-attached joins arrive while the border agrees on a block",
    }
    try:
        return descriptions[scenario]
    except KeyError:
        raise SpecError(f"unknown churn scenario {scenario!r}") from None


def property_sweep_spec(
    cases: int = 10, workers: int = 1, churn: bool = False, base_seed: int = 0
) -> SweepSpec:
    """The ``repro sweep`` command as a family-mode sweep spec."""
    family = "churn-property" if churn else "property"
    return SweepSpec(
        name=f"exp-c1-{family}",
        family=family,
        seeds=tuple(range(cases)),
        workers=workers,
        base_seed=base_seed,
    )


def torus_sweep_spec(
    side: int = 32,
    scenarios: int = 8,
    block_side: int = 2,
    workers: int = 1,
    check: bool = True,
) -> SweepSpec:
    """The large-torus scale family as an experiment-mode sweep spec.

    Block placement comes from the same
    :func:`~repro.experiments.scenarios.torus_block_origins` /
    :func:`~repro.experiments.scenarios.torus_block_members` helpers as
    :func:`repro.experiments.scenarios.torus_scale_family` — pure
    arithmetic, no graphs are built at spec-construction time.  The grid
    axis varies the crashed block's member set, so every point shares one
    :class:`TopologySpec` — and therefore one cached topology build per
    worker.
    """
    from ..experiments.scenarios import torus_block_members, torus_block_origins

    member_sets = []
    for origin in torus_block_origins(side, scenarios, block_side):
        members = sorted(torus_block_members(side, block_side, origin))
        member_sets.append([list(node) for node in members])
    template = ExperimentSpec(
        name=f"torus{side}x{side}-block{block_side}",
        topology=TopologySpec("torus", {"width": side, "height": side}),
        failure=FailureSpec("region", {"members": member_sets[0], "at": 1.0}),
        check=check,
        labels={"side": side, "nodes": side * side, "block_side": block_side},
    )
    return SweepSpec(
        name=f"torus-scale-{side}",
        experiment=template,
        grid={"failure.params.members": member_sets},
        workers=workers,
    )
