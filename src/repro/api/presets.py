"""Spec builders for the CLI's classic entry points.

Every positional CLI form maps onto a declarative spec here, which is
what ``--emit-spec`` prints and what the commands themselves execute
through :class:`~repro.api.session.ExperimentSession` — the old flags are
thin shims over the spec layer.
"""

from __future__ import annotations

from .specs import (
    ExperimentSpec,
    FailureSpec,
    MembershipSpec,
    RuntimeSpec,
    SpecError,
    SweepSpec,
    TopologySpec,
)


def quickstart_spec(side: int = 6, block: int = 2, seed: int = 0) -> ExperimentSpec:
    """The ``repro quickstart`` run: a block crash in a ``side×side`` grid."""
    from ..graph.generators import square_region

    members = sorted(square_region((1, 1), block))
    return ExperimentSpec(
        name="quickstart",
        topology=TopologySpec("grid", {"width": side, "height": side}),
        failure=FailureSpec("region", {"members": members, "at": 1.0}),
        seed=seed,
        check=True,
        labels={"side": side, "block": block},
    )


def figure_spec(which: str, seed: int = 0) -> ExperimentSpec:
    """The run behind ``repro figure {1a,1b,2,3}`` as a spec.

    The figure commands derive extra observations from the trace (who
    proposed what, which domains decided); the spec reproduces the *run*
    itself — same topology, schedule, detector timing and seed, hence the
    same canonical digest.
    """
    from ..experiments.scenarios import (
        fig1a_scenario,
        fig1b_scenario,
        fig2_scenario,
        fig3_scenario,
    )

    builders = {
        "1a": ("fig1", fig1a_scenario),
        "1b": ("fig1", fig1b_scenario),
        "2": ("fig2", fig2_scenario),
        "3": ("fig3", fig3_scenario),
    }
    try:
        topology_kind, builder = builders[which]
    except KeyError:
        raise SpecError(
            f"unknown figure {which!r}; known: {', '.join(sorted(builders))}"
        ) from None
    scenario = builder()
    failure = FailureSpec(
        "explicit",
        {"crashes": [[node, time] for node, time in scenario.schedule.crashes]},
    )
    runtime = RuntimeSpec()
    if scenario.failure_detector is not None:
        detector = scenario.failure_detector
        runtime = RuntimeSpec(
            failure_detector={
                "kind": "scripted",
                "default_delay": detector.default_delay,
                "delays": [
                    [subscriber, crashed, delay]
                    for (subscriber, crashed), delay in sorted(
                        detector.delays.items(), key=repr
                    )
                ],
            }
        )
    return ExperimentSpec(
        name=scenario.name,
        topology=TopologySpec(topology_kind),
        failure=failure,
        runtime=runtime,
        seed=seed,
        check=True,
        labels=dict(scenario.labels),
    )


#: The crashed block shared by the race and flash-crowd churn scenarios.
_CHURN_BLOCK = ((1, 1), (1, 2), (2, 1), (2, 2))


def churn_scenario_spec(
    scenario: str,
    nodes: int = 64,
    churn_rate: float = 0.05,
    duration: float = 100.0,
    seed: int = 0,
    runtime: str = "sim",
) -> ExperimentSpec:
    """The run behind ``repro churn --scenario {steady,race,flash}``.

    Mirrors the scenario builders in
    :mod:`repro.experiments.scenarios` exactly — the spec-driven run is
    digest-identical to ``churn_*_scenario(...).run(...)``.
    """
    from ..experiments.scenarios import torus_side_for

    side = torus_side_for(nodes)
    topology = TopologySpec("torus", {"width": side, "height": side})
    engine = RuntimeSpec(engine=runtime)
    if scenario == "steady":
        churn_params = {
            "churn_rate": churn_rate,
            "duration": duration,
            "downtime": 15.0,
        }
        return ExperimentSpec(
            name="churn-steady",
            topology=topology,
            failure=FailureSpec("steady_churn", churn_params),
            membership=MembershipSpec("steady_churn", churn_params),
            runtime=engine,
            seed=seed,
            labels={"churn_rate": churn_rate, "nodes": side * side, "seed": seed},
        )
    if scenario == "race":
        race_params = {
            "members": _CHURN_BLOCK,
            "crash_at": 1.0,
            "recover_at": 6.0,
            "recrash_at": 60.0,
        }
        return ExperimentSpec(
            name="churn-race",
            topology=topology,
            failure=FailureSpec("race", race_params),
            membership=MembershipSpec("race", race_params),
            runtime=engine,
            seed=seed,
            labels={"recover_at": 6.0, "recrash_at": 60.0, "seed": seed},
        )
    if scenario == "flash":
        return ExperimentSpec(
            name="churn-flash-crowd",
            topology=topology,
            failure=FailureSpec("region", {"members": _CHURN_BLOCK, "at": 1.0}),
            membership=MembershipSpec(
                "flash_crowd", {"count": 8, "at": 3.0, "spacing": 1.0}
            ),
            runtime=engine,
            seed=seed,
            labels={"crowd": 8, "seed": seed},
        )
    raise SpecError(f"unknown churn scenario {scenario!r}; known: steady, race, flash")


def churn_scenario_description(scenario: str) -> str:
    """The one-line description the churn CLI prints for each scenario."""
    descriptions = {
        "steady": "independent crash-recover cycles keep agreement in flight",
        "race": (
            "a crashed block recovers while the border is still agreeing on "
            "it, then crashes again; both epochs must decide identically"
        ),
        "flash": "locality-attached joins arrive while the border agrees on a block",
    }
    try:
        return descriptions[scenario]
    except KeyError:
        raise SpecError(f"unknown churn scenario {scenario!r}") from None


#: The sides of the EXP-L1 system-size sweep (``--full`` extends it).
LOCALITY_SIDES = (8, 12, 16, 24, 32)
LOCALITY_SIDES_FULL = (8, 12, 16, 24, 32, 48, 64)


def locality_sweep_spec(
    exp: str = "l1",
    sides=None,
    region_sides=(1, 2, 3, 4),
    region_side: int = 3,
    side: int = 32,
    seed: int = 0,
    workers: int = 1,
) -> SweepSpec:
    """The ``repro locality`` sweeps (EXP-L1 / EXP-L2) as sweep specs.

    Mirrors :func:`~repro.experiments.locality.system_size_sweep` and
    :func:`~repro.experiments.locality.region_size_sweep` exactly — same
    torus, block corner, crash spread and jittered detector — so each
    point's run is digest-identical to the classic code path, and the
    ``locality`` extractor reproduces the classic cost rows.

    EXP-L1 grows the torus around a fixed block: the width and height
    move in lockstep through a ``|``-coupled grid axis.  EXP-L2 grows
    the crashed block inside a fixed torus: the axis varies the failure
    members.
    """
    from ..graph.generators import square_region

    extract = {"kind": "locality"}
    if exp == "l1":
        sides = tuple(sides) if sides is not None else LOCALITY_SIDES
        members = sorted(square_region((1, 1), region_side))
        template = ExperimentSpec(
            name=f"exp-l1-block{region_side}",
            topology=TopologySpec(
                "torus", {"width": sides[0], "height": sides[0]}
            ),
            failure=FailureSpec(
                "region", {"members": members, "at": 1.0, "spread": 1.0}
            ),
            runtime=RuntimeSpec(
                failure_detector={"kind": "jittered", "low": 0.5, "high": 2.0}
            ),
            seed=seed,
            check=True,
            extract=extract,
            labels={"experiment": "EXP-L1", "region_side": region_side},
        )
        return SweepSpec(
            name="exp-l1-system-size",
            experiment=template,
            grid={
                "topology.params.width|topology.params.height": list(sides)
            },
            workers=workers,
        )
    if exp == "l2":
        member_sets = [
            [list(node) for node in sorted(square_region((1, 1), region_side))]
            for region_side in region_sides
        ]
        template = ExperimentSpec(
            name=f"exp-l2-torus{side}",
            topology=TopologySpec("torus", {"width": side, "height": side}),
            failure=FailureSpec(
                "region", {"members": member_sets[0], "at": 1.0, "spread": 1.0}
            ),
            runtime=RuntimeSpec(
                failure_detector={"kind": "jittered", "low": 0.5, "high": 2.0}
            ),
            seed=seed,
            check=True,
            extract=extract,
            labels={"experiment": "EXP-L2", "side": side},
        )
        return SweepSpec(
            name="exp-l2-region-size",
            experiment=template,
            grid={"failure.params.members": member_sets},
            workers=workers,
        )
    raise SpecError(f"unknown locality experiment {exp!r}; known: l1, l2")


def repair_spec(
    ring_size: int = 32,
    successors: int = 2,
    arc_start: int = 5,
    arc_length: int = 4,
    seed: int = 0,
) -> ExperimentSpec:
    """The ``repro repair`` run (EXP-R1) as an experiment spec.

    Mirrors :func:`~repro.experiments.overlay_repair.run_overlay_repair`:
    the ``ring`` topology is exactly
    :meth:`~repro.repair.RingOverlay.knowledge_graph`, and the ``repair``
    extractor re-creates the overlay, supplies the
    :class:`~repro.repair.RingRepairPolicy` decision policy, applies the
    decided plans and reports the repair verdict — digest-identical to
    the classic code path.
    """
    arc = [(arc_start + offset) % ring_size for offset in range(arc_length)]
    return ExperimentSpec(
        name=f"exp-r1-ring{ring_size}-arc{arc_length}",
        topology=TopologySpec("ring", {"size": ring_size, "successors": successors}),
        failure=FailureSpec("region", {"members": arc, "at": 1.0, "spread": 0.5}),
        seed=seed,
        check=True,
        extract={
            "kind": "repair",
            "params": {"ring_size": ring_size, "successors": successors},
        },
        labels={"experiment": "EXP-R1", "arc_start": arc_start},
    )


#: Named link-fault configurations for ``--faults`` (see
#: :attr:`~repro.api.specs.RuntimeSpec.faults` for the knobs).  The rates
#: are deliberately mild: they degrade liveness measurably without
#: making every run vacuously undecided.
FAULT_PRESETS = {
    # 2% of messages silently vanish.
    "lossy": {"loss": 0.02},
    # one message in five arrives twice.
    "dupes": {"duplication": 0.2},
    # every message may be overtaken by up to one latency unit of traffic.
    "jumbled": {"reorder": 1.0},
    # all three at once, each mild.
    "hostile": {"loss": 0.01, "duplication": 0.1, "reorder": 0.5},
}


def fault_preset(name: str) -> dict:
    """The ``faults`` block of a named preset (a fresh mutable copy)."""
    try:
        return dict(FAULT_PRESETS[name])
    except KeyError:
        raise SpecError(
            f"unknown fault preset {name!r}; known: "
            f"{', '.join(sorted(FAULT_PRESETS))}"
        ) from None


def fault_sweep_spec(
    axis: str = "loss",
    rates=(0.0, 0.01, 0.02, 0.05),
    side: int = 6,
    block: int = 2,
    seeds=(0, 1, 2),
    workers: int = 1,
) -> SweepSpec:
    """A degradation sweep: the quickstart scenario under growing faults.

    ``axis`` is the fault knob to sweep (``loss``, ``duplication`` or
    ``reorder``) and ``rates`` its values — a grid axis at
    ``runtime.faults.<axis>``, crossed with ``seeds``.  Feed the finished
    report to :func:`repro.experiments.degradation_from_sweep` for the
    per-property degradation table.  Note ``reorder`` rates are window
    widths and must be positive; a 0 is only valid on the probability
    axes, where it doubles as the fault-free baseline.
    """
    template = quickstart_spec(side=side, block=block)
    return SweepSpec(
        name=f"faults-{axis}",
        experiment=template,
        seeds=tuple(seeds),
        grid={f"runtime.faults.{axis}": list(rates)},
        workers=workers,
    )


def property_sweep_spec(
    cases: int = 10, workers: int = 1, churn: bool = False, base_seed: int = 0
) -> SweepSpec:
    """The ``repro sweep`` command as a family-mode sweep spec."""
    family = "churn-property" if churn else "property"
    return SweepSpec(
        name=f"exp-c1-{family}",
        family=family,
        seeds=tuple(range(cases)),
        workers=workers,
        base_seed=base_seed,
    )


def torus_sweep_spec(
    side: int = 32,
    scenarios: int = 8,
    block_side: int = 2,
    workers: int = 1,
    check: bool = True,
) -> SweepSpec:
    """The large-torus scale family as an experiment-mode sweep spec.

    Block placement comes from the same
    :func:`~repro.experiments.scenarios.torus_block_origins` /
    :func:`~repro.experiments.scenarios.torus_block_members` helpers as
    :func:`repro.experiments.scenarios.torus_scale_family` — pure
    arithmetic, no graphs are built at spec-construction time.  The grid
    axis varies the crashed block's member set, so every point shares one
    :class:`TopologySpec` — and therefore one cached topology build per
    worker.
    """
    from ..experiments.scenarios import torus_block_members, torus_block_origins

    member_sets = []
    for origin in torus_block_origins(side, scenarios, block_side):
        members = sorted(torus_block_members(side, block_side, origin))
        member_sets.append([list(node) for node in members])
    template = ExperimentSpec(
        name=f"torus{side}x{side}-block{block_side}",
        topology=TopologySpec("torus", {"width": side, "height": side}),
        failure=FailureSpec("region", {"members": member_sets[0], "at": 1.0}),
        check=check,
        labels={"side": side, "nodes": side * side, "block_side": block_side},
    )
    return SweepSpec(
        name=f"torus-scale-{side}",
        experiment=template,
        grid={"failure.params.members": member_sets},
        workers=workers,
    )
