"""Result extractors: domain rows computed from a finished run.

The classic ``repro locality`` and ``repro repair`` commands wrap their
runs in experiment-specific post-processing — locality cost rows
(:class:`~repro.experiments.locality.LocalityPoint`), overlay repair
verdicts (:class:`~repro.experiments.overlay_repair.OverlayRepairPoint`).
That post-processing used to live only in imperative code, which is why
those commands could not emit a reproducing spec document.

An *extractor* makes the post-processing declarative: an
:class:`~repro.api.specs.ExperimentSpec` may carry an ``extract`` block
(``{"kind": ..., "params": {...}}``), and the session then

1. asks the extractor for an optional **decision policy** before the run
   (overlay repair decides repair *plans*, not plain views), and
2. asks it for a **row** afterwards, attached as
   ``result.labels["extract"]`` — which rides through JSON results,
   sweep reports and the experiment service untouched.

Extractors only *observe* (and, via the policy, parameterise) the run;
the trace digest is exactly that of the same spec without post-hoc
extraction, which is what the digest-equality tests against the classic
code paths assert.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Protocol

from .specs import ExperimentSpec, SpecError


class Extractor(Protocol):  # pragma: no cover - typing only
    """What the session needs from a registered extractor."""

    kind: str

    def decision_policy(self, spec: ExperimentSpec, graph) -> Optional[Any]:
        """A decision policy for the run, or ``None`` for the default."""
        ...

    def row(self, spec: ExperimentSpec, result) -> dict[str, Any]:
        """The domain row derived from the finished run."""
        ...


class LocalityExtractor:
    """EXP-L1/EXP-L2 cost rows: border size, messages, bytes, timing.

    The crashed region is read from the spec's own ``failure.params``
    (kind ``region``), so the extractor needs no parameters of its own.
    """

    kind = "locality"

    def decision_policy(self, spec: ExperimentSpec, graph) -> Optional[Any]:
        return None

    def row(self, spec: ExperimentSpec, result) -> dict[str, Any]:
        from ..experiments.locality import _point_from_result
        from ..graph import Region

        if spec.failure.kind != "region":
            raise SpecError(
                "the locality extractor reads the crashed region from a "
                f"failure of kind 'region', got {spec.failure.kind!r}"
            )
        members = spec.failure.params["members"]
        region = Region.of(result.graph, members)
        return dict(_point_from_result(result, region).as_row())


class RepairExtractor:
    """EXP-R1 overlay repair: decide plans, apply them, report the verdict.

    ``params`` must carry ``ring_size`` and ``successors`` (the
    :class:`~repro.repair.RingOverlay` the topology was generated from);
    the crashed arc is the spec's ``region`` failure members.  The
    decision policy makes border nodes agree on *repair plans* — exactly
    what :func:`~repro.experiments.overlay_repair.run_overlay_repair`
    passes to the runner, hence digest-identical runs.
    """

    kind = "repair"

    def _overlay(self, spec: ExperimentSpec):
        from ..repair import RingOverlay

        params = dict(spec.extract.get("params", {})) if spec.extract else {}
        try:
            ring_size = int(params["ring_size"])
        except KeyError:
            raise SpecError(
                "the repair extractor needs extract.params.ring_size"
            ) from None
        successors = int(params.get("successors", 2))
        return RingOverlay(ring_size, successors)

    def decision_policy(self, spec: ExperimentSpec, graph) -> Optional[Any]:
        from ..repair import RingRepairPolicy

        return RingRepairPolicy(self._overlay(spec))

    def row(self, spec: ExperimentSpec, result) -> dict[str, Any]:
        from ..experiments.overlay_repair import OverlayRepairRun
        from ..repair import apply_decisions

        if spec.failure.kind != "region":
            raise SpecError(
                "the repair extractor reads the crashed arc from a failure "
                f"of kind 'region', got {spec.failure.kind!r}"
            )
        overlay = self._overlay(spec)
        arc = tuple(spec.failure.params["members"])
        outcome = apply_decisions(overlay, result.schedule.nodes, result.decisions)
        run = OverlayRepairRun(
            overlay=overlay, arc=arc, result=result, outcome=outcome
        )
        return dict(run.point().as_row())


_EXTRACTORS: dict[str, Any] = {
    LocalityExtractor.kind: LocalityExtractor(),
    RepairExtractor.kind: RepairExtractor(),
}

#: Extractor kinds resolvable from an ``extract`` block.
EXTRACTOR_KINDS = tuple(sorted(_EXTRACTORS))


def get_extractor(kind: str) -> Extractor:
    """Look up a registered extractor by its ``extract.kind``."""
    try:
        return _EXTRACTORS[kind]
    except KeyError:
        raise SpecError(
            f"unknown extract kind {kind!r}; known: {', '.join(EXTRACTOR_KINDS)}"
        ) from None
