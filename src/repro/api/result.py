"""The unified result surface of every run layer.

:class:`Result` is the protocol every run-shaped outcome implements —
:class:`~repro.experiments.runner.RunResult` (static runs),
:class:`~repro.churn.runner.ChurnRunResult` (churn runs) and
:class:`~repro.scale.sweep.SweepReport` (sharded sweeps) all share
``digest()``, ``check_specification()``, ``summary()`` and ``as_dict()``,
so callers (the CLI's ``--json`` output, CI scripts, the session facade)
can treat any of them uniformly.

:class:`DecisionResultMixin` is the single home of the decision-derived
helpers (``decided_views`` / ``deciding_nodes`` / ``decisions_on`` /
trace ``digest``) that used to be duplicated between ``RunResult`` and
``ChurnRunResult``.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.properties import Decision
    from ..graph import NodeId, Region


# ---------------------------------------------------------------------------
# JSON encoding
# ---------------------------------------------------------------------------
def json_safe(value: Any) -> Any:
    """Recursively convert ``value`` into JSON-serializable primitives.

    Tuples, sets and frozensets become (sorted, for sets) lists, mappings
    become string-keyed dicts, enums their names, dataclasses dicts of
    their fields, and region-like objects lists of their members.  Node
    ids that are tuples (grid coordinates) become lists — the spec layer
    converts them back on the way in.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, enum.Enum):
        return value.name
    if isinstance(value, Mapping):
        return {str(key): json_safe(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (set, frozenset)):
        return sorted((json_safe(item) for item in value), key=repr)
    if isinstance(value, (list, tuple)):
        return [json_safe(item) for item in value]
    members = getattr(value, "members", None)
    if members is not None and isinstance(members, frozenset):
        return sorted((json_safe(item) for item in members), key=repr)
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: json_safe(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    return repr(value)


# ---------------------------------------------------------------------------
# The protocol
# ---------------------------------------------------------------------------
@runtime_checkable
class Result(Protocol):
    """What every run layer's outcome can do."""

    def digest(self) -> str:
        """Canonical deterministic fingerprint of the outcome."""
        ...

    def check_specification(self) -> Any:
        """(Re)check the relevant specification and return its report."""
        ...

    def summary(self) -> Any:
        """Human-oriented summary (text for runs, a dict for sweeps)."""
        ...

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable dict of the outcome (machine consumers)."""
        ...


# ---------------------------------------------------------------------------
# Shared decision-derived helpers
# ---------------------------------------------------------------------------
class DecisionResultMixin:
    """Decision bookkeeping shared by ``RunResult`` and ``ChurnRunResult``.

    Expects the concrete class to provide ``decisions`` (a list of
    :class:`~repro.core.properties.Decision`) and ``trace`` (a
    :class:`~repro.trace.TraceRecorder`).
    """

    decisions: list  # provided by the concrete dataclass
    trace: Any

    @property
    def decided_views(self) -> "frozenset[Region]":
        """The distinct views decided during the run."""
        return frozenset(decision.view for decision in self.decisions)

    @property
    def deciding_nodes(self) -> "frozenset[NodeId]":
        """The nodes that decided during the run."""
        return frozenset(decision.node for decision in self.decisions)

    def decisions_on(self, view: "Region") -> "list[Decision]":
        """All decisions whose view equals ``view``."""
        return [decision for decision in self.decisions if decision.view == view]

    def digest(self) -> str:
        """Canonical trace digest — the run's deterministic fingerprint.

        Two runs with identical (topology, schedule, seed, knobs) produce
        the same digest regardless of which process executed them; the
        sharded sweep engine (:mod:`repro.scale`) compares these.
        """
        return self.trace.digest()

    # -- shared as_dict building blocks ---------------------------------
    def _decisions_as_dicts(self) -> list[dict[str, Any]]:
        return [
            {
                "time": decision.time,
                "node": json_safe(decision.node),
                "view": json_safe(decision.view),
            }
            for decision in self.decisions
        ]

    def _specification_as_dict(self) -> Any:
        specification = getattr(self, "specification", None)
        if specification is None:
            return None
        return {
            "holds": specification.holds,
            "violations": list(specification.violations()),
        }


# ---------------------------------------------------------------------------
# Aggregate specification verdict (sweeps)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AggregateSpecification:
    """The sweep-level specification verdict.

    Per-run CD1–CD7 checks happen inside the workers; this is their
    conjunction, with each surviving violation prefixed by the index of
    the run it came from.
    """

    holds: bool
    checked_runs: int
    violation_list: tuple[str, ...] = ()

    def violations(self) -> list[str]:
        return list(self.violation_list)

    def summary(self) -> str:
        status = "holds" if self.holds else "VIOLATED"
        lines = [f"specification across {self.checked_runs} runs: {status}"]
        lines.extend(f"    {violation}" for violation in self.violation_list)
        return "\n".join(lines)
