"""Spec-keyed topology build cache.

Graph construction dominates large sweep runs (a 4096-node torus is
rebuilt for every block-crash scenario of the scale family), yet
:class:`~repro.graph.KnowledgeGraph` is immutable — the same spec always
builds an equivalent graph, and a built instance is safe to share between
runs.  This module therefore memoises :meth:`TopologySpec.build` in a
process-local LRU keyed by the spec's canonical digest.

The cache is per process: sweep workers each hold their own, so tasks
that land on the same worker (and fork-started workers, which inherit the
parent's cache) share builds without any cross-process coordination.
``benchmarks/bench_sweep_scale.py`` measures the cold/warm build times.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph import KnowledgeGraph
    from .specs import TopologySpec

#: Default maximum number of cached graphs per process.
DEFAULT_CACHE_SIZE = 32

_lock = threading.Lock()
_cache: "OrderedDict[str, KnowledgeGraph]" = OrderedDict()
_maxsize = DEFAULT_CACHE_SIZE
_hits = 0
_misses = 0


@dataclass(frozen=True)
class TopologyCacheInfo:
    """A point-in-time snapshot of the cache counters."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def build_topology(spec: "TopologySpec") -> "KnowledgeGraph":
    """Build (or fetch) the graph described by ``spec``.

    Cache hits return the *same* immutable graph instance; the simulator
    never mutates its input graph (churn swaps in derived snapshots), so
    sharing is safe across runs and threads.
    """
    global _hits, _misses
    key = spec.digest()
    with _lock:
        graph = _cache.get(key)
        if graph is not None:
            _cache.move_to_end(key)
            _hits += 1
            return graph
    # Build outside the lock: builds can be slow and are idempotent.
    graph = spec.build_uncached()
    with _lock:
        _misses += 1
        _cache[key] = graph
        _cache.move_to_end(key)
        while len(_cache) > _maxsize:
            _cache.popitem(last=False)
    return graph


def topology_cache_info() -> TopologyCacheInfo:
    """Current hit/miss/size counters."""
    with _lock:
        return TopologyCacheInfo(
            hits=_hits, misses=_misses, size=len(_cache), maxsize=_maxsize
        )


def clear_topology_cache() -> None:
    """Drop every cached graph and reset the counters."""
    global _hits, _misses
    with _lock:
        _cache.clear()
        _hits = 0
        _misses = 0


def set_topology_cache_size(maxsize: int) -> None:
    """Resize the cache (evicting oldest entries if shrinking)."""
    global _maxsize
    if maxsize < 0:
        raise ValueError("cache size must be non-negative")
    with _lock:
        _maxsize = maxsize
        while len(_cache) > _maxsize:
            _cache.popitem(last=False)
