"""Declarative, serializable experiment specifications.

A *spec* is a frozen, JSON-round-trippable description of one experiment
(or a whole sweep of them): which topology to build, which failures and
membership events to inject, which runtime to execute on, and with what
seed.  Specs are *data* — they pickle trivially across process
boundaries, hash to a canonical digest (reusing the hash-seed-independent
encoding of :mod:`repro.trace.digest`), and fully reproduce a run:

>>> spec = ExperimentSpec(
...     topology=TopologySpec("grid", {"width": 6, "height": 6}),
...     failure=FailureSpec("region", {"members": [[2, 2], [2, 3], [3, 2], [3, 3]]}),
... )
>>> ExperimentSpec.from_json(spec.to_json()) == spec
True

Every collection inside a spec is normalised at construction time (lists
become tuples, mapping keys are sorted), so two specs describing the same
experiment compare equal and digest identically no matter how they were
written down.

The spec classes deliberately know nothing about simulators or runners;
resolution to live objects happens in :mod:`repro.api.session` (and the
topology build in :mod:`repro.api.cache`, keyed by ``TopologySpec``
digest).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Optional

#: Format version stamped into every serialized spec.
SPEC_VERSION = 1


class SpecError(ValueError):
    """Raised when a spec is malformed or cannot be deserialized."""


# ---------------------------------------------------------------------------
# Normalisation and encoding helpers
# ---------------------------------------------------------------------------
class FrozenParams(dict):
    """A hashable, string-keyed parameter mapping.

    :func:`freeze` guarantees every value is itself hashable (tuples,
    nested ``FrozenParams``, primitives), so the frozen spec dataclasses
    stay hashable — ``set(sweep.expand())`` and dict-keying by spec work.
    Treat instances as immutable; they back frozen dataclass fields.
    """

    def __hash__(self) -> int:  # type: ignore[override]
        return hash(tuple(sorted(self.items())))


def freeze(value: Any) -> Any:
    """Deep-normalise ``value`` into the canonical immutable spec form.

    Lists and tuples become tuples (recursively), mappings become
    hashable :class:`FrozenParams` with sorted string keys, sets become
    sorted tuples.  Applying :func:`freeze` twice is a no-op, which is
    what makes construction, JSON round-trips and digests all agree.
    """
    if isinstance(value, Mapping):
        return FrozenParams(
            (str(key), freeze(value[key])) for key in sorted(value, key=str)
        )
    if isinstance(value, (list, tuple)):
        return tuple(freeze(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted((freeze(item) for item in value), key=repr))
    return value


def thaw(value: Any) -> Any:
    """The JSON-safe counterpart of :func:`freeze` (tuples become lists)."""
    if isinstance(value, Mapping):
        return {str(key): thaw(value[key]) for key in sorted(value, key=str)}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [thaw(item) for item in freeze(value)]
    return value


def spec_digest(payload: Any) -> str:
    """Canonical SHA-256 digest of any spec payload.

    Reuses :func:`repro.trace.digest.canonical_text`, so the digest is
    independent of ``PYTHONHASHSEED``, dict insertion order, and which
    process computes it — the property the spec-keyed topology cache and
    the sharded sweep engine both rely on.
    """
    # Imported lazily: repro.trace must not load before repro.sim, and
    # repro.api is imported first by the package __init__.
    from ..trace.digest import canonical_text

    text = canonical_text(freeze(payload))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _require_mapping(data: Any, what: str) -> Mapping:
    if not isinstance(data, Mapping):
        raise SpecError(f"{what} must be a mapping, got {type(data).__name__}")
    return data


def _check_keys(data: Mapping, allowed: frozenset, what: str) -> None:
    """Reject unknown keys: a typo'd knob must not silently run defaults."""
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise SpecError(
            f"unknown {what} keys {', '.join(map(repr, unknown))}; "
            f"known: {', '.join(sorted(allowed))}"
        )


#: The keys of a kind+params sub-spec document.
_KIND_PARAMS_KEYS = frozenset({"kind", "params"})


def _check_tag(data: Mapping, expected: str) -> None:
    tag = data.get("spec", expected)
    if tag != expected:
        raise SpecError(f"expected a {expected!r} spec, got {tag!r}")
    version = data.get("version", SPEC_VERSION)
    if version != SPEC_VERSION:
        raise SpecError(f"unsupported spec version {version!r} (this is {SPEC_VERSION})")


class _SpecBase:
    """Shared serialization surface of every spec dataclass."""

    def as_dict(self) -> dict[str, Any]:
        """Alias for :meth:`to_dict` (the :class:`Result` protocol verb)."""
        return self.to_dict()  # type: ignore[attr-defined]

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Serialize to a JSON document (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)  # type: ignore[attr-defined]

    @classmethod
    def from_json(cls, text: str):
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid spec JSON: {exc}") from exc
        return cls.from_dict(data)  # type: ignore[attr-defined]

    def digest(self) -> str:
        """Canonical digest of the spec (a pure function of its data)."""
        return spec_digest(self.to_dict())  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# TopologySpec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec(_SpecBase):
    """A named, parameterised topology build.

    ``kind`` selects a builder (see :data:`TOPOLOGY_KINDS`); ``params``
    are its keyword arguments.  Building happens through the spec-keyed
    cache in :mod:`repro.api.cache`.
    """

    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.kind:
            raise SpecError("topology kind must be non-empty")
        object.__setattr__(self, "params", freeze(self.params))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": thaw(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        data = _require_mapping(data, "TopologySpec")
        _check_keys(data, _KIND_PARAMS_KEYS, "TopologySpec")
        try:
            kind = data["kind"]
        except KeyError:
            raise SpecError("TopologySpec needs a 'kind'") from None
        return cls(kind=kind, params=data.get("params", {}))

    def build_uncached(self):
        """Build the graph directly, bypassing the cache."""
        import importlib

        try:
            module_name, attr = _TOPOLOGY_BUILDERS[self.kind]
        except KeyError:
            raise SpecError(
                f"unknown topology kind {self.kind!r}; "
                f"known: {', '.join(TOPOLOGY_KINDS)}"
            ) from None
        builder = getattr(importlib.import_module(module_name), attr)
        try:
            return builder(**dict(self.params))
        except TypeError as exc:
            raise SpecError(f"bad params for topology {self.kind!r}: {exc}") from exc

    def build(self):
        """Build the graph through the spec-keyed cache."""
        from .cache import build_topology

        return build_topology(self)


def _fig2_graph():
    from ..experiments.topologies import fig2_topology

    return fig2_topology().graph


def _fig3_graph():
    from ..experiments.topologies import fig3_topology

    return fig3_topology().graph


#: kind -> (module, attribute) of the builder; resolved lazily so the
#: spec layer stays importable before the generator modules.
_TOPOLOGY_BUILDERS = {
    "grid": ("repro.graph.generators", "grid"),
    "torus": ("repro.graph.generators", "torus"),
    "ring": ("repro.graph.generators", "ring"),
    "chord": ("repro.graph.generators", "chord_like"),
    "complete": ("repro.graph.generators", "complete"),
    "star": ("repro.graph.generators", "star"),
    "line": ("repro.graph.generators", "line"),
    "geometric": ("repro.graph.generators", "random_geometric"),
    "smallworld": ("repro.graph.generators", "watts_strogatz"),
    "scalefree": ("repro.graph.generators", "barabasi_albert"),
    "communities": ("repro.graph.generators", "clustered_communities"),
    "edges": ("repro.graph.generators", "from_edge_list"),
    "fig1": ("repro.experiments.topologies", "fig1_topology"),
    "fig2": (__name__, "_fig2_graph"),
    "fig3": (__name__, "_fig3_graph"),
}

#: Topology kinds resolvable by :meth:`TopologySpec.build`.
TOPOLOGY_KINDS = tuple(sorted(_TOPOLOGY_BUILDERS))


# ---------------------------------------------------------------------------
# FailureSpec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FailureSpec(_SpecBase):
    """A declarative crash schedule.

    Kinds mirror the builders of :mod:`repro.failures.schedules`:

    * ``none`` — no crashes;
    * ``explicit`` — ``crashes=[[node, time], ...]`` (``allow_recrash``);
    * ``region`` — ``members``, ``at``, ``spread``;
    * ``multi_region`` — ``regions``, ``at``, ``stagger``;
    * ``growing_region`` — ``initial``, ``growth``, ``initial_at``,
      ``growth_at``, ``growth_spacing``;
    * ``cascade`` — ``start``, ``size``, ``start_at``, ``spacing``;
    * ``random_region`` — ``size``, ``at``, ``spread`` (+ optional
      ``region_seed``; the experiment seed otherwise);
    * ``steady_churn`` / ``race`` — the crash half of the coupled churn
      builders (the matching :class:`MembershipSpec` kind supplies the
      membership half from the *same* parameters and seed).
    """

    kind: str = "none"
    params: Mapping[str, Any] = field(default_factory=dict)

    KINDS = (
        "none",
        "explicit",
        "region",
        "multi_region",
        "growing_region",
        "cascade",
        "random_region",
        "steady_churn",
        "race",
    )

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise SpecError(
                f"unknown failure kind {self.kind!r}; known: {', '.join(self.KINDS)}"
            )
        object.__setattr__(self, "params", freeze(self.params))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": thaw(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FailureSpec":
        data = _require_mapping(data, "FailureSpec")
        _check_keys(data, _KIND_PARAMS_KEYS, "FailureSpec")
        return cls(kind=data.get("kind", "none"), params=data.get("params", {}))

    def resolve(self, graph, seed: int = 0):
        """Build the :class:`~repro.failures.CrashSchedule` over ``graph``."""
        from ..failures import (
            CrashSchedule,
            cascade_crash,
            growing_region_crash,
            multi_region_crash,
            random_connected_region,
            region_crash,
        )

        params = dict(self.params)
        if self.kind == "none":
            return CrashSchedule()
        if self.kind == "explicit":
            crashes = tuple(
                (node, float(time)) for node, time in params.get("crashes", ())
            )
            return CrashSchedule(crashes, allow_recrash=params.get("allow_recrash", False))
        if self.kind == "region":
            return region_crash(
                graph,
                params["members"],
                at=params.get("at", 1.0),
                spread=params.get("spread", 0.0),
            )
        if self.kind == "multi_region":
            return multi_region_crash(
                graph,
                params["regions"],
                at=params.get("at", 1.0),
                stagger=params.get("stagger", 0.0),
            )
        if self.kind == "growing_region":
            return growing_region_crash(
                graph,
                params["initial"],
                params["growth"],
                initial_at=params.get("initial_at", 1.0),
                growth_at=params.get("growth_at", 10.0),
                growth_spacing=params.get("growth_spacing", 2.0),
            )
        if self.kind == "cascade":
            return cascade_crash(
                graph,
                params["start"],
                params["size"],
                start=params.get("start_at", 1.0),
                spacing=params.get("spacing", 2.0),
            )
        if self.kind == "random_region":
            region = random_connected_region(
                graph, params["size"], seed=params.get("region_seed", seed)
            )
            return region_crash(
                graph,
                region.members,
                at=params.get("at", 1.0),
                spread=params.get("spread", 0.0),
            )
        # Coupled churn kinds: take the crash half of the shared builder.
        schedule, _membership = _resolve_coupled(self.kind, params, graph, seed)
        return schedule


# ---------------------------------------------------------------------------
# MembershipSpec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MembershipSpec(_SpecBase):
    """A declarative membership schedule.

    Kinds:

    * ``none`` — static membership;
    * ``recoveries`` — explicit ``events=[[node, time], ...]`` recoveries
      (old edges);
    * ``leaves`` — explicit ``events=[[node, time], ...]`` departures;
    * ``flash_crowd`` — ``count``, ``at``, ``spacing`` locality joins
      (+ optional ``join_seed``; the experiment seed otherwise);
    * ``steady_churn`` / ``race`` — the membership half of the coupled
      churn builders (see :class:`FailureSpec`).
    """

    kind: str = "none"
    params: Mapping[str, Any] = field(default_factory=dict)

    KINDS = ("none", "recoveries", "leaves", "flash_crowd", "steady_churn", "race")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise SpecError(
                f"unknown membership kind {self.kind!r}; known: {', '.join(self.KINDS)}"
            )
        object.__setattr__(self, "params", freeze(self.params))

    @property
    def is_static(self) -> bool:
        """True when the spec adds no membership events at all."""
        if self.kind == "none":
            return True
        if self.kind in ("recoveries", "leaves"):
            return not self.params.get("events")
        if self.kind == "flash_crowd":
            return not self.params.get("count", 0)
        return False

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "params": thaw(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MembershipSpec":
        data = _require_mapping(data, "MembershipSpec")
        _check_keys(data, _KIND_PARAMS_KEYS, "MembershipSpec")
        return cls(kind=data.get("kind", "none"), params=data.get("params", {}))

    def resolve(self, graph, schedule, seed: int = 0):
        """Build the :class:`~repro.churn.MembershipSchedule`."""
        from ..churn import MembershipSchedule, flash_crowd_joins
        from ..churn.membership import leave, recover

        params = dict(self.params)
        if self.kind == "none":
            return MembershipSchedule()
        if self.kind == "recoveries":
            events = tuple(
                recover(node, float(time)) for node, time in params.get("events", ())
            )
            return MembershipSchedule(
                tuple(sorted(events, key=lambda e: (e.time, repr(e.node))))
            )
        if self.kind == "leaves":
            events = tuple(
                leave(node, float(time)) for node, time in params.get("events", ())
            )
            return MembershipSchedule(
                tuple(sorted(events, key=lambda e: (e.time, repr(e.node))))
            )
        if self.kind == "flash_crowd":
            if not params.get("count", 0):
                return MembershipSchedule()
            return flash_crowd_joins(
                graph,
                count=params["count"],
                at=params.get("at", 3.0),
                spacing=params.get("spacing", 1.0),
                seed=params.get("join_seed", seed),
            )
        _schedule, membership = _resolve_coupled(self.kind, params, graph, seed)
        return membership


#: Kinds whose crash and membership halves come from one coupled builder.
#: The session refuses specs where the two halves diverge.
COUPLED_KINDS = ("steady_churn", "race")


def _resolve_coupled(kind: str, params: dict, graph, seed: int):
    """The coupled churn builders produce crash + membership halves from
    one call; the matching Failure/Membership spec kinds each take their
    half.  Both sides pass identical ``(kind, params, seed)``, so the
    halves always describe the same scenario."""
    from ..churn import crash_recover_recrash, steady_state_churn

    if kind == "steady_churn":
        return steady_state_churn(
            graph,
            churn_rate=params.get("churn_rate", 0.05),
            duration=params.get("duration", 100.0),
            seed=params.get("churn_seed", seed),
            downtime=params.get("downtime", 15.0),
        )
    if kind == "race":
        return crash_recover_recrash(
            graph,
            params["members"],
            crash_at=params.get("crash_at", 1.0),
            recover_at=params.get("recover_at", 6.0),
            recrash_at=params.get("recrash_at", 60.0),
        )
    raise SpecError(f"unknown coupled churn kind {kind!r}")


# ---------------------------------------------------------------------------
# RuntimeSpec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RuntimeSpec(_SpecBase):
    """Which runtime executes the experiment, and its substrate knobs.

    ``engine`` is ``"sim"`` (deterministic discrete-event simulator),
    ``"asyncio"`` (the wall-clock concurrent runtime) or
    ``"asyncio-virtual"`` (the same asyncio protocol code on the
    deterministic virtual-time loop, :mod:`repro.vtime` — zero real
    sleeps, digest-reproducible across processes and hash seeds).
    ``"asyncio-virtual"`` is a value added to an always-serialized field,
    so every pre-existing document and digest is byte-identical.
    ``batched`` selects the simulator's same-timestamp dispatch fast path
    (the unbatched reference loop exists for the determinism regression
    suite).  ``latency`` and ``failure_detector`` are small kind+params
    mappings (``constant``/``uniform``/``exponential`` latencies;
    ``perfect``/``jittered``/``scripted`` detectors); ``None`` means the
    runner defaults.  Latency models are simulator-only; detector
    policies work on all three engines (both asyncio engines scale the
    policy's simulated-time delays by ``time_scale``).

    ``partitions`` selects the partitioned simulator backend
    (:mod:`repro.sim.partition`): the graph is split into that many
    locality-aware shards whose schedulers run in parallel, with a merged
    trace digest *identical* to the sequential run.  ``1`` (the default)
    is the sequential simulator.  The field is serialized only when it
    differs from ``1``, so pre-partitioning spec documents and their
    digests are unchanged.

    ``collection`` selects what the run keeps of its trace:
    ``"trace"`` (the default) the full columnar event log, ``"digest"``
    only the streamed canonical digest + metrics — no event log exists
    anywhere, and partition/sweep workers ship no trace bytes.  The
    result's ``digest()`` is bit-identical either way.  Digest mode is
    simulator-only and, because the CD1–CD7 checkers and churn epoch
    reconstruction both walk the full trace, a digest-mode experiment
    must set ``check=False`` and use a static failure model.  Serialized
    only when not the default, like ``partitions``.

    ``faults`` injects deterministic link faults (:mod:`repro.sim.faults`)
    on every engine.  It is a flat mapping of knobs — ``loss`` (per-link
    drop probability, ``< 1``), ``duplication`` (+ optional ``copies``,
    default 2), ``reorder`` (a bounded extra-delay window in simulated
    time units, + optional ``reorder_rate``, default 1) and an optional
    extra ``seed`` — resolved into a composition applied in the fixed
    order loss → duplication → reorder.  Every decision is keyed by the
    run seed and the message's per-channel send index, so fault sweeps
    digest-reproduce exactly like fault-free runs.  Validated at
    construction; serialized only when set, so fault-free documents and
    digests are byte-identical to before the field existed.
    """

    engine: str = "sim"
    batched: bool = True
    latency: Optional[Mapping[str, Any]] = None
    failure_detector: Optional[Mapping[str, Any]] = None
    max_events: int = 5_000_000
    until: Optional[float] = None
    partitions: int = 1
    collection: str = "trace"
    #: asyncio-only knobs (ignored by the simulator).
    detection_delay: float = 0.01
    time_scale: float = 0.01
    timeout: float = 60.0
    #: Optional link-fault knobs (all engines); ``None`` — the default —
    #: keeps the paper's reliable FIFO channels and is not serialized.
    faults: Optional[Mapping[str, Any]] = None

    ENGINES = ("sim", "asyncio", "asyncio-virtual")
    COLLECTIONS = ("trace", "digest")
    #: The knobs a ``faults`` block may set.
    FAULT_KEYS = frozenset(
        {"loss", "duplication", "copies", "reorder", "reorder_rate", "seed"}
    )

    def __post_init__(self) -> None:
        if self.engine not in self.ENGINES:
            raise SpecError(
                f"unknown engine {self.engine!r}; known: {', '.join(self.ENGINES)}"
            )
        if not isinstance(self.partitions, int) or isinstance(self.partitions, bool):
            raise SpecError(
                f"partitions must be an integer, got {self.partitions!r}"
            )
        if self.partitions < 1:
            raise SpecError(f"partitions must be >= 1, got {self.partitions}")
        if self.partitions > 1 and self.engine != "sim":
            raise SpecError(
                "partitioned execution needs engine='sim' (the asyncio "
                "runtimes drive one event loop and cannot be partitioned)"
            )
        if self.collection not in self.COLLECTIONS:
            raise SpecError(
                f"unknown collection {self.collection!r}; "
                f"known: {', '.join(self.COLLECTIONS)}"
            )
        if self.collection == "digest" and self.engine != "sim":
            raise SpecError(
                "collection='digest' needs engine='sim' (the asyncio "
                "runtimes reconstruct membership epochs from the full "
                "trace)"
            )
        if self.latency is not None:
            latency = _require_mapping(self.latency, "RuntimeSpec.latency")
            object.__setattr__(self, "latency", freeze(latency))
            # Resolve now and discard: an unknown kind or a bad parameter
            # (negative delay, misspelled key) must fail at construction,
            # not deep inside a sweep worker.
            self.resolve_latency()
        if self.failure_detector is not None:
            object.__setattr__(self, "failure_detector", freeze(self.failure_detector))
        if self.faults is not None:
            faults = _require_mapping(self.faults, "RuntimeSpec.faults")
            _check_keys(faults, self.FAULT_KEYS, "RuntimeSpec.faults")
            object.__setattr__(self, "faults", freeze(faults))
            # Resolve now and discard: a negative rate or an inert block
            # must fail at construction, not deep inside a sweep worker.
            self.resolve_faults()

    def to_dict(self) -> dict[str, Any]:
        data = {
            "engine": self.engine,
            "batched": self.batched,
            "latency": thaw(self.latency) if self.latency is not None else None,
            "failure_detector": (
                thaw(self.failure_detector) if self.failure_detector is not None else None
            ),
            "max_events": self.max_events,
            "until": self.until,
            "detection_delay": self.detection_delay,
            "time_scale": self.time_scale,
            "timeout": self.timeout,
        }
        if self.partitions != 1:
            # Omitted at the default so documents (and digests) written
            # before the partitioned backend existed stay byte-identical.
            data["partitions"] = self.partitions
        if self.collection != "trace":
            # Same rationale as partitions.
            data["collection"] = self.collection
        if self.faults is not None:
            # Same rationale again: fault-free documents (and digests)
            # written before the fault layer existed stay byte-identical.
            data["faults"] = thaw(self.faults)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RuntimeSpec":
        data = _require_mapping(data, "RuntimeSpec")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"unknown RuntimeSpec keys {', '.join(map(repr, unknown))}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(**dict(data))

    def resolve_latency(self):
        """Build the latency model (``None`` → runner default)."""
        if self.latency is None:
            return None
        from ..sim import ConstantLatency, UniformLatency
        from ..sim.latency import ExponentialLatency

        params = dict(self.latency)
        kind = params.pop("kind", "constant")
        models = {
            "constant": ConstantLatency,
            "uniform": UniformLatency,
            "exponential": ExponentialLatency,
        }
        try:
            model = models[kind]
        except KeyError:
            raise SpecError(
                f"unknown latency kind {kind!r}; known: {', '.join(sorted(models))}"
            ) from None
        try:
            return model(**params)
        except TypeError as exc:
            raise SpecError(f"bad latency spec for kind {kind!r}: {exc}") from exc
        except ValueError as exc:
            raise SpecError(f"bad latency spec: {exc}") from exc

    def resolve_failure_detector(self):
        """Build the failure-detector policy (``None`` → runner default)."""
        if self.failure_detector is None:
            return None
        from ..sim import (
            JitteredFailureDetector,
            PerfectFailureDetector,
            ScriptedFailureDetector,
        )

        params = dict(self.failure_detector)
        kind = params.pop("kind", "perfect")
        if kind == "perfect":
            return PerfectFailureDetector(**params)
        if kind == "jittered":
            return JitteredFailureDetector(**params)
        if kind == "scripted":
            delays = {
                (subscriber, crashed): float(delay)
                for subscriber, crashed, delay in params.pop("delays", ())
            }
            return ScriptedFailureDetector(delays=delays, **params)
        raise SpecError(
            f"unknown failure-detector kind {kind!r}; known: perfect, jittered, scripted"
        )

    def resolve_faults(self):
        """Build the link-fault model (``None`` → reliable channels).

        Stages compose in the fixed order loss → duplication → reorder;
        each draws from its own keyed RNG stream, so enabling one knob
        never perturbs another's decisions (see :mod:`repro.sim.faults`).
        """
        if self.faults is None:
            return None
        from ..sim.faults import (
            DuplicatingLinks,
            FaultsError,
            LossyLinks,
            ReorderingLinks,
            compose_faults,
        )

        params = dict(self.faults)
        seed = params.pop("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise SpecError(f"faults 'seed' must be an integer, got {seed!r}")
        stages = []
        try:
            if "loss" in params:
                stages.append(LossyLinks(rate=params.pop("loss"), seed=seed))
            if "duplication" in params:
                stages.append(
                    DuplicatingLinks(
                        rate=params.pop("duplication"),
                        copies=params.pop("copies", 2),
                        seed=seed,
                    )
                )
            if "reorder" in params:
                stages.append(
                    ReorderingLinks(
                        window=params.pop("reorder"),
                        rate=params.pop("reorder_rate", 1.0),
                        seed=seed,
                    )
                )
        except FaultsError as exc:
            raise SpecError(f"bad faults spec: {exc}") from exc
        if params:
            # Orphaned modifiers would silently do nothing — fail loudly.
            raise SpecError(
                f"faults keys {', '.join(map(repr, sorted(params)))} need their "
                "base knob ('copies' needs 'duplication', 'reorder_rate' "
                "needs 'reorder')"
            )
        if not stages:
            raise SpecError(
                "faults block enables no fault: set 'loss', 'duplication' "
                "and/or 'reorder'"
            )
        return compose_faults(*stages)


# ---------------------------------------------------------------------------
# ExperimentSpec
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentSpec(_SpecBase):
    """One fully described protocol run.

    The single funnel for every run in the repo: resolving the spec
    (see :class:`~repro.api.session.ExperimentSession`) builds the
    topology through the spec-keyed cache, materialises the crash and
    membership schedules, and executes on the requested runtime.
    """

    topology: TopologySpec
    failure: FailureSpec = field(default_factory=FailureSpec)
    membership: MembershipSpec = field(default_factory=MembershipSpec)
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    seed: int = 0
    check: bool = True
    arbitration: bool = True
    early_termination: bool = False
    name: str = ""
    labels: Mapping[str, Any] = field(default_factory=dict)
    #: Optional result extractor (``{"kind": ..., "params": {...}}``, see
    #: :mod:`repro.api.extractors`): derives a domain row from the
    #: finished run (locality cost point, overlay repair verdict) and may
    #: supply the run's decision policy.  ``None`` — the default — is not
    #: serialized, so pre-extractor documents and digests are unchanged.
    extract: Optional[Mapping[str, Any]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "labels", freeze(self.labels))
        if self.extract is not None:
            extract = _require_mapping(self.extract, "ExperimentSpec.extract")
            _check_keys(extract, _KIND_PARAMS_KEYS, "ExperimentSpec.extract")
            if not extract.get("kind"):
                raise SpecError("ExperimentSpec.extract needs a non-empty 'kind'")
            object.__setattr__(self, "extract", freeze(extract))

    def to_dict(self) -> dict[str, Any]:
        data = {
            "spec": "experiment",
            "version": SPEC_VERSION,
            "name": self.name,
            "topology": self.topology.to_dict(),
            "failure": self.failure.to_dict(),
            "membership": self.membership.to_dict(),
            "runtime": self.runtime.to_dict(),
            "seed": self.seed,
            "check": self.check,
            "arbitration": self.arbitration,
            "early_termination": self.early_termination,
            "labels": thaw(self.labels),
        }
        if self.extract is not None:
            # Omitted when absent so pre-extractor spec documents (and
            # their digests) stay byte-identical.
            data["extract"] = thaw(self.extract)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        data = _require_mapping(data, "ExperimentSpec")
        _check_tag(data, "experiment")
        _check_keys(
            data,
            frozenset(
                {"spec", "version", "name", "topology", "failure", "membership",
                 "runtime", "seed", "check", "arbitration", "early_termination",
                 "labels", "extract"}
            ),
            "ExperimentSpec",
        )
        try:
            topology = TopologySpec.from_dict(data["topology"])
        except KeyError:
            raise SpecError("ExperimentSpec needs a 'topology'") from None
        return cls(
            topology=topology,
            failure=FailureSpec.from_dict(data.get("failure", {})),
            membership=MembershipSpec.from_dict(data.get("membership", {})),
            runtime=RuntimeSpec.from_dict(data.get("runtime", {})),
            seed=data.get("seed", 0),
            check=data.get("check", True),
            arbitration=data.get("arbitration", True),
            early_termination=data.get("early_termination", False),
            name=data.get("name", ""),
            labels=data.get("labels", {}),
            extract=data.get("extract"),
        )

    def with_seed(self, seed: int) -> "ExperimentSpec":
        """The same experiment at a different seed."""
        return dataclasses.replace(self, seed=seed)

    def with_engine(self, engine: str) -> "ExperimentSpec":
        """The same experiment on a different runtime engine."""
        return dataclasses.replace(
            self, runtime=dataclasses.replace(self.runtime, engine=engine)
        )

    def with_partitions(self, partitions: int) -> "ExperimentSpec":
        """The same experiment on ``partitions`` simulator shards."""
        return dataclasses.replace(
            self, runtime=dataclasses.replace(self.runtime, partitions=partitions)
        )

    def with_faults(self, faults: Optional[Mapping[str, Any]]) -> "ExperimentSpec":
        """The same experiment with link faults injected (``None`` clears).

        ``faults`` is the flat knob mapping of
        :attr:`RuntimeSpec.faults` — e.g. ``{"loss": 0.05}`` or
        ``{"duplication": 0.1, "copies": 3, "reorder": 0.5}``.
        """
        return dataclasses.replace(
            self, runtime=dataclasses.replace(self.runtime, faults=faults)
        )

    def with_collection(self, collection: str) -> "ExperimentSpec":
        """The same experiment with a different trace collection mode.

        ``"digest"`` implies no CD1–CD7 checking (the checkers walk the
        full trace), so the returned spec also sets ``check=False``.
        """
        return dataclasses.replace(
            self,
            check=self.check and collection != "digest",
            runtime=dataclasses.replace(self.runtime, collection=collection),
        )

    def display_name(self) -> str:
        return self.name or f"{self.topology.kind}/{self.failure.kind}"


# ---------------------------------------------------------------------------
# SweepSpec
# ---------------------------------------------------------------------------
def _override(data: dict[str, Any], path: str, value: Any) -> None:
    """Set a dotted-path field inside a nested spec dict (in place)."""
    keys = path.split(".")
    target = data
    for key in keys[:-1]:
        nxt = target.get(key)
        if not isinstance(nxt, dict):
            nxt = {}
            target[key] = nxt
        target = nxt
    target[keys[-1]] = thaw(value)


@dataclass(frozen=True)
class SweepSpec(_SpecBase):
    """A declarative sweep: spec × seeds × grid expansion.

    Two modes:

    * **experiment mode** — ``experiment`` is a template
      :class:`ExperimentSpec`; the sweep is its cross product with
      ``seeds`` and ``grid`` (a mapping of dotted field paths to value
      lists, e.g. ``{"topology.params.width": [8, 16]}``).  A ``|``
      inside a path couples several fields into *one* axis that moves in
      lockstep — ``{"topology.params.width|topology.params.height":
      [8, 16]}`` sweeps square tori, not a width × height product.
      Tasks cross process boundaries as *specs* (picklable-by-spec),
      not as registered family names.
    * **family mode** — ``family`` names a registered scenario family
      (:mod:`repro.scale.families`) and the sweep is one task per
      (grid point × seed).  Here the dotted grid paths index into
      ``family_params`` (``{"nodes": [36, 64]}``, or ``"scenario_params.
      join_rate"`` for nested builders), with the same ``|`` coupling as
      experiment mode.  This is the spec form of the seed-randomised
      EXP-C1 generators: the scenario still derives from the seed, but
      the generator's knobs grid-expand from the document instead of
      requiring a hand-written driver script.
    """

    experiment: Optional[ExperimentSpec] = None
    family: str = ""
    family_params: Mapping[str, Any] = field(default_factory=dict)
    seeds: tuple[int, ...] = ()
    grid: Mapping[str, tuple] = field(default_factory=dict)
    workers: int = 1
    base_seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        if (self.experiment is None) == (not self.family):
            raise SpecError("SweepSpec needs exactly one of 'experiment' or 'family'")
        object.__setattr__(self, "seeds", tuple(int(seed) for seed in self.seeds))
        object.__setattr__(self, "family_params", freeze(self.family_params))
        object.__setattr__(self, "grid", freeze(self.grid))
        if self.family and "seed" in self.grid:
            raise SpecError(
                "family-mode grids expand family_params; sweep seeds with "
                "the 'seeds' list, not a 'seed' grid axis"
            )
        if "seed" in self.grid and self.seeds:
            raise SpecError(
                "ambiguous seed sweep: use either the 'seeds' list or a "
                "'seed' grid axis, not both"
            )
        for path, values in self.grid.items():
            # A scalar here is a typo'd axis — and a string would
            # "expand" per character; both must fail loudly.
            if not isinstance(values, tuple) or not values:
                raise SpecError(
                    f"grid axis {path!r} needs a non-empty list of values, "
                    f"got {values!r}"
                )

    def to_dict(self) -> dict[str, Any]:
        return {
            "spec": "sweep",
            "version": SPEC_VERSION,
            "name": self.name,
            "experiment": self.experiment.to_dict() if self.experiment else None,
            "family": self.family,
            "family_params": thaw(self.family_params),
            "seeds": list(self.seeds),
            "grid": thaw(self.grid),
            "workers": self.workers,
            "base_seed": self.base_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        data = _require_mapping(data, "SweepSpec")
        _check_tag(data, "sweep")
        _check_keys(
            data,
            frozenset(
                {"spec", "version", "name", "experiment", "family",
                 "family_params", "seeds", "grid", "workers", "base_seed"}
            ),
            "SweepSpec",
        )
        experiment = data.get("experiment")
        return cls(
            experiment=(
                ExperimentSpec.from_dict(experiment) if experiment is not None else None
            ),
            family=data.get("family", ""),
            family_params=data.get("family_params", {}),
            seeds=tuple(data.get("seeds", ())),
            grid=data.get("grid", {}),
            workers=data.get("workers", 1),
            base_seed=data.get("base_seed", 0),
            name=data.get("name", ""),
        )

    def expand(self) -> list[ExperimentSpec]:
        """Concrete experiment specs, in deterministic sweep order.

        Grid axes expand in sorted-path order (outermost first), seeds
        innermost.  Family-mode sweeps do not expand to experiment specs.
        """
        if self.experiment is None:
            raise SpecError("family-mode sweeps do not expand to experiment specs")
        points: list[dict[str, Any]] = [self.experiment.to_dict()]
        for path in sorted(self.grid):
            values = self.grid[path]
            # "a|b" couples several dotted paths into one lockstep axis:
            # every coupled field receives the same value per point.
            coupled = path.split("|")
            next_points = []
            for point in points:
                for value in values:
                    copy = json.loads(json.dumps(point))
                    for sub_path in coupled:
                        _override(copy, sub_path, value)
                    next_points.append(copy)
            points = next_points
        if "seed" in self.grid:
            # The grid axis owns the seed; overriding it with the
            # template's seed would collapse the axis into N clones.
            return [ExperimentSpec.from_dict(point) for point in points]
        seeds = self.seeds or (self.experiment.seed,)
        expanded = []
        for point in points:
            for seed in seeds:
                spec = ExperimentSpec.from_dict(point).with_seed(seed)
                expanded.append(spec)
        return expanded

    def expand_family_params(self) -> list[tuple[dict[str, Any], str]]:
        """Family-mode grid points as ``(params, label)`` pairs.

        Grid axes are dotted paths inside ``family_params``, expanded in
        sorted-path order with the same ``|`` coupling as experiment
        mode.  The label strings the axis assignments by their leaf
        field (``"nodes=64,rate=0.2"``) so sweep rows from different
        grid points stay tellable-apart; with no grid the single label
        is empty (the task then displays as the bare family name).
        """
        if self.experiment is not None:
            raise SpecError(
                "experiment-mode sweeps expand to specs; see expand()"
            )
        points: list[tuple[dict[str, Any], list[str]]] = [
            (thaw(self.family_params), [])
        ]
        for path in sorted(self.grid):
            values = self.grid[path]
            coupled = path.split("|")
            leaf = coupled[0].split(".")[-1]
            next_points = []
            for params, parts in points:
                for value in values:
                    copy = json.loads(json.dumps(params))
                    for sub_path in coupled:
                        _override(copy, sub_path, value)
                    next_points.append((copy, parts + [f"{leaf}={thaw(value)}"]))
            points = next_points
        return [(params, ",".join(parts)) for params, parts in points]

    def __len__(self) -> int:
        size = 1
        for values in self.grid.values():
            size *= len(values)
        if self.experiment is None:
            return size * len(self.seeds)
        return size * max(len(self.seeds), 1)

    def tasks(self) -> list:
        """The sweep as picklable :class:`~repro.scale.SweepTask` records.

        Experiment mode produces ``"spec"``-family tasks whose params
        *are* the serialized spec (picklable-by-spec); family mode
        produces one family task per (grid point × seed), grid
        outermost, seeds innermost.
        """
        from ..scale import SweepTask

        if self.experiment is not None:
            return [
                SweepTask(
                    "spec",
                    params={"spec": spec.to_dict()},
                    seed=spec.seed,
                    label=spec.display_name(),
                )
                for spec in self.expand()
            ]
        return [
            SweepTask(
                self.family,
                params=json.loads(json.dumps(params)),
                seed=seed,
                label=f"{self.family}[{label}]" if label else "",
            )
            for params, label in self.expand_family_params()
            for seed in self.seeds
        ]

    def run(self):
        """Execute the sweep (see :meth:`ExperimentSession.run_sweep`)."""
        from .session import ExperimentSession

        return ExperimentSession().run_sweep(self)


def load_spec(text: str):
    """Parse a JSON document into an :class:`ExperimentSpec` or
    :class:`SweepSpec`, dispatching on its ``"spec"`` tag."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecError(f"invalid spec JSON: {exc}") from exc
    data = _require_mapping(data, "spec document")
    tag = data.get("spec")
    if tag == "experiment":
        return ExperimentSpec.from_dict(data)
    if tag == "sweep":
        return SweepSpec.from_dict(data)
    raise SpecError(f"spec document needs \"spec\": \"experiment\"|\"sweep\", got {tag!r}")


def iter_specs(specs: SweepSpec) -> Iterator[ExperimentSpec]:
    """Convenience iterator over a sweep's concrete experiment specs."""
    yield from specs.expand()
