"""Asyncio runtime.

The discrete-event simulator is the reference substrate (deterministic,
fast, exhaustively checkable).  This module runs the *same*
:class:`~repro.sim.process.Process` classes on top of ``asyncio`` with one
task and one FIFO inbox per node, providing real concurrency: messages are
delivered in send order per channel but interleaving across nodes is up to
the event loop, exactly like the paper's asynchronous model.

It exists for two reasons:

* a credibility check — the protocol logic is runtime-agnostic and the
  integration tests verify that asyncio runs reach the same decisions as
  simulator runs on the same scenarios;
* a stepping stone for anyone who wants to port the protocol onto a real
  transport: replace the queue plumbing with sockets and keep the
  processes untouched.
"""

from __future__ import annotations

import asyncio
import random
from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Any, Optional

from ..core.properties import Decision, extract_decisions
from ..failures import CrashSchedule
from ..graph import KnowledgeGraph, NodeId
from ..sim.events import EventKind
from ..sim.failure_detector import FailureDetectorPolicy
from ..sim.faults import FaultModel
from ..sim.process import MembershipChange, Process, resolve_attachment
from ..trace import RunMetrics, TraceRecorder, collect_metrics


class RuntimeError_(RuntimeError):
    """Raised on asyncio-runtime misuse."""


@dataclass
class AsyncRunResult:
    """Outcome of one asyncio run (mirrors the simulator's RunResult)."""

    graph: KnowledgeGraph
    schedule: CrashSchedule
    trace: TraceRecorder
    metrics: RunMetrics
    decisions: list[Decision]
    #: True when the run reached quiescence before the timeout.
    quiescent: bool

    @property
    def decided_views(self):
        return frozenset(decision.view for decision in self.decisions)

    @property
    def deciding_nodes(self):
        return frozenset(decision.node for decision in self.decisions)


class _Inbox:
    """One node's FIFO inbox."""

    def __init__(self) -> None:
        self.queue: asyncio.Queue = asyncio.Queue()


class _AsyncContext:
    """ProcessContext implementation backed by the asyncio runtime."""

    __slots__ = ("_runtime", "node_id")

    def __init__(self, runtime: "AsyncRuntime", node_id: NodeId) -> None:
        self._runtime = runtime
        self.node_id = node_id

    @property
    def graph(self) -> KnowledgeGraph:
        return self._runtime.graph

    def now(self) -> float:
        return self._runtime.now()

    def send(self, target: NodeId, message: Any) -> None:
        self._runtime._send(self.node_id, target, message)

    def multicast(self, targets: Iterable[NodeId], message: Any) -> None:
        for target in targets:
            self._runtime._send(self.node_id, target, message)

    def monitor_crash(self, targets: Iterable[NodeId]) -> None:
        self._runtime._monitor(self.node_id, targets)

    def set_timer(self, delay: float, tag: Any = None) -> None:
        self._runtime._set_timer(self.node_id, delay, tag)

    def record(
        self,
        kind: EventKind,
        payload: Any = None,
        peer: NodeId | None = None,
        **detail: Any,
    ) -> None:
        self._runtime.trace.emit(
            self._runtime.now(), kind, node=self.node_id, peer=peer, payload=payload, **detail
        )


class AsyncRuntime:
    """Runs processes over asyncio tasks and queues.

    Parameters
    ----------
    graph:
        The knowledge graph shared by all nodes.
    detection_delay:
        Real-time delay (seconds) between a crash and its notifications —
        the perfect failure detector's latency.
    time_scale:
        Multiplier applied to the *simulated* times of a
        :class:`CrashSchedule` to turn them into real seconds.  The default
        compresses a typical scenario into well under a second.
    failure_detector:
        Optional :class:`~repro.sim.failure_detector.FailureDetectorPolicy`
        deciding per-(subscriber, crashed) notification delays in
        *simulated* time units (scaled by ``time_scale``, like the crash
        schedule itself).  ``None`` keeps the flat ``detection_delay``.
        This is the same policy object the simulator takes, so scripted
        scenarios run identically on both substrates.
    faults:
        Optional :class:`~repro.sim.faults.FaultModel`.  The same model
        object the simulator takes: decisions are keyed by the run seed
        and each message's per-channel send index, so on the virtual-time
        loop the fault pattern is identical to the simulator's.  Reorder
        offsets are simulated-time units (scaled by ``time_scale``).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        detection_delay: float = 0.01,
        time_scale: float = 0.01,
        seed: int = 0,
        failure_detector: Optional[FailureDetectorPolicy] = None,
        faults: Optional[FaultModel] = None,
    ) -> None:
        self.graph = graph
        self.detection_delay = detection_delay
        self.failure_detector = failure_detector
        self.faults = faults
        self.time_scale = time_scale
        self.trace = TraceRecorder()
        self._processes: dict[NodeId, Process] = {}
        self._contexts: dict[NodeId, _AsyncContext] = {}
        self._inboxes: dict[NodeId, _Inbox] = {}
        self._tasks: dict[NodeId, asyncio.Task] = {}
        self._crashed: set[NodeId] = set()
        self._subscriptions: dict[NodeId, set[NodeId]] = {}
        self._notified: set[tuple[NodeId, NodeId]] = set()
        self._pending_callbacks = 0
        self._activity = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._start_time = 0.0
        # --- dynamic-membership state (mirrors the simulator) -------------
        self._base_graph = graph
        self._rng = random.Random(seed)
        #: Dedicated stream for detector-policy jitter, so attachment
        #: resolution and detection delays never perturb each other.
        self._detector_rng = random.Random(seed)
        # Fault decisions never touch self._rng either: they come from
        # per-message keyed RNGs (repro.sim.faults.message_rng), and the
        # per-channel send counters below supply the message-identity
        # half of the key — exactly as in the simulator, so the fault
        # pattern agrees across substrates.
        self._fault_seed = seed
        self._fault_seq: dict[tuple[NodeId, NodeId], int] = {}
        self._incarnation: dict[NodeId, int] = {}
        self._departed: set[NodeId] = set()
        self._epoch = 0
        self._process_factory: Optional[Callable[[NodeId], Process]] = None

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------
    def add_process(self, node_id: NodeId, process: Process) -> None:
        if node_id not in self.graph:
            raise RuntimeError_(f"node {node_id!r} is not in the graph")
        self._processes[node_id] = process
        self._contexts[node_id] = _AsyncContext(self, node_id)

    def populate(self, factory: Callable[[NodeId], Process]) -> None:
        self._process_factory = factory
        for node in self.graph.nodes:
            if node not in self._processes:
                self.add_process(node, factory(node))

    def process(self, node_id: NodeId) -> Process:
        return self._processes[node_id]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def now(self) -> float:
        if self._loop is None:
            return 0.0
        return self._loop.time() - self._start_time

    async def run(
        self,
        schedule: CrashSchedule,
        timeout: float = 30.0,
        settle_time: float = 0.05,
        membership: Any = None,
    ) -> AsyncRunResult:
        """Execute the scenario and wait for quiescence (or ``timeout``).

        ``membership`` is an optional
        :class:`~repro.churn.membership.MembershipSchedule`; its timed
        join/recover/leave events are interleaved with the crash schedule
        on the same scaled clock, exactly as the simulator does.
        """
        if membership is None:
            schedule.validate(self.graph)
        else:
            membership.validate(self.graph, schedule)
        missing = self.graph.nodes - self._processes.keys()
        if missing:
            raise RuntimeError_(
                f"{len(missing)} graph nodes have no process installed"
            )
        self._loop = asyncio.get_running_loop()
        self._start_time = self._loop.time()

        for node in sorted(self._processes, key=repr):
            self._inboxes[node] = _Inbox()
        for node in sorted(self._processes, key=repr):
            self._tasks[node] = asyncio.create_task(self._node_loop(node))
        for node in sorted(self._processes, key=repr):
            self.trace.emit(self.now(), EventKind.NODE_STARTED, node=node)
            self._processes[node].on_start(self._contexts[node])

        crash_task = asyncio.create_task(self._apply_schedule(schedule, membership))
        quiescent = await self._wait_for_quiescence(crash_task, timeout, settle_time)

        schedule_error = (
            crash_task.exception()
            if crash_task.done() and not crash_task.cancelled()
            else None
        )
        crash_task.cancel()
        for task in self._tasks.values():
            task.cancel()
        await asyncio.gather(*self._tasks.values(), crash_task, return_exceptions=True)
        if schedule_error is not None:
            # A crash/membership event failed to apply (bad attachment,
            # impossible recovery, ...).  Swallowing it would report a
            # quiescent-looking run that silently truncated the scenario;
            # surface it like the simulator does.
            raise schedule_error

        metrics = collect_metrics(self.trace)
        return AsyncRunResult(
            graph=self.graph,
            schedule=schedule,
            trace=self.trace,
            metrics=metrics,
            decisions=extract_decisions(self.trace),
            quiescent=quiescent,
        )

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    async def _node_loop(self, node: NodeId) -> None:
        inbox = self._inboxes[node]
        context = self._contexts[node]
        process = self._processes[node]
        while True:
            kind, payload = await inbox.queue.get()
            self._activity += 1
            if node in self._crashed or node in self._departed:
                continue
            if kind == "message":
                sender, message = payload
                self.trace.emit(
                    self.now(),
                    EventKind.MESSAGE_DELIVERED,
                    node=node,
                    peer=sender,
                    payload=message,
                )
                process.on_message(context, sender, message)
            elif kind == "crash":
                self.trace.emit(
                    self.now(), EventKind.CRASH_NOTIFIED, node=node, peer=payload
                )
                process.on_crash(context, payload)
            elif kind == "timer":
                process.on_timer(context, payload)
            elif kind == "membership":
                self.trace.emit(
                    self.now(),
                    EventKind.MEMBERSHIP_NOTIFIED,
                    node=node,
                    peer=payload.node,
                    payload=payload.kind,
                )
                process.on_membership(context, payload)

    async def _apply_schedule(
        self, schedule: CrashSchedule, membership: Any = None
    ) -> None:
        # Crashes and membership events share one scaled timeline.  The
        # ordering (including same-timestamp ties) comes from the single
        # canonical MembershipSchedule.timeline(), the same ordering
        # validate() checks and the simulator schedules — so the two
        # runtimes stay in lockstep on ties.
        if membership is not None:
            timeline = membership.timeline(schedule)
        else:
            timeline = sorted(
                ((time, 0, "crash", node, None) for node, time in schedule.crashes),
                key=lambda item: (item[0], item[1], repr(item[3])),
            )
        previous = 0.0
        for time, _, kind, node, event in timeline:
            await asyncio.sleep(max(0.0, (time - previous) * self.time_scale))
            previous = time
            if kind == "crash":
                self._crash(node)
            elif kind == "join":
                self._join(node, event.attachment)
            elif kind == "recover":
                self._recover(node, event.attachment)
            elif kind == "leave":
                self._leave(node)

    def _crash(self, node: NodeId) -> None:
        if node in self._crashed or node in self._departed:
            return
        self._crashed.add(node)
        self.trace.emit(self.now(), EventKind.NODE_CRASHED, node=node)
        for subscriber in sorted(self._subscriptions.get(node, ()), key=repr):
            self._schedule_notification(subscriber, node)

    def _send(self, source: NodeId, target: NodeId, message: Any) -> None:
        if source in self._crashed or source in self._departed:
            return
        if target not in self._inboxes:
            raise RuntimeError_(f"message addressed to unknown node {target!r}")
        self.trace.emit(
            self.now(), EventKind.MESSAGE_SENT, node=source, peer=target, payload=message
        )
        # Fault layer first: in the simulator the fault decision happens
        # at the send site (a lost message never reaches the delivery
        # drop-check), and the per-channel counter advances for *every*
        # send, so the decision stream lines up across substrates.
        offsets: tuple[float, ...] = (0.0,)
        faults = self.faults
        if faults is not None:
            channel = (source, target)
            sequence = self._fault_seq.get(channel, 0)
            self._fault_seq[channel] = sequence + 1
            offsets = faults.deliveries(source, target, sequence, self._fault_seed)
            if not offsets:
                self.trace.emit(
                    self.now(),
                    EventKind.MESSAGE_LOST,
                    node=source,
                    peer=target,
                    payload=message,
                )
                return
        if target in self._crashed or target in self._departed:
            self.trace.emit(
                self.now(),
                EventKind.MESSAGE_DROPPED,
                node=target,
                peer=source,
                payload=message,
            )
            return
        if len(offsets) > 1:
            self.trace.emit(
                self.now(),
                EventKind.MESSAGE_DUPLICATED,
                node=source,
                peer=target,
                payload=message,
                copies=len(offsets),
            )
        inbox = self._inboxes[target]
        for offset in offsets:
            if offset <= 0.0:
                inbox.queue.put_nowait(("message", (source, message)))
            else:
                # Reorder delay: offset is in simulated-time units, like
                # the crash schedule, so scale it to loop seconds.
                self._enqueue_later(offset * self.time_scale, source, target, message)

    def _enqueue_later(
        self, delay: float, source: NodeId, target: NodeId, message: Any
    ) -> None:
        """Deliver one fault-delayed copy after ``delay`` loop seconds."""
        self._pending_callbacks += 1
        incarnation = self._inc(target)

        def deliver() -> None:
            self._pending_callbacks -= 1
            if target in self._crashed or target in self._departed:
                self.trace.emit(
                    self.now(),
                    EventKind.MESSAGE_DROPPED,
                    node=target,
                    peer=source,
                    payload=message,
                )
                return
            if self._inc(target) != incarnation or target not in self._inboxes:
                return
            self._inboxes[target].queue.put_nowait(("message", (source, message)))

        assert self._loop is not None
        self._loop.call_later(delay, deliver)

    def _monitor(self, subscriber: NodeId, targets: Iterable[NodeId]) -> None:
        target_list = list(targets)
        if not target_list:
            return
        self.trace.emit(
            self.now(),
            EventKind.CRASH_MONITORED,
            node=subscriber,
            payload=tuple(sorted(map(repr, target_list))),
        )
        for target in target_list:
            self._subscriptions.setdefault(target, set()).add(subscriber)
            if target in self._crashed or target in self._departed:
                self._schedule_notification(subscriber, target)

    def _inc(self, node: NodeId) -> int:
        return self._incarnation.get(node, 0)

    def _schedule_notification(self, subscriber: NodeId, crashed: NodeId) -> None:
        key = (subscriber, crashed)
        if key in self._notified:
            return
        self._notified.add(key)
        self._pending_callbacks += 1
        subscriber_incarnation = self._inc(subscriber)

        def deliver() -> None:
            self._pending_callbacks -= 1
            if subscriber in self._crashed or subscriber in self._departed:
                return
            if self._inc(subscriber) != subscriber_incarnation:
                return
            if crashed not in self._crashed and crashed not in self._departed:
                # Recovered before the notification fired.
                return
            self._inboxes[subscriber].queue.put_nowait(("crash", crashed))

        assert self._loop is not None
        if self.failure_detector is not None:
            delay = (
                self.failure_detector.delay(subscriber, crashed, self._detector_rng)
                * self.time_scale
            )
        else:
            delay = self.detection_delay
        self._loop.call_later(delay, deliver)

    def _set_timer(self, node: NodeId, delay: float, tag: Any) -> None:
        self._pending_callbacks += 1
        incarnation = self._inc(node)

        def fire() -> None:
            self._pending_callbacks -= 1
            if node in self._crashed or node in self._departed:
                return
            if self._inc(node) != incarnation:
                return
            self._inboxes[node].queue.put_nowait(("timer", tag))

        assert self._loop is not None
        self._loop.call_later(delay * self.time_scale, fire)

    # ------------------------------------------------------------------
    # Membership mechanics (churn) — mirrors Simulator
    # ------------------------------------------------------------------
    def _resolve_attachment(self, node: NodeId, attachment: Any) -> frozenset[NodeId]:
        return resolve_attachment(
            node,
            attachment,
            current=self.graph,
            base=self._base_graph,
            crashed=frozenset(self._crashed | self._departed),
            rng=self._rng,
            error_cls=RuntimeError_,
        )

    def _spawn_node(self, node: NodeId) -> Process:
        if self._process_factory is None:
            raise RuntimeError_(
                "no process factory installed; call populate() before "
                "running membership events"
            )
        old_task = self._tasks.get(node)
        if old_task is not None:
            old_task.cancel()
        process = self._process_factory(node)
        seed_incarnation = getattr(process, "set_incarnation", None)
        if callable(seed_incarnation):
            # Same contract as the simulator: a reincarnated process
            # mints instance generations above its previous life's.
            seed_incarnation(self._inc(node))
        self._processes[node] = process
        self._contexts[node] = _AsyncContext(self, node)
        self._inboxes[node] = _Inbox()
        self._tasks[node] = asyncio.create_task(self._node_loop(node))
        return process

    def _join(self, node: NodeId, attachment: Any) -> None:
        if node in self.graph:
            raise RuntimeError_(f"joining node {node!r} is already in the graph")
        neighbours = self._resolve_attachment(node, attachment)
        if not neighbours:
            raise RuntimeError_(f"joining node {node!r} attaches to nothing")
        self.graph = self.graph.with_node(node, neighbours)
        self._epoch += 1
        self._incarnation[node] = self._inc(node) + 1
        self.trace.emit(
            self.now(),
            EventKind.NODE_JOINED,
            node=node,
            payload=tuple(sorted(neighbours, key=repr)),
            epoch=self._epoch,
        )
        process = self._spawn_node(node)
        self.trace.emit(self.now(), EventKind.NODE_STARTED, node=node)
        process.on_start(self._contexts[node])
        self._announce(MembershipChange("join", node, neighbours, incarnation=self._inc(node)))

    def _recover(self, node: NodeId, attachment: Any) -> None:
        if node not in self.graph:
            raise RuntimeError_(f"cannot recover unknown node {node!r}")
        if node not in self._crashed:
            raise RuntimeError_(f"cannot recover live node {node!r}")
        neighbours = self._resolve_attachment(node, attachment)
        if not neighbours:
            raise RuntimeError_(f"recovering node {node!r} attaches to nothing")
        if neighbours != self.graph.neighbours(node):
            self.graph = self.graph.without([node]).with_node(node, neighbours)
        self._crashed.discard(node)
        self._epoch += 1
        self._incarnation[node] = self._inc(node) + 1
        self._notified = {
            (subscriber, crashed)
            for subscriber, crashed in self._notified
            if crashed != node and subscriber != node
        }
        old_watchers = frozenset(self._subscriptions.pop(node, set()))
        for subscribers in self._subscriptions.values():
            subscribers.discard(node)
        self.trace.emit(
            self.now(),
            EventKind.NODE_RECOVERED,
            node=node,
            payload=tuple(sorted(neighbours, key=repr)),
            epoch=self._epoch,
        )
        process = self._spawn_node(node)
        self.trace.emit(self.now(), EventKind.NODE_STARTED, node=node)
        process.on_start(self._contexts[node])
        self._announce(
            MembershipChange("recover", node, neighbours, incarnation=self._inc(node)),
            extra=old_watchers,
        )

    def _leave(self, node: NodeId) -> None:
        # Announced fail-stop: same semantics as the simulator's _leave.
        if node not in self.graph:
            raise RuntimeError_(f"cannot remove unknown node {node!r}")
        if node in self._crashed or node in self._departed:
            return
        self._departed.add(node)
        self.trace.emit(self.now(), EventKind.NODE_LEFT, node=node)
        for subscriber in sorted(self._subscriptions.get(node, ()), key=repr):
            if subscriber not in self._crashed and subscriber not in self._departed:
                self._schedule_notification(subscriber, node)

    def _announce(
        self, change: MembershipChange, extra: frozenset[NodeId] = frozenset()
    ) -> None:
        targets = set(self._subscriptions.get(change.node, set())) | set(extra)
        if change.node in self.graph:
            targets |= self.graph.neighbours(change.node)
        for target in sorted(targets, key=repr):
            if (
                target == change.node
                or target in self._crashed
                or target in self._departed
            ):
                continue
            self._pending_callbacks += 1
            incarnation = self._inc(target)

            def deliver(t: NodeId = target, i: int = incarnation) -> None:
                self._pending_callbacks -= 1
                if t in self._crashed or t in self._departed:
                    return
                if self._inc(t) != i or t not in self._inboxes:
                    return
                self._inboxes[t].queue.put_nowait(("membership", change))

            assert self._loop is not None
            self._loop.call_later(self.detection_delay, deliver)

    async def _wait_for_quiescence(
        self, crash_task: asyncio.Task, timeout: float, settle_time: float
    ) -> bool:
        assert self._loop is not None
        deadline = self._loop.time() + timeout
        last_activity = -1
        while self._loop.time() < deadline:
            await asyncio.sleep(settle_time)
            inboxes_empty = all(inbox.queue.empty() for inbox in self._inboxes.values())
            idle = (
                crash_task.done()
                and inboxes_empty
                and self._pending_callbacks == 0
                and self._activity == last_activity
            )
            if idle:
                return True
            last_activity = self._activity
        return False


async def run_cliff_edge_async(
    graph: KnowledgeGraph,
    schedule: CrashSchedule,
    node_factory: Callable[[NodeId], Process],
    detection_delay: float = 0.01,
    time_scale: float = 0.01,
    timeout: float = 30.0,
    membership: Any = None,
    seed: int = 0,
    failure_detector: Optional[FailureDetectorPolicy] = None,
    faults: Optional[FaultModel] = None,
) -> AsyncRunResult:
    """Convenience wrapper: populate, run, and collect results."""
    runtime = AsyncRuntime(
        graph,
        detection_delay=detection_delay,
        time_scale=time_scale,
        seed=seed,
        failure_detector=failure_detector,
        faults=faults,
    )
    runtime.populate(node_factory)
    return await runtime.run(schedule, timeout=timeout, membership=membership)


def run_cliff_edge_asyncio(
    graph: KnowledgeGraph,
    schedule: CrashSchedule,
    node_factory: Callable[[NodeId], Process],
    detection_delay: float = 0.01,
    time_scale: float = 0.01,
    timeout: float = 30.0,
    membership: Any = None,
    seed: int = 0,
    failure_detector: Optional[FailureDetectorPolicy] = None,
    faults: Optional[FaultModel] = None,
) -> AsyncRunResult:
    """Synchronous entry point (creates and drives its own event loop)."""
    return asyncio.run(
        run_cliff_edge_async(
            graph,
            schedule,
            node_factory,
            detection_delay=detection_delay,
            time_scale=time_scale,
            timeout=timeout,
            membership=membership,
            seed=seed,
            failure_detector=failure_detector,
            faults=faults,
        )
    )
