"""Asyncio runtime for running the same protocol processes concurrently."""

from .async_runtime import (
    AsyncRunResult,
    AsyncRuntime,
    run_cliff_edge_async,
    run_cliff_edge_asyncio,
)

__all__ = [
    "AsyncRuntime",
    "AsyncRunResult",
    "run_cliff_edge_async",
    "run_cliff_edge_asyncio",
]
