"""repro — a reproduction of *Cliff-Edge Consensus: Agreeing on the Precipice*.

The package implements the paper's convergent detection of crashed regions
(cliff-edge consensus) together with everything needed to run and evaluate
it: a knowledge-graph substrate, a deterministic discrete-event simulator
with a perfect failure detector, an asyncio runtime, baselines, an
overlay-repair application, and an experiment harness.

Quick start
-----------
>>> from repro import generators, region_crash, run_cliff_edge
>>> graph = generators.grid(6, 6)
>>> crashed = [(2, 2), (2, 3), (3, 2), (3, 3)]
>>> result = run_cliff_edge(graph, region_crash(graph, crashed), check=True)
>>> result.specification.holds
True
>>> len(result.decided_views)
1
"""

from .api import (
    ExperimentSession,
    ExperimentSpec,
    FailureSpec,
    MembershipSpec,
    Result,
    RuntimeSpec,
    SweepSpec,
    TopologySpec,
    load_spec,
    run_spec,
)
from .churn import (
    ChurnRunResult,
    MembershipEvent,
    MembershipSchedule,
    check_churn_all,
    crash_recover_recrash,
    flash_crowd_joins,
    run_churn,
    run_churn_asyncio,
    steady_state_churn,
)
from .core import (
    CliffEdgeNode,
    CoordinatorElectionPolicy,
    DecisionPolicy,
    ProposedRepair,
    RoundMessage,
    assert_specification,
    check_all,
)
from .experiments.runner import RunResult, build_simulator, run_cliff_edge
from .failures import (
    CrashSchedule,
    cascade_crash,
    growing_region_crash,
    multi_region_crash,
    random_crashes,
    region_crash,
)
from .graph import (
    KnowledgeGraph,
    NodeId,
    Region,
    faulty_clusters,
    faulty_domains,
    generators,
)
from .sim import (
    ConstantLatency,
    JitteredFailureDetector,
    PerfectFailureDetector,
    ScriptedFailureDetector,
    Simulator,
    UniformLatency,
)
from .sim.partition import (
    PartitionedRunResult,
    PartitionError,
    partition_graph,
    run_partitioned,
)
from .trace import RunMetrics, TraceRecorder, collect_metrics


def _read_version() -> str:
    """The package version, sourced from ``pyproject.toml``.

    A source checkout (the common case: ``PYTHONPATH=src``) reads the
    project table directly, so bench JSON and ``repro --version`` report
    the working tree's version even without an install; an installed
    distribution falls back to its own metadata.
    """
    from pathlib import Path

    pyproject = Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        import tomllib

        with pyproject.open("rb") as handle:
            return tomllib.load(handle)["project"]["version"]
    except (OSError, KeyError, ImportError, ValueError):
        pass
    try:
        from importlib.metadata import version

        return version("repro-cliff-edge")
    except Exception:  # pragma: no cover - metadata missing entirely
        return "0.0.0+unknown"


__version__ = _read_version()

__all__ = [
    "__version__",
    # Core protocol
    "CliffEdgeNode",
    "RoundMessage",
    "DecisionPolicy",
    "CoordinatorElectionPolicy",
    "ProposedRepair",
    "check_all",
    "assert_specification",
    # Graph substrate
    "KnowledgeGraph",
    "NodeId",
    "Region",
    "faulty_domains",
    "faulty_clusters",
    "generators",
    # Failure injection
    "CrashSchedule",
    "region_crash",
    "growing_region_crash",
    "multi_region_crash",
    "random_crashes",
    "cascade_crash",
    # Churn (dynamic membership)
    "MembershipEvent",
    "MembershipSchedule",
    "ChurnRunResult",
    "run_churn",
    "run_churn_asyncio",
    "check_churn_all",
    "crash_recover_recrash",
    "steady_state_churn",
    "flash_crowd_joins",
    # Partitioned backend (intra-run parallelism)
    "run_partitioned",
    "partition_graph",
    "PartitionedRunResult",
    "PartitionError",
    # Simulation substrate
    "Simulator",
    "ConstantLatency",
    "UniformLatency",
    "PerfectFailureDetector",
    "JitteredFailureDetector",
    "ScriptedFailureDetector",
    # Traces and metrics
    "TraceRecorder",
    "RunMetrics",
    "collect_metrics",
    # Harness
    "run_cliff_edge",
    "build_simulator",
    "RunResult",
    # Declarative experiment API
    "ExperimentSpec",
    "TopologySpec",
    "FailureSpec",
    "MembershipSpec",
    "RuntimeSpec",
    "SweepSpec",
    "ExperimentSession",
    "Result",
    "run_spec",
    "load_spec",
]
