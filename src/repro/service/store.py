"""The digest-keyed durable result store.

One JSON file per completed submission, named by the store key
(``<spec-digest>x<seed>``, see :func:`repro.service.protocol.job_key`).
Each entry carries the spec document, the result envelope and a checksum
— the canonical digest of the entry's verifiable core — so a read
*proves* the bytes on disk still describe the result that was stored:

* a corrupted or truncated file fails JSON parsing or the checksum and
  is treated as absent (and reported, so the server can recompute);
* the result envelope is re-verified through the digest protocol
  (:func:`repro.service.protocol.verify_envelope`) on every read, not
  just on write.

Writes are atomic (temp file + ``os.replace``) so a crashed server never
leaves a half-written entry that later poisons the cache, and concurrent
writers of the *same* key converge on one intact entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional

from .protocol import SERVICE_VERSION, ServiceError, verify_envelope


def _entry_checksum(spec: Mapping[str, Any], envelope: Mapping[str, Any]) -> str:
    """Canonical checksum binding an entry's spec to its result."""
    from ..trace.digest import canonical_text

    core = {"spec": spec, "envelope": envelope}
    # freeze() normalises dict ordering so the checksum is independent of
    # how the JSON happened to be written down.
    from ..api.specs import freeze

    text = canonical_text(freeze(core))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """One verified result-store record."""

    key: str
    spec: Mapping[str, Any]
    envelope: Mapping[str, Any]
    stored_at: float

    @property
    def digest(self) -> str:
        return self.envelope["digest"]


class StoreCorruption(ServiceError):
    """A store entry failed checksum or digest verification."""


class ResultStore:
    """Durable ``key -> (spec, result envelope)`` mapping on disk.

    ``max_bytes`` (``None`` = unbounded) caps the total size of stored
    entries: every write runs a least-recently-*used* collector — reads
    refresh an entry's recency, so a hot cache line survives arbitrarily
    many writes — that drops the coldest entries until the store fits.
    Evictions are appended to an ``evictions.jsonl`` journal alongside
    the entries, so "why did my cached result recompute?" is always
    answerable from disk.  The entry just written is never evicted, even
    when it alone exceeds the budget.
    """

    def __init__(self, root: Path | str, max_bytes: Optional[int] = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if max_bytes is not None and max_bytes <= 0:
            raise ServiceError("store max_bytes must be positive (None = unbounded)")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        #: Entries dropped by the byte-budget collector since startup
        #: (the on-disk journal keeps the all-time record).
        self.evictions = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        if not key or "/" in key or key.startswith("."):
            raise ServiceError(f"malformed store key {key!r}")
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def keys(self) -> Iterator[str]:
        for path in sorted(self.root.glob("*.json")):
            yield path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def total_bytes(self) -> int:
        """Bytes of stored entries (the eviction journal is not counted)."""
        total = 0
        for path in self.root.glob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:  # pragma: no cover - concurrent eviction
                continue
        return total

    # ------------------------------------------------------------------
    def put(
        self,
        key: str,
        spec: Mapping[str, Any],
        envelope: Mapping[str, Any],
    ) -> StoreEntry:
        """Store (or overwrite) a verified result entry atomically."""
        verify_envelope(envelope)
        entry = {
            "version": SERVICE_VERSION,
            "key": key,
            "spec": spec,
            "envelope": envelope,
            "checksum": _entry_checksum(spec, envelope),
            "stored_at": time.time(),
        }
        path = self._path(key)
        text = json.dumps(entry, indent=2, sort_keys=True)
        with self._lock:
            fd, temp_name = tempfile.mkstemp(
                dir=self.root, prefix=f".{key[:16]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(text)
                os.replace(temp_name, path)
            except BaseException:
                try:
                    os.unlink(temp_name)
                except OSError:
                    pass
                raise
            self._enforce_budget(protect=key)
        return StoreEntry(
            key=key, spec=spec, envelope=envelope, stored_at=entry["stored_at"]
        )

    def get(self, key: str) -> Optional[StoreEntry]:
        """Fetch and digest-verify an entry.

        Returns ``None`` when the key is absent; raises
        :class:`StoreCorruption` when the entry exists but fails
        verification (callers treat that as a forced cache miss, evict
        the entry and recompute).
        """
        path = self._path(key)
        try:
            text = path.read_text()
        except FileNotFoundError:
            return None
        try:
            data = json.loads(text)
            spec = data["spec"]
            envelope = data["envelope"]
            checksum = data["checksum"]
            stored_at = data.get("stored_at", 0.0)
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise StoreCorruption(
                f"store entry {key} is unreadable ({exc!r})"
            ) from exc
        if _entry_checksum(spec, envelope) != checksum:
            raise StoreCorruption(
                f"store entry {key} failed its checksum (bytes on disk no "
                "longer match the stored result)"
            )
        try:
            verify_envelope(envelope)
        except ServiceError as exc:
            raise StoreCorruption(
                f"store entry {key} failed digest verification: {exc}"
            ) from exc
        try:
            # Refresh recency: the LRU collector orders by mtime, so a
            # read keeps a hot entry out of the eviction queue.
            os.utime(path)
        except OSError:  # pragma: no cover - concurrent eviction
            pass
        return StoreEntry(key=key, spec=spec, envelope=envelope, stored_at=stored_at)

    def evict(self, key: str) -> bool:
        """Drop an entry (corrupt or superseded); True when it existed."""
        try:
            self._path(key).unlink()
            return True
        except FileNotFoundError:
            return False

    # ------------------------------------------------------------------
    # Byte-budget collection
    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        """The append-only eviction journal (JSONL, one record per drop)."""
        return self.root / "evictions.jsonl"

    def _enforce_budget(self, protect: str) -> None:
        """Evict least-recently-used entries until the store fits.

        Runs under the store lock (called from :meth:`put`).  ``protect``
        names the entry that triggered collection; it is exempt so the
        store always holds at least the newest result.
        """
        if self.max_bytes is None:
            return
        entries = []
        total = 0
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            entries.append((stat.st_mtime_ns, path.name, path, stat.st_size))
            total += stat.st_size
        entries.sort()
        for _mtime, _name, path, size in entries:
            if total <= self.max_bytes:
                break
            if path.stem == protect:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - concurrent eviction
                continue
            total -= size
            self.evictions += 1
            record = {
                "op": "evict",
                "key": path.stem,
                "bytes": size,
                "reason": "store-byte-budget",
                "evicted_at": time.time(),
            }
            with self.journal_path.open("a") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
