"""Workers: the processes that actually run submitted specs.

A worker is a loop over a *broker* — anything with ``claim`` /
``progress`` / ``complete`` / ``fail``.  The server's in-process worker
threads use :class:`LocalBroker` (direct ledger + store calls); a worker
on another host uses :class:`~repro.service.client.ServiceClient`, which
implements the same four methods over HTTP.  The loop itself cannot tell
the difference, which is the multi-host story: N workers on M machines
pointing at one server is pure configuration.

Execution goes through the one funnel every run in the repository uses,
:class:`~repro.api.ExperimentSession` — so the inline, sharded-sweep and
partitioned backends are all reachable from a submitted document, and
the digests a worker reports are the digests a local run would produce.
"""

from __future__ import annotations

import threading
import traceback
from typing import Any, Callable, Mapping, Optional, Protocol

from ..api import ExperimentSession, SweepSpec
from .protocol import result_envelope, spec_from_document


def _execute_in_child(document: Mapping[str, Any]) -> dict[str, Any]:
    """Pool entry point: must be module-level so fork children can run it.

    No progress callback — the broker lives in the parent, and the
    completion report carries the final state.
    """
    return execute_document(document)


def execute_document(
    document: Mapping[str, Any],
    progress: Optional[Callable[[int, int], None]] = None,
) -> dict[str, Any]:
    """Run one submitted spec document and return its result envelope.

    ``progress`` receives ``(done, total)`` completed-task counts for
    sweeps; single experiments report ``(1, 1)`` on completion.
    """
    spec = spec_from_document(document)
    session = ExperimentSession()
    if isinstance(spec, SweepSpec):
        result = session.run_sweep(spec, progress=progress)
    else:
        result = session.run(spec)
        if progress is not None:
            progress(1, 1)
    return result_envelope(spec, result)


class Broker(Protocol):  # pragma: no cover - typing only
    """What a worker needs from whoever hands out jobs."""

    def claim(self, worker: str) -> Optional[tuple[Mapping[str, Any], Mapping[str, Any]]]:
        """Next ``(job document, spec document)`` pair, or ``None``."""
        ...

    def progress(self, job_id: str, done: int, total: int) -> None: ...

    def complete(self, job_id: str, envelope: Mapping[str, Any]) -> None: ...

    def fail(self, job_id: str, error: str) -> None: ...


class LocalBroker:
    """The in-process broker: direct calls into the ledger and store.

    ``complete`` is where a finished envelope becomes durable: it is
    digest-verified by :meth:`ResultStore.put` *before* the ledger marks
    the job done, so a crash between the two re-queues a job whose
    result is already stored — the next claim is a cheap cache hit, never
    a lost result.
    """

    def __init__(self, ledger, store) -> None:
        self.ledger = ledger
        self.store = store

    def claim(self, worker: str):
        claimed = self.ledger.claim(worker)
        if claimed is None:
            return None
        job, spec = claimed
        return job.to_dict(), spec

    def progress(self, job_id: str, done: int, total: int) -> None:
        self.ledger.report_progress(job_id, done, total)

    def complete(self, job_id: str, envelope: Mapping[str, Any]) -> None:
        job = self.ledger.get(job_id)
        if job is not None:
            spec = self.ledger.spec_of(job_id)
            if spec is not None:
                self.store.put(job.key, spec, envelope)
        self.ledger.complete(job_id, envelope["digest"])

    def fail(self, job_id: str, error: str) -> None:
        self.ledger.fail(job_id, error)


class WorkerLoop:
    """Claim → execute → report, until stopped or the queue runs dry.

    Parameters
    ----------
    broker:
        A :class:`LocalBroker` or an HTTP
        :class:`~repro.service.client.ServiceClient`.
    name:
        Reported as the job's ``worker`` field.
    poll_interval:
        Seconds to sleep between claims when the queue is empty.
    drain:
        When True the loop exits as soon as a claim comes back empty
        (the ``repro work --drain`` one-shot mode); otherwise it keeps
        polling until :meth:`stop`.
    processes:
        When > 0, :meth:`run` executes jobs in a pool of that many
        *processes* (the ``repro work --processes N`` mode) instead of
        inline: up to N jobs run concurrently, sidestepping the GIL for
        CPU-bound specs.  The pool forks where the platform allows, and
        every digest guarantee survives the boundary — run results are
        pure functions of their spec documents, independent of which
        process (or ``PYTHONHASHSEED``) computes them.
    """

    def __init__(
        self,
        broker: Broker,
        name: str = "worker",
        poll_interval: float = 0.2,
        drain: bool = False,
        processes: int = 0,
    ) -> None:
        self.broker = broker
        self.name = name
        self.poll_interval = poll_interval
        self.drain = drain
        self.processes = int(processes)
        if self.processes < 0:
            raise ValueError("processes must be >= 0 (0 = run jobs inline)")
        self._stop = threading.Event()
        #: Jobs this loop completed (inspectable by tests and ``repro work``).
        self.completed = 0
        self.failed = 0

    def stop(self) -> None:
        self._stop.set()

    def run_one(self) -> bool:
        """Claim and execute at most one job; True when one was run."""
        claimed = self.broker.claim(self.name)
        if claimed is None:
            return False
        job, spec_document = claimed
        job_id = job["id"]

        def _progress(done: int, total: int) -> None:
            try:
                self.broker.progress(job_id, done, total)
            except Exception:
                # Progress is advisory; a lost update must not kill the
                # run (the completion report carries the final state).
                pass

        try:
            envelope = execute_document(spec_document, progress=_progress)
            self.broker.complete(job_id, envelope)
            self.completed += 1
        except (KeyboardInterrupt, SystemExit):
            self.broker.fail(job_id, "worker interrupted")
            raise
        except BaseException:
            self.failed += 1
            self.broker.fail(job_id, traceback.format_exc(limit=20))
        return True

    def run(self) -> None:
        """Loop until :meth:`stop` (or, with ``drain``, an empty queue)."""
        if self.processes > 0:
            self._run_pooled()
            return
        while not self._stop.is_set():
            ran = self.run_one()
            if ran:
                continue
            if self.drain:
                return
            self._stop.wait(self.poll_interval)

    def _run_pooled(self) -> None:
        """Claim up to ``processes`` jobs and run them in a process pool.

        Claims happen in the parent (the broker never crosses the fork);
        only the picklable spec document does, and the result envelope
        comes back the same way.  ``stop()`` lets in-flight jobs finish;
        ``drain`` exits once the queue and the pool are both empty.
        """
        import concurrent.futures
        import multiprocessing

        try:
            # Fork keeps child interpreters byte-identical to the parent
            # (same imports, same environment); spawn works too — results
            # are spec-pure either way — it is just slower to start.
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        in_flight: dict[Any, str] = {}
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self.processes, mp_context=context
        ) as pool:
            while True:
                while len(in_flight) < self.processes and not self._stop.is_set():
                    claimed = self.broker.claim(self.name)
                    if claimed is None:
                        break
                    job, spec_document = claimed
                    future = pool.submit(_execute_in_child, dict(spec_document))
                    in_flight[future] = job["id"]
                if not in_flight:
                    if self.drain or self._stop.is_set():
                        return
                    self._stop.wait(self.poll_interval)
                    continue
                done, _ = concurrent.futures.wait(
                    in_flight,
                    timeout=self.poll_interval,
                    return_when=concurrent.futures.FIRST_COMPLETED,
                )
                for future in done:
                    job_id = in_flight.pop(future)
                    try:
                        envelope = future.result()
                        self.broker.complete(job_id, envelope)
                        self.completed += 1
                    except (KeyboardInterrupt, SystemExit):
                        self.broker.fail(job_id, "worker interrupted")
                        raise
                    except BaseException as exc:
                        self.failed += 1
                        self.broker.fail(
                            job_id,
                            "".join(
                                traceback.format_exception(
                                    type(exc), exc, exc.__traceback__, limit=20
                                )
                            ),
                        )
