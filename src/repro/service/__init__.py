"""The experiment service: specs over the wire, digests as the contract.

A small, stdlib-only client/server layer that turns the declarative spec
documents of :mod:`repro.api` into network-submittable jobs:

* :mod:`repro.service.protocol` — the wire documents (job records,
  result envelopes, the ``spec_digest × seed`` store key) and the
  digest verification that every result must pass;
* :mod:`repro.service.ledger` — the durable, journaled job ledger and
  the one shared work queue;
* :mod:`repro.service.store` — the digest-keyed result store (identical
  resubmission = verified cache hit);
* :mod:`repro.service.worker` — the claim/execute/report loop, identical
  for in-process threads and remote HTTP workers;
* :mod:`repro.service.server` — the threaded HTTP server
  (``repro serve``);
* :mod:`repro.service.client` — the urllib client (``repro submit`` /
  ``status`` / ``result`` / ``work``) and digest-partial result
  hydration.

The whole layer moves *documents*, never pickles: what a worker reports
is digest-verified against its own payload before it is stored, and what
a client fetches is digest-verified again on read.
"""

from .client import DEFAULT_URL, ServiceClient, hydrate_digest_result
from .ledger import JobLedger
from .protocol import (
    JOB_STATES,
    SERVICE_VERSION,
    JobRecord,
    ServiceError,
    job_key,
    result_envelope,
    spec_from_document,
    verify_envelope,
)
from .server import DEFAULT_PORT, ExperimentService, ServiceHTTPServer, serve
from .store import ResultStore, StoreCorruption, StoreEntry
from .worker import LocalBroker, WorkerLoop, execute_document

__all__ = [
    "SERVICE_VERSION",
    "JOB_STATES",
    "DEFAULT_PORT",
    "DEFAULT_URL",
    "ServiceError",
    "JobRecord",
    "job_key",
    "spec_from_document",
    "result_envelope",
    "verify_envelope",
    "JobLedger",
    "ResultStore",
    "StoreEntry",
    "StoreCorruption",
    "LocalBroker",
    "WorkerLoop",
    "execute_document",
    "ExperimentService",
    "ServiceHTTPServer",
    "serve",
    "ServiceClient",
    "hydrate_digest_result",
]
