"""The HTTP client of the experiment service (stdlib ``urllib`` only).

:class:`ServiceClient` is both the *user's* client (submit / status /
result, used by ``repro submit`` and :mod:`repro.service` examples) and
the *worker's* broker (claim / progress / complete / fail — the same
four methods :class:`~repro.service.worker.LocalBroker` implements
in-process), so ``repro work --server URL`` turns any machine into a
worker with zero extra protocol.

:func:`hydrate_digest_result` is the client side of the digest-partial
channel: a digest-collection run's envelope carries the composable
digest partial, and the client rebuilds a sealed digest-mode
:class:`~repro.trace.recorder.TraceRecorder` from it — then *proves* the
rebuild by folding the partial and comparing it to the claimed digest.
Two processes that never shared memory agree on the run purely through
the digest protocol.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Iterator, Mapping, Optional

from .protocol import ServiceError

DEFAULT_URL = "http://127.0.0.1:8787"


class ServiceClient:
    """JSON-over-HTTP access to a running experiment server."""

    def __init__(self, base_url: str = DEFAULT_URL, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            detail = ""
            payload: Any = None
            try:
                payload = json.loads(exc.read().decode("utf-8"))
                detail = payload.get("error", "")
            except Exception:
                pass
            error = ServiceError(
                f"{method} {path} -> HTTP {exc.code}" + (f": {detail}" if detail else "")
            )
            error.status = exc.code  # type: ignore[attr-defined]
            error.payload = payload  # type: ignore[attr-defined]
            raise error from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach experiment server at {self.base_url} ({exc.reason})"
            ) from exc

    # ------------------------------------------------------------------
    # The user-facing surface
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        return self._request("GET", "/api/health")

    def submit(
        self, document: Mapping[str, Any], force: bool = False
    ) -> dict[str, Any]:
        """Submit a spec document; returns ``{"job": ..., "created": ...}``."""
        return self._request(
            "POST", "/api/jobs", body={"spec": document, "force": force}
        )

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/api/jobs/{job_id}")["job"]

    def jobs(self, state: Optional[str] = None) -> list[dict[str, Any]]:
        path = "/api/jobs" + (f"?state={state}" if state else "")
        return self._request("GET", path)["jobs"]

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's ``{"job", "spec", "envelope"}`` document.

        Raises :class:`ServiceError` with ``status == 409`` while the
        job is still queued or running.
        """
        return self._request("GET", f"/api/jobs/{job_id}/result")

    def events(
        self, job_id: str, timeout: float = 30.0
    ) -> Iterator[dict[str, Any]]:
        """Stream job snapshots (NDJSON) until terminal or timeout."""
        url = f"{self.base_url}/api/jobs/{job_id}/events?timeout={timeout}"
        request = urllib.request.Request(url, headers={"Accept": "application/x-ndjson"})
        try:
            with urllib.request.urlopen(request, timeout=timeout + 10.0) as response:
                for raw in response:
                    line = raw.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise ServiceError(
                f"events stream for {job_id} -> HTTP {exc.code}"
            ) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach experiment server at {self.base_url} ({exc.reason})"
            ) from exc

    def wait(self, job_id: str, timeout: float = 300.0) -> dict[str, Any]:
        """Follow the event stream until the job is terminal.

        Returns the terminal job record; raises on timeout.  Stream
        windows shorter than ``timeout`` are re-opened, so the wait
        survives the server's per-request streaming cap.
        """
        remaining = timeout
        last: Optional[dict[str, Any]] = None
        while remaining > 0:
            window = min(remaining, 30.0)
            for snapshot in self.events(job_id, timeout=window):
                last = snapshot
                if snapshot["state"] in ("done", "failed"):
                    return snapshot
            remaining -= window
        raise ServiceError(
            f"timed out after {timeout}s waiting for job {job_id} "
            f"(last state: {last['state'] if last else 'unknown'})"
        )

    # ------------------------------------------------------------------
    # The worker-facing surface (the HTTP Broker)
    # ------------------------------------------------------------------
    def claim(self, worker: str):
        response = self._request(
            "POST", "/api/workers/claim", body={"worker": worker}
        )
        if response.get("job") is None:
            return None
        return response["job"], response["spec"]

    def progress(self, job_id: str, done: int, total: int) -> None:
        self._request(
            "POST",
            f"/api/jobs/{job_id}/progress",
            body={"done": done, "total": total},
        )

    def complete(self, job_id: str, envelope: Mapping[str, Any]) -> None:
        self._request(
            "POST", f"/api/jobs/{job_id}/complete", body={"envelope": envelope}
        )

    def fail(self, job_id: str, error: str) -> None:
        self._request("POST", f"/api/jobs/{job_id}/fail", body={"error": error})


# ---------------------------------------------------------------------------
# Digest-partial hydration
# ---------------------------------------------------------------------------
def hydrate_digest_result(envelope: Mapping[str, Any]):
    """Rebuild a sealed digest-mode recorder from a result envelope.

    Only digest-collection experiment envelopes carry the composable
    partial (``digest_state``).  The returned
    :class:`~repro.trace.recorder.TraceRecorder` is sealed and
    digest-verified: its digest — folded locally from the shipped
    partial — must equal the envelope's claimed digest, or this raises.
    Scalar metrics and decisions stay in ``envelope["result"]`` (the
    JSON payload); the event log never crossed the wire, by design.
    """
    state = envelope.get("digest_state")
    if state is None:
        raise ServiceError(
            "envelope has no digest_state (only digest-collection "
            "experiment runs ship the composable partial)"
        )
    from ..trace.digest import hex_of_partial
    from ..trace.metrics import StreamingRunMetrics
    from ..trace.recorder import TraceRecorder

    partial = int(state["partial"], 16)
    derived = hex_of_partial(partial)
    claimed = envelope.get("digest")
    if derived != claimed:
        raise ServiceError(
            f"digest hydration failed: shipped partial folds to "
            f"{derived[:12]}… but the envelope claims {str(claimed)[:12]}…"
        )
    recorder = TraceRecorder.from_digest_state(
        partial=partial,
        events=int(state["events"]),
        retained=(),
        metrics=StreamingRunMetrics(),
        end_time=float(state["end_time"]),
    )
    return recorder
