"""The durable job ledger: one shared queue, many workers, one truth.

The ledger owns every job's lifecycle (``queued`` → ``running`` →
``done``/``failed``) and the FIFO work queue that local worker threads
and remote HTTP workers both drain.  All mutations happen under one lock
and bump a monotonic *version*; pollers long-wait on the condition
variable for "anything newer than version V about job J", which is what
the server's progress stream is built from.

Durability is a JSONL journal (``ledger.jsonl``): every mutation appends
one line, and opening a ledger replays the journal.  Jobs that were
``queued`` or ``running`` when the process died are re-queued on replay
— their spec documents are journaled with the submission, so a restarted
server resumes interrupted work with no client involvement.  (Identical
respecs still dedupe against the store first, so a replayed job whose
result was already stored completes instantly on its next claim.)

Submission dedupe — the "concurrent duplicate submissions execute once"
contract — lives here: an active (non-terminal, non-forced) job with the
same key is returned as-is to every duplicate submitter, under the same
lock that created it.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Optional

from .protocol import JOB_STATES, JobRecord, ServiceError


class JobLedger:
    """In-memory job table + FIFO queue, journaled to ``ledger.jsonl``."""

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / "ledger.jsonl"
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._jobs: dict[str, JobRecord] = {}
        self._specs: dict[str, Mapping[str, Any]] = {}
        self._queue: list[str] = []
        self._version = 0
        self._next_serial = 1
        #: Jobs handed to a worker since this process started (the cache
        #: dedupe tests read this through the health endpoint).
        self.executions = 0
        self._replay()

    # ------------------------------------------------------------------
    # Journal
    # ------------------------------------------------------------------
    def _append_journal(self, op: str, payload: dict[str, Any]) -> None:
        line = json.dumps({"op": op, **payload}, sort_keys=True)
        with self.journal_path.open("a") as handle:
            handle.write(line + "\n")

    def _replay(self) -> None:
        if not self.journal_path.exists():
            return
        with self.journal_path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    self._apply(entry)
                except (json.JSONDecodeError, KeyError, ServiceError):
                    # A torn final line (crash mid-append) is expected;
                    # anything else in the middle would have broken every
                    # subsequent line too, so stop replaying either way.
                    break
        # Work that was queued or in flight when the process died goes
        # back on the queue, oldest first (ids are serial-ordered).
        for job_id in sorted(self._jobs, key=self._serial_of):
            job = self._jobs[job_id]
            if job.state == "running":
                self._jobs[job_id] = job.with_state(state="queued", worker="")
            if self._jobs[job_id].state == "queued" and job_id not in self._queue:
                self._queue.append(job_id)

    @staticmethod
    def _serial_of(job_id: str) -> int:
        try:
            return int(job_id.rsplit("-", 1)[1])
        except (IndexError, ValueError):
            return 0

    def _apply(self, entry: dict[str, Any]) -> None:
        """Replay one journal line into the in-memory tables."""
        op = entry["op"]
        if op == "submit":
            job = JobRecord.from_dict(entry["job"])
            self._jobs[job.id] = job
            self._specs[job.id] = entry["spec"]
            serial = self._serial_of(job.id)
            self._next_serial = max(self._next_serial, serial + 1)
        elif op == "update":
            job_id = entry["id"]
            if job_id not in self._jobs:
                raise ServiceError(f"journal update for unknown job {job_id}")
            self._jobs[job_id] = self._jobs[job_id].with_state(**entry["changes"])
            if self._jobs[job_id].terminal:
                self._specs.pop(job_id, None)
        else:
            raise ServiceError(f"unknown journal op {op!r}")
        self._version = max(self._version, entry.get("version", 0))

    # ------------------------------------------------------------------
    # Mutations (all under the lock, all journaled, all bump the version)
    # ------------------------------------------------------------------
    def _bump(self) -> int:
        self._version += 1
        return self._version

    def _update(self, job_id: str, **changes: Any) -> JobRecord:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        version = self._bump()
        job = job.with_state(version=version, **changes)
        self._jobs[job_id] = job
        if job.terminal:
            self._specs.pop(job_id, None)
        self._append_journal(
            "update",
            {
                "id": job_id,
                "changes": {**changes, "version": version},
                "version": version,
            },
        )
        self._changed.notify_all()
        return job

    def submit(
        self,
        key: str,
        spec_digest: str,
        seed: int,
        kind: str,
        spec: Mapping[str, Any],
        total: int,
        force: bool = False,
        cached_digest: Optional[str] = None,
    ) -> tuple[JobRecord, bool]:
        """Record a submission; returns ``(job, created)``.

        * ``cached_digest`` set → the store already holds the verified
          result; the job is born ``done`` with ``cached=True`` and never
          touches the queue.
        * otherwise, an *active* job with the same key absorbs the
          submission (``created=False``) unless ``force`` — duplicates
          collapse to one execution by construction.
        """
        with self._lock:
            if cached_digest is None and not force:
                for job_id in self._queue_snapshot():
                    job = self._jobs[job_id]
                    if job.key == key and not job.terminal:
                        return job, False
                # Running jobs are no longer in the queue but still absorb
                # duplicates: the execution they stand for is the same.
                for job in self._jobs.values():
                    if job.key == key and not job.terminal:
                        return job, False
            job_id = f"job-{self._next_serial:06d}"
            self._next_serial += 1
            version = self._bump()
            job = JobRecord(
                id=job_id,
                key=key,
                spec_digest=spec_digest,
                seed=seed,
                kind=kind,
                force=force,
                progress={"done": 0, "total": total},
                version=version,
            )
            if cached_digest is not None:
                job = job.with_state(
                    state="done",
                    cached=True,
                    digest=cached_digest,
                    progress={"done": total, "total": total},
                )
            self._jobs[job_id] = job
            if not job.terminal:
                self._specs[job_id] = spec
                self._queue.append(job_id)
            self._append_journal(
                "submit", {"job": job.to_dict(), "spec": spec, "version": version}
            )
            self._changed.notify_all()
            return job, True

    def _queue_snapshot(self) -> list[str]:
        return list(self._queue)

    def claim(self, worker: str) -> Optional[tuple[JobRecord, Mapping[str, Any]]]:
        """Hand the oldest queued job (and its spec document) to a worker."""
        with self._lock:
            while self._queue:
                job_id = self._queue.pop(0)
                job = self._jobs.get(job_id)
                if job is None or job.state != "queued":
                    continue
                spec = self._specs.get(job_id)
                if spec is None:
                    continue
                self.executions += 1
                job = self._update(job_id, state="running", worker=worker)
                return job, spec
            return None

    def report_progress(self, job_id: str, done: int, total: int) -> JobRecord:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job {job_id!r}")
            if job.terminal:
                return job
            return self._update(
                job_id, progress={"done": int(done), "total": int(total)}
            )

    def complete(self, job_id: str, digest: str, cached: bool = False) -> JobRecord:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job {job_id!r}")
            total = int(job.progress.get("total", 1)) or 1
            return self._update(
                job_id,
                state="done",
                cached=cached,
                digest=digest,
                progress={"done": total, "total": total},
            )

    def fail(self, job_id: str, error: str) -> JobRecord:
        with self._lock:
            return self._update(job_id, state="failed", error=str(error))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def spec_of(self, job_id: str) -> Optional[Mapping[str, Any]]:
        """The spec document of an *active* job (dropped once terminal)."""
        with self._lock:
            return self._specs.get(job_id)

    def jobs(self, state: Optional[str] = None) -> list[JobRecord]:
        if state is not None and state not in JOB_STATES:
            raise ServiceError(
                f"unknown job state {state!r}; known: {', '.join(JOB_STATES)}"
            )
        with self._lock:
            records = sorted(self._jobs.values(), key=lambda j: self._serial_of(j.id))
        if state is None:
            return records
        return [job for job in records if job.state == state]

    def counts(self) -> dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
            counts["executions"] = self.executions
            counts["queue"] = len(self._queue)
            return counts

    @property
    def version(self) -> int:
        with self._lock:
            return self._version

    def wait_for(
        self,
        job_id: str,
        since_version: int,
        timeout: Optional[float] = None,
        predicate: Optional[Callable[[JobRecord], bool]] = None,
    ) -> Optional[JobRecord]:
        """Block until ``job_id`` mutates past ``since_version``.

        Returns the job's current record (which satisfies the predicate
        or is newer than ``since_version``), or ``None`` on timeout.
        Terminal jobs return immediately — there is nothing left to wait
        for.
        """
        deadline = None if timeout is None else (self._now() + timeout)
        with self._lock:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise ServiceError(f"unknown job {job_id!r}")
                if job.version > since_version or job.terminal:
                    if predicate is None or predicate(job) or job.terminal:
                        return job
                remaining = None
                if deadline is not None:
                    remaining = deadline - self._now()
                    if remaining <= 0:
                        return None
                self._changed.wait(timeout=remaining)

    @staticmethod
    def _now() -> float:
        import time

        return time.monotonic()

    def iter_updates(
        self, job_id: str, timeout: float, poll: float = 0.5
    ) -> Iterator[JobRecord]:
        """Yield each new version of a job until it turns terminal.

        The server's progress stream: yields the current record
        immediately, then one record per observed mutation (collapsing
        bursts), ending with the terminal record or when ``timeout``
        expires.
        """
        deadline = self._now() + timeout
        last_version = -1
        while True:
            job = self.get(job_id)
            if job is None:
                raise ServiceError(f"unknown job {job_id!r}")
            if job.version > last_version:
                last_version = job.version
                yield job
            if job.terminal:
                return
            remaining = deadline - self._now()
            if remaining <= 0:
                return
            self.wait_for(job_id, last_version, timeout=min(poll, remaining))
