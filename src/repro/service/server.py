"""The experiment server: specs in, digest-verified results out.

Two layers live here:

* :class:`ExperimentService` — the transport-free core.  It owns the
  job ledger, the digest-keyed result store and the local worker pool,
  and implements the submission contract: an identical resubmission is
  answered from the store (digest-verified on read) without executing
  anything; ``force=True`` bypasses the cache; a corrupt store entry is
  detected, evicted and recomputed.
* :class:`ServiceHTTPServer` / :class:`_Handler` — a thin JSON-over-HTTP
  skin (stdlib ``http.server``, threaded) exposing the service to
  clients and to remote workers.  Every route body is one call into the
  core; all state lives in the core, so the HTTP layer is stateless and
  each request thread independent.

Routes
------
::

    GET  /api/health                    server + ledger + store counters
    POST /api/jobs                      submit {"spec": ..., "force": bool}
    GET  /api/jobs[?state=...]          list jobs
    GET  /api/jobs/<id>                 one job record
    GET  /api/jobs/<id>/result          result envelope (409 until done)
    GET  /api/jobs/<id>/events          NDJSON progress stream
    POST /api/workers/claim             remote worker: next job + spec
    POST /api/jobs/<id>/progress        remote worker: task counts
    POST /api/jobs/<id>/complete        remote worker: result envelope
    POST /api/jobs/<id>/fail            remote worker: error report

``/complete`` is the trust boundary: the envelope is digest-verified
(:func:`~repro.service.protocol.verify_envelope`) and durably stored
*before* the ledger marks the job done — a worker cannot hand the server
a result whose digest its own payload does not support.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Mapping, Optional
from urllib.parse import parse_qs, urlsplit

from ..api import SpecError, SweepSpec
from .ledger import JobLedger
from .protocol import (
    SERVICE_VERSION,
    JobRecord,
    ServiceError,
    job_key,
    spec_from_document,
    spec_seed,
    verify_envelope,
)
from .store import ResultStore, StoreCorruption
from .worker import LocalBroker, WorkerLoop

DEFAULT_PORT = 8787


class ExperimentService:
    """The transport-free service core (ledger + store + worker pool)."""

    def __init__(
        self,
        root: Path | str,
        workers: int = 1,
        store_max_bytes: Optional[int] = None,
    ) -> None:
        self.root = Path(root)
        self.ledger = JobLedger(self.root / "ledger")
        self.store = ResultStore(self.root / "store", max_bytes=store_max_bytes)
        self.workers = max(int(workers), 0)
        self._broker = LocalBroker(self.ledger, self.store)
        self._loops: list[WorkerLoop] = []
        self._threads: list[threading.Thread] = []
        #: Store entries that failed verification and were evicted.
        self.corruptions = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start_workers(self) -> None:
        for index in range(self.workers):
            loop = WorkerLoop(self._broker, name=f"local-{index}")
            thread = threading.Thread(
                target=loop.run, name=f"repro-worker-{index}", daemon=True
            )
            self._loops.append(loop)
            self._threads.append(thread)
            thread.start()

    def stop_workers(self) -> None:
        for loop in self._loops:
            loop.stop()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._loops.clear()
        self._threads.clear()

    # ------------------------------------------------------------------
    # The submission contract
    # ------------------------------------------------------------------
    def submit(
        self, document: Mapping[str, Any], force: bool = False
    ) -> tuple[JobRecord, bool]:
        """Submit a spec document; returns ``(job, created)``.

        The spec is parsed (and therefore validated) before anything is
        recorded; its canonical digest and seed form the store key.  A
        verified store hit short-circuits to a ``done``/``cached`` job;
        a corrupt entry is evicted and the job queued for recompute.
        """
        spec = spec_from_document(document)
        key = job_key(spec)
        kind = "sweep" if isinstance(spec, SweepSpec) else "experiment"
        total = len(spec.tasks()) if isinstance(spec, SweepSpec) else 1
        cached_digest: Optional[str] = None
        if not force:
            try:
                entry = self.store.get(key)
            except StoreCorruption:
                self.corruptions += 1
                self.store.evict(key)
            else:
                if entry is not None:
                    cached_digest = entry.digest
        return self.ledger.submit(
            key=key,
            spec_digest=spec.digest(),
            seed=spec_seed(spec),
            kind=kind,
            spec=dict(spec.to_dict()),
            total=total,
            force=force,
            cached_digest=cached_digest,
        )

    def result(self, job_id: str) -> dict[str, Any]:
        """The stored result envelope of a finished job.

        The entry is digest-verified on this read too — fetching a
        result re-proves it, every time.
        """
        job = self.ledger.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        if job.state == "failed":
            raise ServiceError(f"job {job_id} failed: {job.error}")
        if job.state != "done":
            raise _NotDone(job)
        entry = self.store.get(job.key)
        if entry is None:
            raise ServiceError(
                f"job {job_id} is done but its store entry {job.key} is "
                "missing; resubmit to recompute"
            )
        return {"job": job.to_dict(), "spec": entry.spec, "envelope": entry.envelope}

    def complete_job(self, job_id: str, envelope: Mapping[str, Any]) -> JobRecord:
        """A worker's completion report (local or over the wire)."""
        verify_envelope(envelope)
        job = self.ledger.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        spec = self.ledger.spec_of(job_id)
        if spec is not None:
            self.store.put(job.key, spec, envelope)
        return self.ledger.complete(job_id, envelope["digest"])

    def health(self) -> dict[str, Any]:
        return {
            "ok": True,
            "version": SERVICE_VERSION,
            "workers": self.workers,
            "counts": self.ledger.counts(),
            "store_entries": len(self.store),
            "store_bytes": self.store.total_bytes(),
            "store_max_bytes": self.store.max_bytes,
            "store_evictions": self.store.evictions,
            "corruptions": self.corruptions,
        }


class _NotDone(ServiceError):
    """Raised by ``result`` while the job is still in flight (HTTP 409)."""

    def __init__(self, job: JobRecord) -> None:
        super().__init__(f"job {job.id} is {job.state}")
        self.job = job


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-experiment-service"

    @property
    def service(self) -> ExperimentService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)

    def _send_json(self, status: int, document: Any) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, **extra: Any) -> None:
        self._send_json(status, {"error": message, **extra})

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    # -- routing --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._route("POST")

    def _route(self, method: str) -> None:
        split = urlsplit(self.path)
        parts = [part for part in split.path.split("/") if part]
        query = parse_qs(split.query)
        try:
            self._dispatch(method, parts, query)
        except _NotDone as exc:
            self._send_error_json(409, str(exc), job=exc.job.to_dict())
        except SpecError as exc:
            self._send_error_json(400, str(exc))
        except ServiceError as exc:
            status = 404 if "unknown job" in str(exc) else 500
            self._send_error_json(status, str(exc))
        except BrokenPipeError:  # pragma: no cover - client went away
            pass
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(500, f"internal error: {exc!r}")

    def _dispatch(self, method: str, parts: list[str], query: dict) -> None:
        service = self.service
        if parts[:1] != ["api"]:
            self._send_error_json(404, f"no such route {self.path!r}")
            return
        rest = parts[1:]
        if method == "GET" and rest == ["health"]:
            self._send_json(200, service.health())
            return
        if rest[:1] == ["jobs"]:
            self._dispatch_jobs(method, rest[1:], query)
            return
        if method == "POST" and rest == ["workers", "claim"]:
            body = self._read_body()
            worker = str(body.get("worker") or "remote")
            claimed = service.ledger.claim(worker)
            if claimed is None:
                self._send_json(200, {"job": None})
                return
            job, spec = claimed
            self._send_json(200, {"job": job.to_dict(), "spec": spec})
            return
        self._send_error_json(404, f"no such route {self.path!r}")

    def _dispatch_jobs(self, method: str, rest: list[str], query: dict) -> None:
        service = self.service
        if method == "POST" and not rest:
            body = self._read_body()
            document = body.get("spec")
            if document is None:
                raise ServiceError('submission body needs a "spec" document')
            force = bool(body.get("force", False))
            job, created = service.submit(document, force=force)
            self._send_json(
                202 if not job.terminal else 200,
                {"job": job.to_dict(), "created": created},
            )
            return
        if method == "GET" and not rest:
            state = query.get("state", [None])[0]
            jobs = [job.to_dict() for job in service.ledger.jobs(state)]
            self._send_json(200, {"jobs": jobs})
            return
        if not rest:
            self._send_error_json(405, f"{method} not allowed on /api/jobs")
            return
        job_id, action = rest[0], rest[1:]
        if method == "GET" and not action:
            job = service.ledger.get(job_id)
            if job is None:
                self._send_error_json(404, f"unknown job {job_id!r}")
                return
            self._send_json(200, {"job": job.to_dict()})
            return
        if method == "GET" and action == ["result"]:
            self._send_json(200, service.result(job_id))
            return
        if method == "GET" and action == ["events"]:
            timeout = float(query.get("timeout", ["30"])[0])
            self._stream_events(job_id, min(max(timeout, 0.0), 300.0))
            return
        if method == "POST" and action == ["progress"]:
            body = self._read_body()
            job = service.ledger.report_progress(
                job_id, int(body.get("done", 0)), int(body.get("total", 1))
            )
            self._send_json(200, {"job": job.to_dict()})
            return
        if method == "POST" and action == ["complete"]:
            body = self._read_body()
            envelope = body.get("envelope")
            if not isinstance(envelope, dict):
                raise ServiceError('completion body needs an "envelope"')
            job = service.complete_job(job_id, envelope)
            self._send_json(200, {"job": job.to_dict()})
            return
        if method == "POST" and action == ["fail"]:
            body = self._read_body()
            job = service.ledger.fail(job_id, str(body.get("error", "")))
            self._send_json(200, {"job": job.to_dict()})
            return
        self._send_error_json(404, f"no such route {self.path!r}")

    def _stream_events(self, job_id: str, timeout: float) -> None:
        """NDJSON progress stream: one job snapshot per mutation."""
        service = self.service
        if service.ledger.get(job_id) is None:
            self._send_error_json(404, f"unknown job {job_id!r}")
            return
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        # Chunked would need manual framing under HTTP/1.1; close-delimited
        # is simpler and every stdlib/urllib client handles it.
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for job in service.ledger.iter_updates(job_id, timeout=timeout):
                line = json.dumps(job.to_dict(), sort_keys=True) + "\n"
                self.wfile.write(line.encode("utf-8"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass
        self.close_connection = True


class ServiceHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ExperimentService`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        service: ExperimentService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.verbose = verbose
        super().__init__((host, port), _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(
    root: Path | str,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    workers: int = 1,
    verbose: bool = False,
    store_max_bytes: Optional[int] = None,
) -> ServiceHTTPServer:
    """Build a ready-to-run server (workers started, not yet serving).

    Callers own the serve loop: ``server.serve_forever()`` to block, or
    drive it from a thread in tests.  ``port=0`` binds an ephemeral port
    (``server.url`` reports the real one).  ``store_max_bytes`` caps the
    result store; the LRU collector journals every eviction.
    """
    service = ExperimentService(root, workers=workers, store_max_bytes=store_max_bytes)
    service.start_workers()
    return ServiceHTTPServer(service, host=host, port=port, verbose=verbose)
