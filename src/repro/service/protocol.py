"""Wire documents of the experiment service.

Everything that crosses the HTTP boundary — job records, result
envelopes, the store key — is defined here as plain JSON-shaped dicts
plus the helpers that build and validate them.  The server, the client
and the worker all speak exactly these shapes; nothing else ever crosses
a process boundary, which is what lets two processes that share no
memory agree on a result solely through the digest protocol.

The store key
-------------
A submission is identified by ``spec_digest(spec) × seed``: the canonical
spec digest (hash-seed- and process-independent, see
:func:`repro.api.spec_digest`) crossed with the run's seed (the
experiment's ``seed``, a sweep's ``base_seed``).  The digest already
folds the seed in, so the explicit ``×  seed`` component is redundant —
deliberately: the key stays self-describing in a directory listing, and a
digest collision across seeds cannot silently alias two runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Optional, Union

from ..api import ExperimentSpec, SpecError, SweepSpec

#: Wire-format version stamped into every service document.
SERVICE_VERSION = 1

#: Job lifecycle states.  ``queued`` → ``running`` → ``done`` | ``failed``.
#: A submission answered straight from the result store is ``done`` from
#: birth with ``cached=True`` — no worker ever sees it.
JOB_STATES = ("queued", "running", "done", "failed")


class ServiceError(RuntimeError):
    """A service-layer failure (bad document, unknown job, dead server)."""


SpecDocument = Mapping[str, Any]
AnySpec = Union[ExperimentSpec, SweepSpec]


def spec_from_document(document: SpecDocument) -> AnySpec:
    """Parse a spec document (dict form), dispatching on its tag."""
    if not isinstance(document, Mapping):
        raise SpecError(
            f"spec document must be a mapping, got {type(document).__name__}"
        )
    tag = document.get("spec")
    if tag == "experiment":
        return ExperimentSpec.from_dict(document)
    if tag == "sweep":
        return SweepSpec.from_dict(document)
    raise SpecError(
        f'spec document needs "spec": "experiment"|"sweep", got {tag!r}'
    )


def spec_seed(spec: AnySpec) -> int:
    """The seed component of the store key."""
    return spec.base_seed if isinstance(spec, SweepSpec) else spec.seed


def job_key(spec: AnySpec) -> str:
    """The ledger/store key of a submission: ``<spec-digest>x<seed>``."""
    return f"{spec.digest()}x{spec_seed(spec)}"


# ---------------------------------------------------------------------------
# Job records
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class JobRecord:
    """One submission's ledger entry (a pure wire value).

    ``progress`` counts completed sweep tasks (``{"done": n, "total":
    m}``); single experiments report ``{"done": 0|1, "total": 1}``.
    """

    id: str
    key: str
    spec_digest: str
    seed: int
    kind: str  # "experiment" | "sweep"
    state: str = "queued"
    #: True when the result came from the store without re-executing.
    cached: bool = False
    #: True when the submission bypassed the cache (``force=true``).
    force: bool = False
    worker: str = ""
    error: str = ""
    #: The result digest, filled in when the job completes.
    digest: str = ""
    progress: Mapping[str, int] = field(
        default_factory=lambda: {"done": 0, "total": 1}
    )
    #: Monotonic ledger version of the job's last mutation (long-poll cursor).
    version: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "key": self.key,
            "spec_digest": self.spec_digest,
            "seed": self.seed,
            "kind": self.kind,
            "state": self.state,
            "cached": self.cached,
            "force": self.force,
            "worker": self.worker,
            "error": self.error,
            "digest": self.digest,
            "progress": dict(self.progress),
            "version": self.version,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRecord":
        unknown = set(data) - {f for f in cls.__dataclass_fields__}
        if unknown:
            raise ServiceError(f"unknown JobRecord keys: {sorted(unknown)}")
        return cls(**{key: data[key] for key in data})

    def with_state(self, **changes: Any) -> "JobRecord":
        return replace(self, **changes)

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")


# ---------------------------------------------------------------------------
# Result envelopes
# ---------------------------------------------------------------------------
def result_envelope(spec: AnySpec, result: Any) -> dict[str, Any]:
    """Package an executed run into the service's result document.

    ``result`` is whatever :class:`~repro.api.ExperimentSession` returned
    (``RunResult``, ``ChurnRunResult`` or ``SweepReport``).  The envelope
    carries the JSON result payload, the canonical digest, and — for
    digest-collection experiment runs — the composable digest partial, so
    a client can rehydrate a digest-verified, trace-free result object
    (:func:`repro.service.client.hydrate_digest_result`) without the
    server ever shipping an event log.
    """
    envelope: dict[str, Any] = {
        "version": SERVICE_VERSION,
        "kind": "sweep" if isinstance(spec, SweepSpec) else "experiment",
        "spec_digest": spec.digest(),
        "seed": spec_seed(spec),
        "digest": result.digest(),
        "result": result.as_dict(),
    }
    if isinstance(spec, ExperimentSpec):
        envelope["collection"] = spec.runtime.collection
        trace = getattr(result, "trace", None)
        partial = trace.digest_partial() if trace is not None else None
        if partial is not None:
            envelope["digest_state"] = {
                "partial": f"{partial:064x}",
                "events": len(trace),
                "end_time": trace.end_time(),
            }
    return envelope


def verify_envelope(envelope: Mapping[str, Any]) -> None:
    """Digest-verify a result envelope without re-running anything.

    This is the server's trust boundary with its workers: a completed
    job's digest must be *derivable* from the envelope itself —

    * sweep envelopes: the claimed digest must equal the order-sensitive
      combination of the per-run digests in the payload
      (:func:`repro.trace.digest.combine_digests`), exactly how
      :meth:`repro.scale.sweep.SweepReport.digest` computes it;
    * digest-collection experiment envelopes: the claimed digest must
      equal ``hex_of_partial`` of the shipped partial.

    Trace-mode experiment envelopes carry no independent witness (the
    trace stayed in the worker), so only their shape is checked; the
    integration suite pins their digests against local runs instead.
    """
    digest = envelope.get("digest")
    if not isinstance(digest, str) or not digest:
        raise ServiceError("result envelope has no digest")
    kind = envelope.get("kind")
    if kind == "sweep":
        from ..trace.digest import combine_digests

        runs = envelope.get("result", {}).get("runs")
        if runs is None:
            raise ServiceError("sweep envelope has no result.runs")
        recombined = combine_digests(run["digest"] for run in runs)
        if recombined != digest:
            raise ServiceError(
                f"sweep digest verification failed: claimed {digest[:12]}…, "
                f"recombining the {len(runs)} per-run digests gives "
                f"{recombined[:12]}…"
            )
        return
    if kind != "experiment":
        raise ServiceError(f"unknown result envelope kind {kind!r}")
    state = envelope.get("digest_state")
    if state is not None:
        from ..trace.digest import hex_of_partial

        try:
            partial = int(state["partial"], 16)
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed digest_state: {exc}") from exc
        derived = hex_of_partial(partial)
        if derived != digest:
            raise ServiceError(
                f"digest-partial verification failed: claimed {digest[:12]}…, "
                f"the shipped partial folds to {derived[:12]}…"
            )
    payload_digest = envelope.get("result", {}).get("digest")
    if payload_digest is not None and payload_digest != digest:
        raise ServiceError(
            "result envelope digest disagrees with its payload digest"
        )


def dumps(document: Any) -> str:
    """Stable JSON encoding used for every wire document."""
    return json.dumps(document, indent=2, sort_keys=True)
