#!/usr/bin/env python3
"""Locality: the protocol's cost does not depend on the system size.

The paper's headline property (CD3 Locality / "local complexity") is that
only the nodes around a crashed region ever participate, so the cost of an
agreement depends on the crashed region — never on how big the rest of the
system is.  This example measures it:

1. a fixed 3x3 region crashes in tori of growing size (the cost stays
   flat), and
2. blocks of growing size crash in a fixed torus (the cost grows with the
   border of the block);
3. the same scenario is run with the whole-network consensus baseline to
   show the curve the paper wants to avoid.

Run with:  python examples/locality_scaling.py          (quick sweep)
           python examples/locality_scaling.py --full   (larger sweep)
"""

from __future__ import annotations

import sys

from repro.experiments import (
    format_table,
    global_consensus_comparison,
    locality_is_flat,
    region_size_sweep,
    system_size_sweep,
)


def main() -> None:
    full = "--full" in sys.argv[1:]
    sides = (8, 12, 16, 24, 32, 48, 64) if full else (8, 12, 16, 24, 32)
    region_sides = (1, 2, 3, 4, 5, 6) if full else (1, 2, 3, 4)
    baseline_sides = (6, 8, 10, 12, 16) if full else (6, 8, 10)

    print("EXP-L1: fixed 3x3 crashed region, growing torus")
    points = system_size_sweep(sides=sides)
    print(format_table([point.as_row() for point in points]))
    print(f"-> message cost flat across system sizes: {locality_is_flat(points)}")
    print()

    print("EXP-L2: fixed 32x32 torus, growing crashed block")
    points = region_size_sweep(region_sides=region_sides)
    print(format_table([point.as_row() for point in points]))
    print("-> cost tracks the crashed region's border, not the system size")
    print()

    print("EXP-B1: the same failure handled by a whole-network consensus")
    rows = [point.as_row() for point in global_consensus_comparison(sides=baseline_sides)]
    print(format_table(rows))
    print("-> the baseline's cost grows with the system; cliff-edge stays put")


if __name__ == "__main__":
    main()
