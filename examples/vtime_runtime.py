#!/usr/bin/env python3
"""The asyncio runtime on a virtual clock: fast and digest-stable.

The wall-clock asyncio runtime really sleeps: schedule pacing,
failure-detector delays and quiescence polls all cost real time, and the
OS decides tie-breaks, so two runs of the same scenario produce
different traces.  This example executes the quickstart scenario (a 2x2
block crashing in a 6x6 grid) on the **virtual-time** loop
(:mod:`repro.vtime`) — the same unmodified runtime code with the clock
driven by the simulator's keyed scheduler — and shows the two headline
properties:

* zero real sleeps: the virtual run finishes in milliseconds while the
  wall-clock run sleeps through the same virtual seconds;
* determinism: two virtual runs produce byte-identical canonical
  digests (the wall-clock runtime cannot promise that).

Run with:  python examples/vtime_runtime.py
"""

from __future__ import annotations

from time import perf_counter

from repro import CliffEdgeNode, generators, region_crash
from repro.runtime import run_cliff_edge_asyncio
from repro.vtime import run_cliff_edge_virtual


def main() -> None:
    graph = generators.grid(6, 6)
    crashed_block = [(2, 2), (2, 3), (3, 2), (3, 3)]
    schedule = region_crash(graph, crashed_block, at=1.0)

    print("=== wall-clock asyncio (really sleeps) ===")
    started = perf_counter()
    wall_result = run_cliff_edge_asyncio(
        graph, schedule, node_factory=CliffEdgeNode, timeout=20.0
    )
    wall_elapsed = perf_counter() - started
    print(f"decisions: {wall_result.metrics.decisions}  "
          f"quiescent: {wall_result.quiescent}  wall time: {wall_elapsed:.3f}s")

    print()
    print("=== virtual-time asyncio (same code, simulator clock) ===")
    started = perf_counter()
    first = run_cliff_edge_virtual(
        graph, schedule, node_factory=CliffEdgeNode, timeout=20.0
    )
    virtual_elapsed = perf_counter() - started
    second = run_cliff_edge_virtual(
        graph, schedule, node_factory=CliffEdgeNode, timeout=20.0
    )
    print(f"decisions: {first.metrics.decisions}  "
          f"quiescent: {first.quiescent}  wall time: {virtual_elapsed:.3f}s")
    print(f"digest, run 1: {first.trace.digest()[:16]}…")
    print(f"digest, run 2: {second.trace.digest()[:16]}…")

    print()
    print("virtual runs digest-identical: "
          f"{first.trace.digest() == second.trace.digest()}")
    views = lambda result: {  # noqa: E731
        tuple(sorted(map(str, view.members))) for view in result.decided_views
    }
    print(f"wall-clock and virtual agree on the views: "
          f"{views(wall_result) == views(first)}")
    if virtual_elapsed > 0:
        print(f"speedup vs wall-clock: {wall_elapsed / virtual_elapsed:.1f}x")


if __name__ == "__main__":
    main()
