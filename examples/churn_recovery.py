#!/usr/bin/env python3
"""Churn: a crashed region recovers and crashes again.

The paper's model is crash-only: once a region falls off the cliff it
never comes back.  Real overlays churn — nodes recover, rejoin and new
nodes arrive while detection and repair are in flight.  This example runs
the headline churn scenario:

1. a 2x2 block of a 6x6 grid crashes at t=1 and the border agrees on it;
2. the block *recovers* at t=40 — every view involving it is now stale,
   and the border nodes discard their epoch-1 state when the membership
   announcement reaches them;
3. the block crashes *again* at t=80, and the same border agrees on the
   same region a second time, in a fresh membership epoch.

The run is then checked against the epoch-quotiented CD1–CD7
specification (repro.churn.properties), and executed a second time on the
asyncio runtime to show both substrates decide identically.

Run with:  python examples/churn_recovery.py
"""

from __future__ import annotations

from repro import generators
from repro.churn import crash_recover_recrash, run_churn, run_churn_asyncio
from repro.sim.events import EventKind


def main() -> None:
    # 1. Topology and the crash -> recover -> re-crash script.
    graph = generators.grid(6, 6)
    block = [(2, 2), (2, 3), (3, 2), (3, 3)]
    crashes, membership = crash_recover_recrash(
        graph, block, crash_at=1.0, recover_at=40.0, recrash_at=80.0
    )
    print(f"topology: {graph}")
    print(f"block {sorted(block)}: crash at t=1, recover at t=40, re-crash at t=80")

    # 2. Run on the deterministic simulator with the epoch-quotiented check.
    result = run_churn(graph, crashes, membership, check=True)
    print()
    print("=== simulator ===")
    print(result.summary())

    # 3. The same region is decided once per epoch in which it crashed.
    #    Epochs are delimited by *trace index* (several can share one
    #    timestamp), so attribution uses MembershipEpoch.covers().
    print()
    print("=== decisions by epoch ===")
    epoch_of_decision = {}
    for index, event in enumerate(result.trace):
        if event.kind is EventKind.DECIDED:
            epoch = next(e for e in result.epochs if e.covers(index))
            epoch_of_decision.setdefault(epoch.index, []).append(event)
    for epoch_index, events in sorted(epoch_of_decision.items()):
        deciders = sorted(repr(e.node) for e in events)
        print(f"  epoch {epoch_index}: {len(events)} decisions by {deciders}")

    print()
    print("=== epoch-quotiented specification ===")
    print(result.specification.summary())

    # 4. Credibility check: the asyncio runtime reaches the same views.
    async_result = run_churn_asyncio(graph, crashes, membership, check=True)
    print()
    print("=== asyncio runtime ===")
    print(f"quiescent: {async_result.quiescent}")
    print(f"specification holds: {async_result.specification.holds}")
    same = async_result.decided_views == result.decided_views
    print(f"same decided views as the simulator: {same}")

    assert result.specification.holds
    assert async_result.specification.holds
    assert same


if __name__ == "__main__":
    main()
