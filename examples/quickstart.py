#!/usr/bin/env python3
"""Quickstart: agree on a crashed region in a small grid.

A 6x6 grid of nodes loses a 2x2 block.  The eight surviving neighbours of
the block (the "cliff edge") run the cliff-edge consensus protocol, agree
on the exact extent of the crashed region, and elect a coordinator for the
recovery.  The script then checks the run against the paper's CD1-CD7
specification.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import generators, region_crash, run_cliff_edge


def main() -> None:
    # 1. Build the knowledge graph: who knows whom.
    graph = generators.grid(6, 6)
    print(f"topology: {graph}")

    # 2. Describe the failure: a connected 2x2 block crashes at t=1.
    crashed_block = [(2, 2), (2, 3), (3, 2), (3, 3)]
    schedule = region_crash(graph, crashed_block, at=1.0)
    print(f"crashing {sorted(crashed_block)} at t=1.0")

    # 3. Run the protocol on the deterministic simulator and check CD1-CD7.
    result = run_cliff_edge(graph, schedule, check=True)

    # 4. Inspect the outcome.
    print()
    print("=== decisions ===")
    for decision in result.decisions:
        print(
            f"  t={decision.time:5.1f}  {decision.node} decided "
            f"view={sorted(decision.view.members)}"
        )
        print(f"          recovery action: {decision.value.describe()}")

    print()
    print("=== run summary ===")
    print(result.summary())

    print()
    print("=== specification (CD1-CD7) ===")
    print(result.specification.summary())

    # The headline locality fact: only the border of the crashed block ever
    # spoke, no matter how many other nodes the system contains.
    border = graph.border(crashed_block)
    print()
    print(
        f"nodes that exchanged messages: {result.metrics.speaking_nodes} "
        f"(= border size {len(border)}) out of {len(graph)} nodes in the system"
    )


if __name__ == "__main__":
    main()
