#!/usr/bin/env python3
"""Figure 1b walk-through: conflicting views and the self-defining constituency.

This example reproduces the exact situation drawn in Fig. 1 of the paper:

* the European region F1 = {lyon, geneva, barcelona} crashes, bordered by
  paris, london, madrid and roma;
* before the agreement completes, paris crashes too, turning F1 into
  F3 = F1 ∪ {paris} and pulling berlin into the protocol;
* madrid is slow to detect paris' crash, so madrid keeps proposing F1
  while berlin proposes F3 — two conflicting views of the same precipice.

The protocol resolves the conflict through its ranking-based rejection
rule; the script prints the proposals, rejections and the final unified
decision, then checks CD1-CD7.

Run with:  python examples/conflicting_views.py
"""

from __future__ import annotations

from repro.experiments import run_fig1b
from repro.sim import EventKind


def main() -> None:
    observations = run_fig1b()
    result = observations.result

    print("=== timeline of proposals, rejections and decisions ===")
    interesting = result.trace.of_kind(
        EventKind.NODE_CRASHED,
        EventKind.VIEW_PROPOSED,
        EventKind.VIEW_REJECTED,
        EventKind.DECIDED,
    )
    for event in interesting:
        if event.kind is EventKind.NODE_CRASHED:
            print(f"t={event.time:6.1f}  CRASH      {event.node}")
        elif event.kind is EventKind.VIEW_PROPOSED:
            members = sorted(map(str, event.payload.members))
            print(f"t={event.time:6.1f}  PROPOSE    {event.node:<10} view={members}")
        elif event.kind is EventKind.VIEW_REJECTED:
            members = sorted(map(str, event.payload.members))
            print(f"t={event.time:6.1f}  REJECT     {event.node:<10} view={members}")
        else:
            members = sorted(map(str, event.payload.members))
            print(f"t={event.time:6.1f}  DECIDE     {event.node:<10} view={members}")

    print()
    print("=== what the figure is about ===")
    print(f"madrid's successive proposals: "
          f"{[sorted(map(str, v.members)) for v in observations.madrid_proposals]}")
    print(f"berlin's successive proposals:  "
          f"{[sorted(map(str, v.members)) for v in observations.berlin_proposals]}")
    print(f"conflicting views arose:        {observations.conflict_arose}")
    print(f"rejection messages exchanged:   {observations.rejections}")
    print(f"final agreed view:              "
          f"{sorted(map(str, observations.decided_view.members))}")
    print(f"all deciders converged on F3:   {observations.converged_on_f3}")

    print()
    print("=== specification (CD1-CD7) ===")
    print(result.specification.summary())


if __name__ == "__main__":
    main()
