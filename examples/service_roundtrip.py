#!/usr/bin/env python3
"""The experiment service, end to end, in one process.

Boots a real :class:`repro.service.ServiceHTTPServer` on an ephemeral
port, submits the quickstart spec over HTTP, and walks the service's
three contracts:

1. the digest a worker reports over the wire equals a local run's;
2. resubmitting the identical document is answered from the result
   store without executing anything;
3. a digest-collection submission ships only the composable digest
   partial, which the client re-folds and verifies during hydration.

Everything is stdlib — the server is ``http.server``, the client is
``urllib``.  ``python -m repro serve`` runs the same server standalone.

Run with:  python examples/service_roundtrip.py
"""

from __future__ import annotations

import threading
from tempfile import TemporaryDirectory

from repro.api import quickstart_spec, run_spec
from repro.service import ServiceClient, hydrate_digest_result, serve


def main() -> None:
    spec = quickstart_spec()
    local_digest = run_spec(spec).digest()
    print(f"local digest:        {local_digest[:16]}")

    with TemporaryDirectory(prefix="repro-service-example-") as root:
        server = serve(root, port=0, workers=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = ServiceClient(server.url)
            print(f"server:              {server.url}")

            # 1. Submit the spec document and follow it to completion.
            job = client.wait(
                client.submit(spec.to_dict())["job"]["id"], timeout=120.0
            )
            assert job["digest"] == local_digest
            print(f"over the wire:       {job['digest'][:16]}  ({job['id']})")

            # 2. The identical document again: born done, cached, and the
            #    executions counter proves nothing ran.
            cached = client.submit(spec.to_dict())["job"]
            assert cached["cached"] and cached["digest"] == local_digest
            executions = client.health()["counts"]["executions"]
            print(
                f"resubmission:        cached ({cached['id']}), "
                f"executions still {executions}"
            )

            # 3. Digest-collection mode: the result envelope carries the
            #    composable partial instead of a trace; hydration re-folds
            #    and verifies it client-side.
            lean = spec.with_collection("digest")
            lean_job = client.wait(
                client.submit(lean.to_dict())["job"]["id"], timeout=120.0
            )
            envelope = client.result(lean_job["id"])["envelope"]
            recorder = hydrate_digest_result(envelope)
            assert recorder.digest() == lean_job["digest"]
            print(
                f"digest-collection:   {recorder.digest()[:16]}  "
                f"({len(recorder)} events folded, zero trace bytes shipped)"
            )
        finally:
            server.shutdown()
            server.service.stop_workers()
            server.server_close()
            thread.join(timeout=5.0)
    print("service round-trip ok")


if __name__ == "__main__":
    main()
