#!/usr/bin/env python3
"""Declarative experiments: specs in, results out.

The same cliff-edge run as ``examples/quickstart.py``, but described as
*data*: a frozen, JSON-round-trippable :class:`repro.api.ExperimentSpec`
executed through :class:`repro.api.ExperimentSession`.  The spec prints,
serializes, digests, and reproduces the run bit-for-bit — and a
:class:`repro.api.SweepSpec` turns it into a whole sweep (spec × seeds ×
grid) without writing any orchestration code.

Run with:  python examples/declarative_spec.py
"""

from __future__ import annotations

from repro.api import (
    ExperimentSession,
    ExperimentSpec,
    FailureSpec,
    SweepSpec,
    TopologySpec,
    load_spec,
    topology_cache_info,
)


def main() -> None:
    # 1. Describe the experiment as data: a 6x6 grid loses a 2x2 block.
    spec = ExperimentSpec(
        name="declarative-quickstart",
        topology=TopologySpec("grid", {"width": 6, "height": 6}),
        failure=FailureSpec(
            "region",
            {"members": [[2, 2], [2, 3], [3, 2], [3, 3]], "at": 1.0},
        ),
        seed=0,
        check=True,
    )
    print(f"spec digest: {spec.digest()[:16]}")

    # 2. The spec round-trips through JSON byte-identically — this is
    #    what `repro run SPEC.json` and `--emit-spec` exchange.
    document = spec.to_json()
    assert load_spec(document) == spec
    print(f"serialized spec: {len(document)} bytes of JSON")

    # 3. Execute through the session (topology builds are cached by spec
    #    digest, so repeated runs share one graph build).
    session = ExperimentSession()
    result = session.run(spec)
    print()
    print("=== run ===")
    print(result.summary())
    assert result.specification.holds

    # 4. Sweep the same spec across seeds and grid sides — one document,
    #    many runs, digest-stable across any worker count.
    sweep = SweepSpec(
        name="declarative-sweep",
        experiment=spec,
        seeds=(0, 1),
        grid={"topology.params.width": (6, 8)},
        workers=1,
    )
    report = session.run_sweep(sweep)
    print()
    print("=== sweep ===")
    for outcome in report.outcomes:
        print(
            f"  {outcome.label}: nodes={outcome.nodes} "
            f"decisions={outcome.decisions} digest={outcome.digest[:12]}"
        )
    print(f"sweep digest: {report.digest()[:16]}  all hold: {report.all_hold}")
    info = topology_cache_info()
    print(f"topology cache: {info.hits} hits / {info.misses} misses")
    assert report.all_hold


if __name__ == "__main__":
    main()
