#!/usr/bin/env python3
"""Overlay repair: the application the paper motivates.

A Chord-like ring of 32 nodes (each node knows its next two successors)
loses a contiguous arc of 4 nodes.  The arc's surviving neighbours run
cliff-edge consensus with a repair-plan decision policy: the agreed value
is simultaneously (a) the exact extent of the crashed arc, (b) the bridge
edges that stitch the ring back together, and (c) the coordinator elected
to drive the repair.  The script applies the plan and verifies the ring is
whole again.

Run with:  python examples/overlay_repair.py
"""

from __future__ import annotations

from repro.experiments import run_overlay_repair


def main() -> None:
    run = run_overlay_repair(ring_size=32, successors=2, arc_start=5, arc_length=4)

    print("=== scenario ===")
    print(f"ring size:        {run.overlay.size} (successor list length "
          f"{run.overlay.successors})")
    print(f"crashed arc:      {list(run.arc)}")
    border = run.result.graph.border(run.arc)
    print(f"border (the cliff edge): {sorted(border)}")

    print()
    print("=== agreement ===")
    for decision in run.result.decisions:
        print(f"  {decision.node:>3} decided view={sorted(decision.view.members)}")
    plan = next(iter(run.outcome.plans.values()))
    print(f"agreed repair plan: {plan.describe()}")

    print()
    print("=== repair outcome ===")
    print(run.outcome.summary())

    print()
    print("=== cost ===")
    metrics = run.result.metrics
    print(f"messages: {metrics.messages_sent}   bytes: {metrics.bytes_sent}   "
          f"speaking nodes: {metrics.speaking_nodes} / {run.overlay.size}")

    print()
    print("=== specification (CD1-CD7) ===")
    print(run.result.specification.summary())


if __name__ == "__main__":
    main()
