#!/usr/bin/env python3
"""Deterministic link faults: break the channels, keep the digest.

The paper assumes reliable FIFO channels (§2.2).  The fault layer
(:mod:`repro.sim.faults`) breaks that assumption on purpose: seeded
loss, duplication and bounded reordering whose every decision is a pure
function of the message's identity, never of execution order.  This
example runs the quickstart scenario (a 2x2 block crashing in a 6x6
grid) under growing link loss and shows the three headline properties:

* determinism: the same faulted spec produces byte-identical canonical
  digests run after run — and the *same* messages are lost on the
  sequential simulator and on the partitioned backend;
* substrate identity: partitions=3 digests equal the sequential run
  under faults, exactly as they do without them;
* interpretable degradation: the degradation report says which CD1–CD7
  properties failed at which loss rate, and whether the fault model
  *excuses* the failure (loss licenses liveness failures only — a
  safety violation under loss would be a real protocol finding).

Run with:  python examples/lossy_links.py
"""

from __future__ import annotations

from repro.api import ExperimentSession, quickstart_spec
from repro.experiments import run_degradation
from repro.sim import EventKind


def main() -> None:
    session = ExperimentSession()
    spec = quickstart_spec().with_faults({"loss": 0.05, "duplication": 0.1})

    print("=== the same faults, every substrate ===")
    first = session.run(spec)
    second = session.run(spec)
    sharded = session.run(spec.with_partitions(3))
    lost = len(list(first.trace.of_kind(EventKind.MESSAGE_LOST)))
    duplicated = len(list(first.trace.of_kind(EventKind.MESSAGE_DUPLICATED)))
    print(f"messages lost: {lost}  duplicated: {duplicated}")
    print(f"digest, run 1:        {first.digest()[:16]}…")
    print(f"digest, run 2:        {second.digest()[:16]}…")
    print(f"digest, partitions=3: {sharded.digest()[:16]}…")
    print(f"all identical: {first.digest() == second.digest() == sharded.digest()}")

    print()
    print("=== how the specification degrades with loss ===")
    report = run_degradation(
        quickstart_spec(), "loss", rates=[0.0, 0.02, 0.1], seeds=[0, 1]
    )
    print(report.summary())
    print()
    print(f"acceptable (every failure excused): {report.acceptable}")


if __name__ == "__main__":
    main()
