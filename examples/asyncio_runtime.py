#!/usr/bin/env python3
"""Running the same protocol over asyncio.

The protocol classes are runtime-agnostic: this example executes the
quickstart scenario (a 2x2 block crashing in a 6x6 grid) first on the
deterministic discrete-event simulator and then on the asyncio runtime,
where every node is a real concurrent task with its own FIFO inbox, and
shows that both reach the same agreement.

Run with:  python examples/asyncio_runtime.py
"""

from __future__ import annotations

from repro import CliffEdgeNode, generators, region_crash, run_cliff_edge
from repro.runtime import run_cliff_edge_asyncio


def main() -> None:
    graph = generators.grid(6, 6)
    crashed_block = [(2, 2), (2, 3), (3, 2), (3, 3)]
    schedule = region_crash(graph, crashed_block, at=1.0)

    print("=== deterministic simulator ===")
    sim_result = run_cliff_edge(graph, schedule, check=True)
    sim_views = {
        tuple(sorted(map(str, view.members))) for view in sim_result.decided_views
    }
    print(f"decisions: {sim_result.metrics.decisions}, views: {sorted(sim_views)}")
    print(f"CD1-CD7: {sim_result.specification.holds}")

    print()
    print("=== asyncio runtime (one task per node) ===")
    async_result = run_cliff_edge_asyncio(
        graph, schedule, node_factory=CliffEdgeNode, timeout=20.0
    )
    async_views = {
        tuple(sorted(map(str, view.members))) for view in async_result.decided_views
    }
    print(f"decisions: {async_result.metrics.decisions}, views: {sorted(async_views)}")
    print(f"reached quiescence: {async_result.quiescent}")

    print()
    agree = sim_views == async_views
    print(f"both runtimes agreed on the same crashed region(s): {agree}")
    deciders_match = sim_result.deciding_nodes == async_result.deciding_nodes
    print(f"same set of deciding nodes: {deciders_match}")


if __name__ == "__main__":
    main()
