"""Property-based tests of the protocol itself: CD1–CD7 on random scenarios.

Each generated case is a small connected topology, a random connected
crashed region, a random crash spacing and random failure-detection jitter;
the run must satisfy the full specification and reach quiescence.  This is
the empirical counterpart of the paper's Theorems 1–4.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.opinions import REJECT, Accept, OpinionVector
from repro.failures import region_crash
from repro.graph import Region
from repro.sim import JitteredFailureDetector, UniformLatency
from repro.experiments import run_cliff_edge

from .test_graph_invariants import connected_graphs


@st.composite
def crash_scenarios(draw):
    """A connected graph plus a connected crashed region strictly inside it."""
    graph = draw(connected_graphs(min_nodes=4, max_nodes=12))
    nodes = sorted(graph.nodes)
    seed = draw(st.sampled_from(nodes))
    max_size = max(1, len(nodes) // 2)
    size = draw(st.integers(1, max_size))
    members = {seed}
    frontier = sorted(graph.neighbours(seed))
    while frontier and len(members) < size:
        index = draw(st.integers(0, len(frontier) - 1))
        chosen = frontier.pop(index)
        if chosen in members:
            continue
        members.add(chosen)
        frontier.extend(sorted(graph.neighbours(chosen) - members))
    spread = draw(st.floats(0.0, 6.0))
    jitter_high = draw(st.floats(0.6, 3.0))
    seed_value = draw(st.integers(0, 2**16))
    return graph, frozenset(members), spread, jitter_high, seed_value


class TestSpecificationOnRandomScenarios:
    @given(crash_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_cd1_to_cd7_hold(self, scenario):
        graph, members, spread, jitter_high, seed = scenario
        schedule = region_crash(graph, members, at=1.0, spread=spread)
        result = run_cliff_edge(
            graph,
            schedule,
            latency=UniformLatency(0.5, 1.5),
            failure_detector=JitteredFailureDetector(0.5, jitter_high),
            seed=seed,
            check=True,
        )
        assert result.simulator.is_quiescent()
        assert result.specification.holds, result.specification.summary()

    @given(crash_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_decided_views_are_crashed_subsets(self, scenario):
        graph, members, spread, jitter_high, seed = scenario
        schedule = region_crash(graph, members, at=1.0, spread=spread)
        result = run_cliff_edge(
            graph,
            schedule,
            failure_detector=JitteredFailureDetector(0.5, jitter_high),
            seed=seed,
        )
        for view in result.decided_views:
            assert view.members <= members
            assert graph.is_connected_subset(view.members)

    @given(crash_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_deciders_alive_at_decision_time_and_border_their_view(self, scenario):
        """A decider may itself be faulty (crash later), but it must have
        been alive when it decided, and it must border its decided view."""
        graph, members, spread, jitter_high, seed = scenario
        schedule = region_crash(graph, members, at=1.0, spread=spread)
        crash_times = dict(schedule.crashes)
        result = run_cliff_edge(
            graph,
            schedule,
            failure_detector=JitteredFailureDetector(0.5, jitter_high),
            seed=seed,
        )
        for decision in result.decisions:
            if decision.node in crash_times:
                assert decision.time <= crash_times[decision.node]
            assert decision.node in graph.border(decision.view.members)

    @given(crash_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_simultaneous_crash_always_decides_full_region(self, scenario):
        graph, members, _spread, jitter_high, seed = scenario
        schedule = region_crash(graph, members, at=1.0, spread=0.0)
        result = run_cliff_edge(
            graph,
            schedule,
            failure_detector=JitteredFailureDetector(0.5, jitter_high),
            seed=seed,
        )
        border = graph.border(members)
        if border:
            assert result.decided_views == {Region(members)}
            assert result.deciding_nodes == border

    @given(crash_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_determinism(self, scenario):
        graph, members, spread, jitter_high, seed = scenario
        schedule = region_crash(graph, members, at=1.0, spread=spread)

        def run_once():
            result = run_cliff_edge(
                graph,
                schedule,
                latency=UniformLatency(0.5, 1.5),
                failure_detector=JitteredFailureDetector(0.5, jitter_high),
                seed=seed,
            )
            return [
                (event.time, event.kind, repr(event.node), repr(event.peer))
                for event in result.trace.events
            ]

        assert run_once() == run_once()


class TestOpinionVectorInvariants:
    @given(
        st.lists(st.integers(0, 8), min_size=1, max_size=8, unique=True),
        st.lists(st.integers(0, 8), max_size=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_never_overwrites(self, members, updates):
        vector = OpinionVector(members)
        first_writes = {}
        for index, node in enumerate(updates):
            if node not in vector.members:
                continue
            opinion = Accept(index) if index % 2 == 0 else REJECT
            vector.merge({node: opinion})
            first_writes.setdefault(node, opinion)
        for node, opinion in first_writes.items():
            assert vector[node] == opinion

    @given(st.lists(st.integers(0, 8), min_size=1, max_size=8, unique=True))
    @settings(max_examples=40, deadline=None)
    def test_partition_of_members(self, members):
        vector = OpinionVector(members)
        for index, node in enumerate(members):
            if index % 3 == 0:
                vector.set(node, Accept(index))
            elif index % 3 == 1:
                vector.set(node, REJECT)
        combined = vector.accepters() | vector.rejectors() | vector.unknown()
        assert combined == frozenset(members)
        assert vector.all_accept() == (len(vector.accepters()) == len(members))
