"""Fault-model property battery.

The fault layer's contract is that every loss / duplication / reorder
decision is a pure function of the *message's identity* — never of
execution order, process, ``PYTHONHASHSEED``, or which other fault knobs
are enabled.  This suite pins that contract on hypothesis-generated
channels and sequences:

* keyed-RNG purity: :func:`message_rng` yields an identical stream for
  identical keys and (statistically) independent streams across
  sequences, channels, stages and seeds;
* model determinism: every built-in model returns the same offsets for
  the same ``(source, target, sequence, seed)``, from any instance;
* statistical contracts: empirical loss / duplication rates land within
  tolerance of the configured rates, reorder offsets are bounded by the
  window, and ``max_extra_delay`` really bounds every offset;
* composition independence: a knob's decisions are unchanged by
  enabling or disabling the other stages;
* end-to-end: the same spec + seed produces byte-identical digests
  under every fault model — across repeated runs and across fresh
  interpreters with different ``PYTHONHASHSEED`` values — and a spec
  without a ``faults`` block keeps today's document bytes and digest.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import ExperimentSession, ExperimentSpec, quickstart_spec
from repro.sim.faults import (
    ComposedFaults,
    DuplicatingLinks,
    FaultModel,
    FaultsError,
    LossyLinks,
    ReorderingLinks,
    check_partition_safe,
    compose_faults,
    message_rng,
)

#: Node ids shaped like the ones real topologies use (tuples, strings).
node_ids = st.one_of(
    st.tuples(st.integers(0, 9), st.integers(0, 9)),
    st.text(min_size=1, max_size=4),
    st.integers(0, 99),
)

seeds = st.integers(0, 2**31)
sequences = st.integers(0, 10_000)


class TestMessageRng:
    @given(seed=seeds, source=node_ids, target=node_ids, sequence=sequences)
    @settings(max_examples=60)
    def test_identical_keys_identical_stream(self, seed, source, target, sequence):
        first = message_rng(seed, "stage", source, target, sequence)
        second = message_rng(seed, "stage", source, target, sequence)
        assert [first.random() for _ in range(5)] == [
            second.random() for _ in range(5)
        ]

    @given(seed=seeds, source=node_ids, target=node_ids, sequence=sequences)
    @settings(max_examples=60)
    def test_key_components_separate_streams(self, seed, source, target, sequence):
        base = message_rng(seed, "stage", source, target, sequence).random()
        assert message_rng(seed, "stage", source, target, sequence + 1).random() != base
        assert message_rng(seed + 1, "stage", source, target, sequence).random() != base
        assert message_rng(seed, "other", source, target, sequence).random() != base

    def test_direction_matters(self):
        forward = message_rng(0, "s", "a", "b", 0).random()
        backward = message_rng(0, "s", "b", "a", 0).random()
        assert forward != backward


class TestModelDeterminism:
    @given(
        source=node_ids,
        target=node_ids,
        sequence=sequences,
        seed=seeds,
        rate=st.floats(0.0, 0.99),
    )
    @settings(max_examples=60)
    def test_lossy_pure_function_of_identity(self, source, target, sequence, seed, rate):
        first = LossyLinks(rate).deliveries(source, target, sequence, seed)
        second = LossyLinks(rate).deliveries(source, target, sequence, seed)
        assert first == second
        assert first in ((), (0.0,))

    @given(sequence=sequences, seed=seeds, copies=st.integers(2, 5))
    @settings(max_examples=60)
    def test_duplicating_copy_count(self, sequence, seed, copies):
        offsets = DuplicatingLinks(0.5, copies=copies).deliveries(
            "a", "b", sequence, seed
        )
        assert len(offsets) in (1, copies)
        assert all(offset == 0.0 for offset in offsets)

    @given(sequence=sequences, seed=seeds, window=st.floats(0.1, 20.0))
    @settings(max_examples=60)
    def test_reordering_offset_bounded_by_window(self, sequence, seed, window):
        model = ReorderingLinks(window)
        (offset,) = model.deliveries("a", "b", sequence, seed)
        assert 0.0 <= offset <= window == model.max_extra_delay()

    def test_model_seed_forks_the_stream(self):
        picks = {
            seed: tuple(
                LossyLinks(0.5, seed=seed).deliveries("a", "b", n, 0)
                for n in range(64)
            )
            for seed in (0, 1)
        }
        assert picks[0] != picks[1]


class TestStatisticalContracts:
    N = 4000

    def _drop_fraction(self, model, seed=0):
        dropped = sum(
            1 for n in range(self.N) if not model.deliveries("a", "b", n, seed)
        )
        return dropped / self.N

    def test_empirical_loss_rate(self):
        for rate in (0.05, 0.2, 0.5):
            assert abs(self._drop_fraction(LossyLinks(rate)) - rate) < 0.03

    def test_zero_rates_are_inert(self):
        for model in (LossyLinks(0.0), DuplicatingLinks(0.0), ReorderingLinks(1.0, rate=0.0)):
            assert all(
                model.deliveries("a", "b", n, 7) == (0.0,) for n in range(200)
            )

    def test_empirical_duplication_rate(self):
        model = DuplicatingLinks(0.25, copies=3)
        duplicated = sum(
            1
            for n in range(self.N)
            if len(model.deliveries("a", "b", n, 0)) == 3
        )
        assert abs(duplicated / self.N - 0.25) < 0.03

    def test_empirical_reorder_rate_and_spread(self):
        model = ReorderingLinks(2.0, rate=0.5)
        offsets = [model.deliveries("a", "b", n, 0)[0] for n in range(self.N)]
        delayed = [offset for offset in offsets if offset > 0.0]
        assert abs(len(delayed) / self.N - 0.5) < 0.03
        assert all(offset <= 2.0 for offset in offsets)
        # Uniform(0, 2) mean is 1.0.
        assert abs(sum(delayed) / len(delayed) - 1.0) < 0.1

    def test_composed_max_extra_delay_bounds_offsets(self):
        model = compose_faults(
            ReorderingLinks(1.5), DuplicatingLinks(0.3), ReorderingLinks(0.5)
        )
        bound = model.max_extra_delay()
        assert bound == 2.0
        for n in range(500):
            for offset in model.deliveries("a", "b", n, 3):
                assert 0.0 <= offset <= bound


class TestCompositionIndependence:
    def _drops(self, model, seed=0):
        return {n for n in range(600) if not model.deliveries("a", "b", n, seed)}

    def test_loss_decisions_survive_other_knobs(self):
        """Enabling duplication/reorder must not change *which* messages
        the loss stage drops — each stage has its own keyed stream."""
        alone = self._drops(compose_faults(LossyLinks(0.3), DuplicatingLinks(0.0)))
        with_dup = self._drops(compose_faults(LossyLinks(0.3), DuplicatingLinks(0.9)))
        with_reorder = self._drops(
            compose_faults(LossyLinks(0.3), DuplicatingLinks(0.0), ReorderingLinks(5.0))
        )
        assert alone == with_dup == with_reorder

    def test_compose_flattens_and_passes_single_through(self):
        single = LossyLinks(0.1)
        assert compose_faults(single) is single
        nested = compose_faults(compose_faults(LossyLinks(0.1), DuplicatingLinks(0.2)), ReorderingLinks(1.0))
        assert isinstance(nested, ComposedFaults)
        assert [type(stage).__name__ for stage in nested.stages] == [
            "LossyLinks",
            "DuplicatingLinks",
            "ReorderingLinks",
        ]

    def test_protocol_conformance(self):
        for model in (
            LossyLinks(0.1),
            DuplicatingLinks(0.1),
            ReorderingLinks(1.0),
            compose_faults(LossyLinks(0.1), ReorderingLinks(1.0)),
        ):
            assert isinstance(model, FaultModel)


class TestValidation:
    @pytest.mark.parametrize(
        "build",
        [
            lambda: LossyLinks(-0.1),
            lambda: LossyLinks(1.0),  # drop-everything is a config mistake
            lambda: LossyLinks(0.1, seed="x"),
            lambda: DuplicatingLinks(1.5),
            lambda: DuplicatingLinks(0.5, copies=1),
            lambda: DuplicatingLinks(0.5, copies=2.0),
            lambda: ReorderingLinks(0.0),
            lambda: ReorderingLinks(-1.0),
            lambda: ReorderingLinks(1.0, rate=2.0),
            lambda: ComposedFaults(()),
            lambda: ComposedFaults((object(),)),
            lambda: compose_faults(),
        ],
    )
    def test_bad_parameters_rejected(self, build):
        with pytest.raises(FaultsError):
            build()

    def test_partition_safety_gate(self):
        check_partition_safe(None)
        check_partition_safe(LossyLinks(0.2))
        check_partition_safe(compose_faults(LossyLinks(0.1), ReorderingLinks(1.0)))

        class Custom:
            def deliveries(self, source, target, sequence, seed=0):
                return (0.0,)

            def max_extra_delay(self):
                return 0.0

        with pytest.raises(FaultsError):
            check_partition_safe(Custom())
        with pytest.raises(FaultsError):
            check_partition_safe(ComposedFaults((LossyLinks(0.1), ReorderingLinks(1.0), Custom())))


def _faulted_spec(faults):
    spec = quickstart_spec(side=5, block=2, seed=3)
    return spec.with_faults(faults) if faults is not None else spec


FAULT_BLOCKS = [
    {"loss": 0.05},
    {"duplication": 0.3, "copies": 3},
    {"reorder": 1.0, "reorder_rate": 0.5},
    {"loss": 0.02, "duplication": 0.1, "reorder": 0.5, "seed": 9},
]


class TestEndToEndDeterminism:
    @pytest.mark.parametrize("faults", FAULT_BLOCKS)
    def test_same_spec_same_digest(self, faults):
        spec = _faulted_spec(faults)
        session = ExperimentSession()
        first = session.run(spec)
        second = session.run(spec)
        assert first.digest() == second.digest()

    def test_faults_change_the_trace(self):
        base = ExperimentSession().run(_faulted_spec(None))
        lossy = ExperimentSession().run(_faulted_spec({"loss": 0.2}))
        assert base.digest() != lossy.digest()

    def test_no_faults_keeps_document_bytes(self):
        """A spec without faults must serialize exactly as before the
        fault layer existed — no ``faults`` key, stable digest."""
        spec = _faulted_spec(None)
        assert "faults" not in spec.to_dict()["runtime"]
        round_tripped = ExperimentSpec.from_json(spec.to_json())
        assert round_tripped.to_json() == spec.to_json()
        assert round_tripped.digest() == spec.digest()

    def test_explicit_zero_loss_matches_no_faults_trace(self):
        """``loss=0.0`` is a valid block and behaviourally identical to
        no faults (every message yields the single undelayed copy)."""
        plain = ExperimentSession().run(_faulted_spec(None))
        zero = ExperimentSession().run(_faulted_spec({"loss": 0.0}))
        assert plain.digest() == zero.digest()

    def test_digest_stable_across_hashseed_processes(self):
        """Fresh interpreters with different ``PYTHONHASHSEED`` values
        produce byte-identical digests under a combined fault block."""
        faults = {"loss": 0.05, "duplication": 0.2, "reorder": 0.5}
        document = _faulted_spec(faults).to_json()
        script = (
            "import sys\n"
            "from repro.api import ExperimentSession, load_spec\n"
            "spec = load_spec(sys.stdin.read())\n"
            "print(ExperimentSession().run(spec).digest())\n"
        )
        digests = set()
        for hashseed in ("1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, ["src", env.get("PYTHONPATH", "")])
            )
            completed = subprocess.run(
                [sys.executable, "-c", script],
                input=document,
                capture_output=True,
                text=True,
                env=env,
                check=True,
                timeout=120,
            )
            digests.add(completed.stdout.strip())
        assert len(digests) == 1
        assert len(digests.pop()) == 64
